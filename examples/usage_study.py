#!/usr/bin/env python
"""Real-world DoE traffic analysis (Section 5).

Reproduces Figure 11 (monthly DoT flows from 18 months of sampled
NetFlow), Figure 12 (per-/24 concentration and activity), Figure 13
(DoH bootstrap-domain query volumes from passive DNS), and the
scanner-vetting step.

Run:  python examples/usage_study.py
"""

from repro import ExperimentSuite, ScenarioConfig


def main() -> None:
    suite = ExperimentSuite.build(ScenarioConfig.small())

    dataset, report = suite.netflow_report()
    print("== Figure 11: monthly DoT flows (sampled at 1/3000) ==")
    for family in ("cloudflare", "quad9"):
        series = sorted(report.monthly_flows[family].items())
        recent = [f"{month}:{count}" for month, count in series[-8:]]
        print(f"  {family:10s} {'  '.join(recent)}")
    growth = report.growth("cloudflare", "2018-07", "2018-12")
    print(f"  Cloudflare DoT growth Jul->Dec 2018: {growth:+.0%}")
    ratio = report.dot_to_do53_ratio("cloudflare")
    print(f"  Clear-text DNS is {ratio:,.0f}x larger "
          f"(2-3 orders of magnitude)")
    print()

    print("== Figure 12: client netblock structure ==")
    print(f"  /24 netblocks sending DoT to Cloudflare: "
          f"{len(report.netblocks):,}")
    print(f"  Top-5 netblocks' traffic share:  {report.top_share(5):.0%}")
    print(f"  Top-20 netblocks' traffic share: {report.top_share(20):.0%}")
    short_blocks, short_traffic = report.short_lived_stats()
    print(f"  Netblocks active <1 week: {short_blocks:.0%} "
          f"(carrying {short_traffic:.0%} of traffic)")
    print()

    print("== Scanner vetting (NetworkScan Mon) ==")
    vetting = suite.scanner_vetting()
    flagged = [block for block, is_scanner in vetting.items() if is_scanner]
    print(f"  Client netblocks flagged as scanners: {len(flagged)} "
          f"(expected: 0)")
    print(f"  Known synthetic scanners in the dataset: "
          f"{', '.join(dataset.scanner_netblocks)}")
    print()

    print("== Figure 13: DoH bootstrap-domain volumes ==")
    usage = suite.doh_usage()
    print(f"  Domains above 10K lifetime lookups: {len(usage.popular)} "
          f"of {len(usage.candidates)}")
    for domain in usage.popular:
        print(f"    {domain:30s} {usage.totals[domain]:>12,}")
    cb_growth = usage.growth("doh.cleanbrowsing.org", "2018-09", "2019-03")
    print(f"  CleanBrowsing DoH growth Sep 2018 -> Mar 2019: "
          f"{cb_growth:.1f}x")


if __name__ == "__main__":
    main()
