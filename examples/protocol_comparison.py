#!/usr/bin/env python
"""Protocol comparison and a live stub-resolver fallback demo (Section 2).

Prints Table 1 (the 10-criteria comparison), Table 8 (the implementation
survey), the two DoH request encodings of Figure 2, and then *exercises*
the usage-profile semantics: a strict stub fails closed behind a TLS
interceptor while an opportunistic stub falls back and keeps resolving.

Run:  python examples/protocol_comparison.py
"""

from repro import ScenarioConfig, build_scenario
from repro.analysis import tables
from repro.analysis.figures import figure2_requests
from repro.core.comparative import maturity_score
from repro.doe.dot import PrivacyProfile
from repro.netsim import ClientEnvironment, SeededRng
from repro.netsim.middlebox import TlsInterceptor
from repro.resolvers import StubResolver, UpstreamConfig
from repro.tlssim import CertificateAuthority


def main() -> None:
    print(tables.table1_text())
    print()
    print("Aggregate maturity scores (derived from Table 1):")
    for key in ("dot", "doh", "dnscrypt", "dodtls", "doq"):
        print(f"  {key:9s} {maturity_score(key):.2f}")
    print()

    print("Figure 2: the two DoH request encodings")
    for method, line in figure2_requests("example.com").items():
        print(f"  {method}: {line}")
    print()

    print("== Live demo: usage profiles under TLS interception ==")
    scenario = build_scenario(ScenarioConfig.small())
    network = scenario.client_network()
    rng = SeededRng(77)
    interceptor_ca = CertificateAuthority.root("Corp DPI CA", trusted=False)
    env = ClientEnvironment.in_country(
        "demo-client", "203.0.113.50", "US", rng.fork("env"),
        middleboxes=[TlsInterceptor("corp-dpi", interceptor_ca)])
    upstream = UpstreamConfig(do53_ip="1.1.1.1", dot_ip="1.1.1.1")
    name = scenario.probe_name("demo")

    for profile in (PrivacyProfile.STRICT, PrivacyProfile.OPPORTUNISTIC):
        stub = StubResolver(network, env, rng.fork(profile.value),
                            scenario.trust_store, upstream,
                            profile=profile, transports=("dot", "do53"))
        answer = stub.resolve(name)
        print(f"  {profile.value:13s} ok={answer.ok} "
              f"via={answer.result.transport} "
              f"trail={'->'.join(answer.transport_trail)} "
              f"fell_back={answer.fell_back_to_cleartext}")
        stub.close()
    print("  (strict refuses the re-signed certificate; opportunistic")
    print("   proceeds — and the interceptor sees every query)")
    print()

    print(tables.table8_text())


if __name__ == "__main__":
    main()
