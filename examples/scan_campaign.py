#!/usr/bin/env python
"""Internet-wide DoT/DoH discovery campaign (paper Section 3).

Runs the full 10-round, 10-day-cadence scan from Feb 1 to May 1 2019,
groups resolvers into providers by certificate Common Name, analyses
certificate hygiene, and discovers DoH services from a URL corpus.

Run:  python examples/scan_campaign.py
"""

from repro import ScenarioConfig, build_scenario
from repro.analysis import figures, tables
from repro.core.scan import ScanCampaign, cohort_survival, provider_deltas


def main() -> None:
    scenario = build_scenario(ScenarioConfig.small())
    campaign_runner = ScanCampaign(scenario)
    campaign = campaign_runner.run()

    print(tables.table2_text(campaign))
    print()

    print("Figure 3: open DoT resolvers per scan")
    for date, count in campaign.resolvers_per_round():
        print(f"  {date}: {count:5,} resolvers")
    print()

    print("Figure 4: providers and certificate hygiene per scan")
    dates, provider_counts, invalid_counts, cdf = (
        figures.figure4_series(campaign))
    for date, providers, invalid in zip(dates, provider_counts,
                                        invalid_counts):
        print(f"  {date}: {providers:4d} providers, "
              f"{invalid:3d} with invalid certs "
              f"({invalid / providers:.0%})")
    singles = next((fraction for size, fraction in cdf if size == 1), 0.0)
    print(f"  Providers with a single resolver address: {singles:.0%}")
    print()

    final_stats = campaign.last.provider_statistics()
    print("Certificate failure breakdown (final scan):")
    for failure, count in sorted(final_stats.failure_totals.items(),
                                 key=lambda item: -item[1]):
        print(f"  {failure.value:14s} {count:4d} resolvers")
    print()

    print("Churn: biggest provider movers over the campaign")
    for key, before, after, delta in provider_deltas(campaign, top_n=5):
        print(f"  {key:28s} {before:4d} -> {after:4d} ({delta:+d})")
    survival = cohort_survival(campaign)
    print(f"  First-scan cohort still answering at the end: "
          f"{survival[-1]:.0%}")
    print()

    working = campaign.working_doh()
    beyond = [record for record in working if not record.in_public_list]
    print(f"DoH discovery: {len(campaign.doh_records)} candidate URLs, "
          f"{len(working)} working DoH resolvers, "
          f"{len(beyond)} beyond the public list:")
    for record in beyond:
        print(f"  {record.hostname}")


if __name__ == "__main__":
    main()
