#!/usr/bin/env python
"""Quickstart: measure DNS-over-Encryption end to end in one minute.

Builds a small calibrated world, discovers DoT resolvers with an
Internet-wide sweep, runs a reachability test from residential proxy
endpoints, and prints the headline numbers — a miniature version of the
paper's whole pipeline.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSuite, ScenarioConfig
from repro.analysis import tables


def main() -> None:
    config = ScenarioConfig.small()
    suite = ExperimentSuite.build(config)

    print("== Server side: one discovery round ==")
    campaign = suite.campaign()
    first = campaign.first
    print(f"Port-853 hosts (est.): {first.stats.total_open_estimate:,}")
    print(f"Open DoT resolvers:    {len(first.resolvers):,}")
    print(f"Providers:             {len(first.groups):,}")
    stats = first.provider_statistics()
    print(f"Invalid-cert providers: {stats.invalid_cert_providers} "
          f"({stats.invalid_provider_fraction:.0%})")
    doh = campaign.working_doh()
    print(f"Working DoH services:  {len(doh)} "
          f"({len(campaign.doh_records)} candidates probed)")
    print()

    print("== Client side: reachability (Table 4 excerpt) ==")
    report = suite.reachability()
    for target in ("Cloudflare", "Google", "Quad9"):
        for protocol in ("do53", "dot", "doh"):
            rates = report.rates("proxyrack", target, protocol)
            if not rates.get("total"):
                continue
            print(f"  {target:10s} {protocol:4s} "
                  f"correct={rates['correct']:6.2%} "
                  f"incorrect={rates['incorrect']:6.2%} "
                  f"failed={rates['failed']:6.2%}")
    print()

    print("== Protocol comparison (Table 1) ==")
    print(tables.table1_text())


if __name__ == "__main__":
    main()
