#!/usr/bin/env python
"""Query-latency study: encrypted vs clear-text DNS (Section 4.3).

Reproduces Figure 9 (per-country overhead with connection reuse),
Figure 10 (per-client scatter) and Table 7 (cost without reuse).

Run:  python examples/performance_study.py
"""

from repro import ExperimentSuite, ScenarioConfig
from repro.analysis import tables


def main() -> None:
    suite = ExperimentSuite.build(ScenarioConfig.small())

    report = suite.performance()
    summary = report.global_summary()
    print("== Reused connections (the common case) ==")
    print(f"Clients measured: {summary['clients']:.0f}")
    print(f"DoT overhead vs DNS/TCP: avg {summary['dot_avg']:+.1f}ms, "
          f"median {summary['dot_median']:+.1f}ms")
    print(f"DoH overhead vs DNS/TCP: avg {summary['doh_avg']:+.1f}ms, "
          f"median {summary['doh_median']:+.1f}ms")
    print()

    print("Figure 9: per-country overhead (avg/median, ms)")
    for row in report.by_country(min_clients=3):
        print(f"  {row.country}: n={row.client_count:4d}  "
              f"DoT {row.dot_overhead_avg_ms:+7.1f}/"
              f"{row.dot_overhead_median_ms:+7.1f}   "
              f"DoH {row.doh_overhead_avg_ms:+7.1f}/"
              f"{row.doh_overhead_median_ms:+7.1f}")
    print()

    points = report.scatter_points()
    faster = sum(1 for do53, dot, _ in points if dot < do53)
    print(f"Figure 10: {len(points)} clients; DoT beat clear text for "
          f"{faster} of them ({faster / len(points):.0%})")
    print()

    print(tables.table7_text(suite.no_reuse()))


if __name__ == "__main__":
    main()
