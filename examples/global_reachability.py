#!/usr/bin/env python
"""Client-side reachability study through proxy networks (Section 4.2).

Reproduces Table 4 (reachability matrix), Table 5 (what actually answers
on 1.1.1.1 for failed clients) and Table 6 (TLS-intercepted clients).

Run:  python examples/global_reachability.py
"""

from repro import ExperimentSuite, ScenarioConfig
from repro.analysis import tables


def main() -> None:
    suite = ExperimentSuite.build(ScenarioConfig.small())

    print(tables.table4_text(suite.reachability()))
    print()

    diagnosis = suite.diagnosis()
    print(tables.table5_text(diagnosis))
    print(f"\n  Clients with no probed port open (blackholed): "
          f"{diagnosis.none_open_count()}")
    print(f"  Crypto-hijacked MikroTik routers: "
          f"{diagnosis.hijacked_count()}")
    print()

    report = suite.reachability()
    print(tables.table6_text(report))
    proceeded = sum(1 for case in report.interceptions
                    if case.dot_lookup_succeeded)
    print(f"\n  Intercepted clients whose *opportunistic* DoT still "
          f"answered: {proceeded}/{len(report.interceptions)}")
    print("  (strict DoH terminates on the re-signed certificate instead)")


if __name__ == "__main__":
    main()
