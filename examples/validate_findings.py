#!/usr/bin/env python
"""Verify every headline finding of the paper in one run.

Builds the calibrated world, runs all three measurement legs, and
prints a PASS/FAIL checklist for each finding (the programmatic
counterpart to EXPERIMENTS.md).

Run:  python examples/validate_findings.py
"""

import sys

from repro import ExperimentSuite, ScenarioConfig
from repro.analysis.validate import render_checklist, validate_findings


def main() -> int:
    suite = ExperimentSuite.build(ScenarioConfig.small())
    findings = validate_findings(suite)
    print(render_checklist(findings))
    return 0 if all(check.passed for check in findings) else 1


if __name__ == "__main__":
    sys.exit(main())
