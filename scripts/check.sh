#!/bin/sh
# Repository check: byte-compile every module, then run the test suite.
# No make, no extra dependencies — sh + python + pytest only.
#
# Usage:  scripts/check.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."

echo "== compileall src =="
python -m compileall -q src

echo "== pytest =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"

# The chaos suite must be hash-seed independent: run it twice under
# different PYTHONHASHSEED values so any dict/set-iteration-order
# dependence in the fault-injection layer shows up as a diff.
echo "== chaos suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m chaos
echo "== chaos suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m chaos
