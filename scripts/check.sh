#!/bin/sh
# Repository check: byte-compile every module, then run the test suite.
# No make, no extra dependencies — sh + python + pytest only.
#
# Usage:  scripts/check.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."

echo "== compileall src =="
python -m compileall -q src

echo "== pytest =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"
