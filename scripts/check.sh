#!/bin/sh
# Repository check: byte-compile every module, then run the test suite.
# No make, no extra dependencies — sh + python + pytest only.
#
# Usage:  scripts/check.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."

echo "== compileall src =="
python -m compileall -q src

echo "== pytest =="
# Coverage-gated when pytest-cov is available (it ships in the `test`
# extra); plain run otherwise so the check works on a bare toolchain.
if python -c "import pytest_cov" 2>/dev/null; then
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q \
        --cov=repro --cov-report=term --cov-fail-under=80 "$@"
else
    echo "(pytest-cov not installed; running without the coverage gate)"
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"
fi

# The chaos suite must be hash-seed independent: run it twice under
# different PYTHONHASHSEED values so any dict/set-iteration-order
# dependence in the fault-injection layer shows up as a diff.
echo "== chaos suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m chaos
echo "== chaos suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m chaos

# The parallel suite proves worker-count invariance (workers 1/4/16
# yield byte-identical artefacts); running it under two hash seeds
# additionally proves the shard merge never leans on dict/set order.
echo "== parallel suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m parallel
echo "== parallel suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m parallel

# The procedural-world suite proves eager/lazy/sharded materialisation
# are byte-identical; two hash seeds prove host derivation and segment
# enumeration never lean on dict/set order.
echo "== procedural suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m procedural
echo "== procedural suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m procedural

# The four-protocol suite proves the Do53/DoT/DoH/DoQ + DNSCrypt
# tables are byte-identical across eager/lazy worlds and workers 1/4;
# two hash seeds prove the differential tier never leans on dict/set
# order.
echo "== fourproto suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m fourproto
echo "== fourproto suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m fourproto

# The longitudinal suite proves the campaign engine: checkpoint/resume
# byte-identity, churn/rotation determinism in any materialisation
# order, and incremental==batch goldens at workers 1/4; two hash seeds
# prove none of it leans on dict/set order.
echo "== longitudinal suite (PYTHONHASHSEED=0) =="
PYTHONHASHSEED=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m longitudinal
echo "== longitudinal suite (PYTHONHASHSEED=1) =="
PYTHONHASHSEED=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m longitudinal

# Memory-regression gate: a 10^6-address lazy sweep must stay under a
# tracemalloc budget and never hit the full-materialise path.
echo "== scale suite (10^6-address sweep) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m scale

# Hot-path micro-benchmarks (--skip-campaign keeps this to a few
# seconds). The gate is the script exiting cleanly — throughput
# regressions against the recorded baseline only print warnings,
# because ops/sec depends on the machine running the check.
echo "== hot-path benchmarks =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_hotpath.py --skip-campaign \
    --out benchmarks/BENCH_HOTPATH.tmp.json >/dev/null
rm -f benchmarks/BENCH_HOTPATH.tmp.json
echo "ok (see benchmarks/BENCH_HOTPATH.json for the recorded run)"

# Serving benchmark, error-only gate: a small run must exit cleanly and
# its document must pass the schema validator (shed counters present,
# same-seed scorecards byte-identical). qps numbers are never asserted
# on — they depend on the machine running the check.
echo "== serving benchmark =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_serving.py --queries 1000 \
    --out benchmarks/BENCH_SERVING.tmp.json >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_serving.py \
    --validate benchmarks/BENCH_SERVING.tmp.json --min-queries 1000
rm -f benchmarks/BENCH_SERVING.tmp.json
echo "ok (see benchmarks/BENCH_SERVING.json for the recorded run)"

# Parallel-execution benchmark, error-only gate: the committed document
# must pass the schema validator, including the >= 2x floor on the
# persistent-pool-vs-legacy-executor speedup at the recorded worker
# count. The floor compares two executors on the same machine in the
# same run, so unlike raw wall-clock it is stable across hardware.
echo "== parallel benchmark document =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_parallel_campaign.py \
    --validate benchmarks/BENCH_PARALLEL.json
echo "ok (see benchmarks/BENCH_PARALLEL.json for the recorded run)"

# Scale benchmark document: the committed record must show the
# 10^6-address sweep peaking within the flatness budget (1.25x) of the
# 10^4 sweep. The ratio compares two sweeps from the same run on the
# same machine, so it is stable across hardware.
echo "== scale benchmark document =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_scale.py \
    --validate benchmarks/BENCH_SCALE.json
echo "ok (see benchmarks/BENCH_SCALE.json for the recorded run)"

# Longitudinal benchmark, error-only gate: a fresh quick run must pass
# its own validator (resume digest equals the straight run's,
# incremental artefact hashes equal batch at workers 1/4, long-run
# memory within the flatness budget), and the committed 100-round
# document must validate with the 50-round floor the acceptance
# criteria demand. Wall-clock numbers are never asserted on.
echo "== longitudinal benchmark =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_longitudinal.py --quick \
    --out benchmarks/BENCH_LONGITUDINAL.tmp.json >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_longitudinal.py \
    --validate benchmarks/BENCH_LONGITUDINAL.tmp.json --min-rounds 10
rm -f benchmarks/BENCH_LONGITUDINAL.tmp.json
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_longitudinal.py \
    --validate benchmarks/BENCH_LONGITUDINAL.json --min-rounds 50
echo "ok (see benchmarks/BENCH_LONGITUDINAL.json for the recorded run)"

# Four-protocol benchmark, error-only gate: a fresh run must confirm
# the same DoH endpoint set as the naive scan with strictly fewer
# probes, hash the four-protocol table identically across eager and
# lazy worlds, and — because the document holds no machine-dependent
# fields — reproduce the committed record byte for byte.
echo "== four-protocol benchmark =="
PYTHONHASHSEED=2 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_fourproto.py \
    --out benchmarks/BENCH_FOURPROTO.tmp.json >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_fourproto.py \
    --validate benchmarks/BENCH_FOURPROTO.tmp.json
cmp benchmarks/BENCH_FOURPROTO.tmp.json benchmarks/BENCH_FOURPROTO.json
rm -f benchmarks/BENCH_FOURPROTO.tmp.json
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_fourproto.py \
    --validate benchmarks/BENCH_FOURPROTO.json
echo "ok (see benchmarks/BENCH_FOURPROTO.json for the recorded run)"
