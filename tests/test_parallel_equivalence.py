"""Differential equivalence suite for sharded parallel execution.

The determinism contract of :mod:`repro.core.parallel` is that the
worker count is pure scheduling: for a fixed (seed, shard count), runs
at ``--workers 1``, ``4``, and ``16`` must serialise byte-identical
tables and telemetry. This suite runs the same seeded experiments at
all three worker counts and compares every artefact byte for byte.

``scripts/check.sh`` runs this module twice under different
``PYTHONHASHSEED`` values, mirroring the chaos suite, to prove the
parallel layer does not lean on hash ordering either.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.analysis import tables
from repro.core.client import FailureDiagnosis
from repro.core.client.performance import PerformanceStudy
from repro.core.client.reachability import ReachabilityStudy, platform_points
from repro.core.parallel import ParallelConfig
from repro.core.scan.campaign import ScanCampaign
from repro.telemetry.manifest import RunManifest
from repro.world.scenario import build_scenario
from tests.conftest import tiny_config

pytestmark = pytest.mark.parallel

SEED = 91
SHARDS = 5
ROUNDS = 2
REACH_SAMPLE = 0.08
PERF_SAMPLE = 0.15

#: Worker counts the contract names explicitly (ISSUE acceptance).
WORKER_COUNTS = (1, 4, 16)

_cache = {}


def _diagnose(scenario, report):
    """The parent-side Table 5 diagnosis over the sharded report."""
    failed = set(report.failed_endpoints("proxyrack", "Cloudflare", "dot"))
    points = [point
              for point in platform_points(scenario, "proxyrack",
                                           REACH_SAMPLE)
              if point.env.label in failed]
    diagnosis = FailureDiagnosis(
        scenario.client_network(), scenario.rng.fork("diagnosis"),
        retry_policy=scenario.retry_policy(op="client.diag"))
    return diagnosis.diagnose_all(points)


def snapshot(workers: int) -> dict:
    """Every artefact of one full sharded run at a given worker count.

    Cached per worker count: the suite compares the three runs against
    each other, so each needs to execute exactly once.
    """
    if workers in _cache:
        return _cache[workers]
    telemetry.reset_registry()
    try:
        config = tiny_config(SEED)
        scenario = build_scenario(config)
        # oversubscribe so the 4/16-worker runs genuinely fork a pool
        # even on single-CPU CI machines (the clamp would otherwise
        # reduce them to the in-process path and prove nothing);
        # min_fanout_items=0 so the tiny workloads fan out too.
        parallel = ParallelConfig(workers=workers, shards=SHARDS,
                                  min_fanout_items=0, oversubscribe=True)
        campaign = ScanCampaign(scenario, parallel=parallel).run(
            rounds=ROUNDS, include_doh=True)
        study = ReachabilityStudy(scenario)
        report = study.run_sharded("proxyrack", parallel,
                                   sample=REACH_SAMPLE)
        report = study.run_sharded("zhima", parallel, sample=REACH_SAMPLE,
                                   report=report)
        perf = PerformanceStudy(scenario).run_sharded(parallel,
                                                      sample=PERF_SAMPLE)
        diagnosis = _diagnose(scenario, report)
        registry = telemetry.get_registry()
        manifest = RunManifest.collect(
            config, registry, include_git=False,
            execution=parallel.manifest_execution())
        _cache[workers] = {
            "table2": tables.table2_text(campaign),
            "table4": tables.table4_text(report),
            "table5": tables.table5_text(diagnosis),
            "telemetry": telemetry.to_json(registry, telemetry.get_tracer(),
                                           manifest.as_dict()),
            "doh": tuple((record.url, record.is_doh, record.latency_ms)
                         for record in campaign.doh_records),
            "timings": tuple(
                (timing.endpoint, timing.median_do53_ms,
                 timing.median_dot_ms, timing.median_doh_ms)
                for timing in perf.timings),
        }
    finally:
        telemetry.reset_registry()
    return _cache[workers]


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [count for count in WORKER_COUNTS
                                         if count != 1])
    def test_byte_identical_artifacts(self, workers):
        base = snapshot(1)
        other = snapshot(workers)
        for key in ("table2", "table4", "table5", "telemetry", "doh",
                    "timings"):
            assert base[key] == other[key], (
                f"artefact {key!r} differs between --workers 1 "
                f"and --workers {workers}")

    def test_telemetry_snapshot_nonempty(self):
        data = json.loads(snapshot(1)["telemetry"])
        assert data["metrics"], "sharded run recorded no metrics"

    def test_shard_spans_stitched(self):
        """Shard root spans are adopted with a ``shard`` attribute."""
        data = json.loads(snapshot(1)["telemetry"])

        def walk(nodes):
            for node in nodes:
                yield node
                yield from walk(node.get("children", ()))

        shard_attrs = sorted({node["attrs"]["shard"]
                              for node in walk(data["spans"])
                              if "shard" in node.get("attrs", {})})
        assert shard_attrs == [str(index) for index in range(SHARDS)]

    def test_manifest_records_shards_not_workers(self):
        """Shards define the experiment; workers must not be recorded,
        or the snapshots could never be byte-identical across counts."""
        executions = []
        for workers in WORKER_COUNTS:
            manifest = json.loads(snapshot(workers)["telemetry"])["manifest"]
            execution = manifest["execution"]
            assert execution["shards"] == SHARDS
            assert "workers" not in execution
            adaptive = execution["adaptive"]
            assert adaptive["threshold"] == 0
            # Every decision is a pure predicate of (items, threshold).
            for decision in adaptive["decisions"]:
                assert set(decision) == {"items", "in_process"}
                assert decision["in_process"] == (
                    decision["items"] < adaptive["threshold"])
            executions.append(execution)
        # The whole block — decisions included — is worker-invariant.
        assert executions[0] == executions[1] == executions[2]

    def test_scheduling_metrics_stay_out_of_snapshots(self):
        """parallel.* counters vary with scheduling and must never leak
        into the deterministic export or the manifest totals."""
        data = json.loads(snapshot(WORKER_COUNTS[-1])["telemetry"])
        assert not [name for name in data["metrics"]
                    if name.startswith("parallel.")]
        assert not [name for name in data["manifest"]["totals"]
                    if name.startswith("parallel.")]
