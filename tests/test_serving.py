"""Tests for repro.serving: workload, pool, engine, scorer, bench."""

import json

import pytest

from repro import telemetry
from repro.errors import ScenarioError
from repro.netsim.rand import SeededRng
from repro.serving import (
    BenchConfig,
    ConnectionReusePool,
    ResolverScorecard,
    ServingConfig,
    ServingEngine,
    ServingWorld,
    ServingWorldConfig,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfSampler,
    assign_protocols,
    validate_document,
)
from repro.serving.bench import run_overload_leg, run_repro_check


@pytest.fixture(autouse=True)
def _clean_registry():
    telemetry.reset_registry()
    yield
    telemetry.reset_registry()


def small_world(seed=11, **overrides):
    config = dict(seed=seed, clients=6, names=64)
    config.update(overrides)
    return ServingWorld.build(ServingWorldConfig(**config))


def small_spec(**overrides):
    config = dict(duration_s=4.0, qps_start=50.0, clients=6, names=64)
    config.update(overrides)
    return WorkloadSpec(**config)


class TestWorkloadSpec:
    def test_validate_rejects_bad_duration(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(duration_s=0.0).validate()

    def test_validate_rejects_unknown_protocol(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(protocol_mix={"doq": 1.0}).validate()

    def test_validate_rejects_zero_weight_mix(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(protocol_mix={"dot": 0.0}).validate()

    def test_validate_rejects_negative_qps(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(qps_start=-1.0).validate()

    def test_flat_rate_without_ramp(self):
        spec = WorkloadSpec(qps_start=100.0)
        assert spec.qps_at(0.0) == spec.qps_at(30.0) == 100.0

    def test_linear_ramp(self):
        spec = WorkloadSpec(duration_s=10.0, qps_start=0.0, qps_end=100.0)
        assert spec.qps_at(5.0) == pytest.approx(50.0)
        assert spec.qps_at(10.0) == pytest.approx(100.0)


class TestZipfSampler:
    def test_hot_ranks_dominate(self):
        sampler = ZipfSampler(100, s=1.1)
        rng = SeededRng(3, "zipf")
        counts = [0] * 100
        for _ in range(4000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[10] > counts[50]
        assert counts[0] > 4000 * 0.1

    def test_samples_cover_only_the_universe(self):
        sampler = ZipfSampler(5, s=1.0)
        rng = SeededRng(4, "zipf")
        assert {sampler.sample(rng) for _ in range(500)} <= set(range(5))

    def test_empty_universe_rejected(self):
        with pytest.raises(ScenarioError):
            ZipfSampler(0)


class TestProtocolAssignment:
    def test_exact_apportionment_when_divisible(self):
        spec = WorkloadSpec(clients=9, protocol_mix={"do53": 1.0,
                                                     "dot": 1.0,
                                                     "doh": 1.0})
        assignment = assign_protocols(spec, SeededRng(5, "mix"))
        assert sorted(assignment).count("do53") == 3
        assert sorted(assignment).count("dot") == 3
        assert sorted(assignment).count("doh") == 3

    def test_largest_remainder_rounds_fairly(self):
        spec = WorkloadSpec(clients=10, protocol_mix={"do53": 2.0,
                                                      "dot": 1.0})
        assignment = assign_protocols(spec, SeededRng(5, "mix"))
        assert assignment.count("do53") == 7
        assert assignment.count("dot") == 3

    def test_assignment_is_seed_stable(self):
        spec = WorkloadSpec(clients=12)
        first = assign_protocols(spec, SeededRng(6, "mix"))
        second = assign_protocols(spec, SeededRng(6, "mix"))
        assert first == second


class TestWorkloadGenerator:
    def test_event_count_tracks_flat_rate(self):
        generator = WorkloadGenerator(small_spec(duration_s=10.0,
                                                 qps_start=50.0),
                                      SeededRng(7, "wl"))
        assert sum(len(batch) for _, batch in generator.batches()) == 500

    def test_event_count_tracks_ramp(self):
        # 0→100 qps over 10 s integrates to ~500 queries.
        generator = WorkloadGenerator(
            small_spec(duration_s=10.0, qps_start=0.0, qps_end=100.0),
            SeededRng(7, "wl"))
        total = sum(len(batch) for _, batch in generator.batches())
        assert total == pytest.approx(500, abs=5)

    def test_events_arrive_in_order_within_batches(self):
        generator = WorkloadGenerator(small_spec(), SeededRng(8, "wl"))
        for tick, batch in generator.batches():
            offsets = [event.at_s for event in batch]
            assert offsets == sorted(offsets)
            assert all(tick <= at < tick + 1.0 for at in offsets)

    def test_same_seed_same_stream(self):
        first = list(WorkloadGenerator(small_spec(),
                                       SeededRng(9, "wl")).events())
        second = list(WorkloadGenerator(small_spec(),
                                        SeededRng(9, "wl")).events())
        assert first == second

    def test_different_seeds_differ(self):
        first = list(WorkloadGenerator(small_spec(),
                                       SeededRng(9, "wl")).events())
        second = list(WorkloadGenerator(small_spec(),
                                        SeededRng(10, "wl")).events())
        assert first != second

    def test_protocol_follows_client_assignment(self):
        generator = WorkloadGenerator(small_spec(), SeededRng(11, "wl"))
        for event in generator.events():
            assert event.protocol == \
                generator.client_protocols[event.client]

    def test_census_covers_population(self):
        generator = WorkloadGenerator(small_spec(), SeededRng(12, "wl"))
        assert sum(generator.protocol_census().values()) == 6


class TestConnectionReusePool:
    def test_warm_queries_reuse_sessions(self):
        world = small_world()
        pool = ConnectionReusePool(world, SeededRng(13, "pool"))
        name = WorkloadGenerator(small_spec(),
                                 SeededRng(13, "wl")).name_for(0)
        first = pool.query(0, "dot", name, 1)
        world.network.clock.advance(1.0)
        second = pool.query(0, "dot", name, 1)
        assert first.ok and second.ok
        assert not first.reused_connection
        assert second.reused_connection
        assert pool.handshakes == 1 and pool.reused == 1

    def test_idle_past_keepalive_forces_rehandshake(self):
        world = small_world()  # advertises 30 s on every stream frontend
        pool = ConnectionReusePool(world, SeededRng(14, "pool"))
        name = WorkloadGenerator(small_spec(),
                                 SeededRng(14, "wl")).name_for(0)
        for protocol in ("do53-tcp", "dot"):
            pool.query(1, protocol, name, 1)
            world.network.clock.advance(120.0)  # way past the window
            lapsed = pool.query(1, protocol, name, 1)
            assert lapsed.ok
            assert not lapsed.reused_connection
        assert pool.expired == 2

    def test_udp_never_counts_reuse(self):
        world = small_world()
        pool = ConnectionReusePool(world, SeededRng(15, "pool"))
        name = WorkloadGenerator(small_spec(),
                                 SeededRng(15, "wl")).name_for(0)
        pool.query(2, "do53", name, 1)
        pool.query(2, "do53", name, 1)
        assert pool.reused == 0

    def test_unknown_protocol_rejected(self):
        world = small_world()
        pool = ConnectionReusePool(world, SeededRng(16, "pool"))
        name = WorkloadGenerator(small_spec(),
                                 SeededRng(16, "wl")).name_for(0)
        with pytest.raises(ScenarioError):
            pool.query(0, "doq", name, 1)


class TestServingEngine:
    def run_small(self, seed=17, spec=None, config=None):
        world = small_world(seed=seed)
        engine = ServingEngine(world, config or ServingConfig(
            concurrency=16, max_queue=64))
        report = engine.run(spec or small_spec())
        engine.close()
        return report

    def test_accounting_adds_up(self):
        report = self.run_small()
        assert report.offered == 200  # 4 s × 50 qps
        assert report.served + report.shed == report.offered
        for stats in report.protocols.values():
            assert stats.ok <= stats.served
            assert stats.latency.count == stats.served
            assert stats.cold.count + stats.warm.count == stats.served

    def test_streams_go_warm_under_load(self):
        report = self.run_small()
        for protocol in ("dot", "doh"):
            stats = report.protocols[protocol]
            assert stats.warm.count > stats.cold.count

    def test_telemetry_counters_emitted(self):
        registry, _ = telemetry.reset_registry()
        self.run_small()
        served = sum(
            registry.value("serving.queries_served", protocol=p)
            for p in ("do53", "dot", "doh"))
        assert served == 200
        assert registry.get("serving.latency_ms", protocol="dot") is not None

    def test_overload_sheds_and_completes(self):
        report = self.run_small(
            spec=small_spec(qps_start=400.0),
            config=ServingConfig(concurrency=2, max_queue=8))
        assert report.shed > 0
        assert report.served + report.shed == report.offered
        # Shedding is load-, not protocol-, driven: with every client
        # overloaded, each protocol takes losses.
        assert all(stats.shed > 0 for stats in report.protocols.values())

    def test_shed_counter_in_registry(self):
        registry, _ = telemetry.reset_registry()
        self.run_small(
            spec=small_spec(qps_start=400.0),
            config=ServingConfig(concurrency=2, max_queue=8))
        shed = sum(registry.value("serving.shed", protocol=p)
                   for p in ("do53", "dot", "doh"))
        assert shed > 0

    def test_cache_warms_over_the_run(self):
        report = self.run_small()
        assert report.cache.hits > 0
        assert report.cache.hit_ratio > 0.3

    def test_cache_churn_under_tiny_capacity(self):
        # A cache far smaller than the name universe must show
        # LRU pressure, and the run must still complete cleanly.
        world = small_world(seed=18, cache_entries=8)
        engine = ServingEngine(world, ServingConfig(concurrency=16,
                                                    max_queue=64))
        report = engine.run(small_spec())
        engine.close()
        assert report.cache.pressure_lru > 0
        assert report.served == report.offered

    def test_invalid_config_rejected(self):
        world = small_world()
        with pytest.raises(ValueError):
            ServingEngine(world, ServingConfig(concurrency=0))
        with pytest.raises(ValueError):
            ServingEngine(world, ServingConfig(max_queue=-1))


class TestScorecard:
    def card(self, seed=19):
        world = small_world(seed=seed)
        engine = ServingEngine(world, ServingConfig(concurrency=16,
                                                    max_queue=64))
        report = engine.run(small_spec())
        engine.close()
        return ResolverScorecard.from_report(report, seed=seed)

    def test_same_seed_byte_identical(self):
        telemetry.reset_registry()
        first = self.card().to_json_bytes()
        telemetry.reset_registry()
        second = self.card().to_json_bytes()
        assert first == second

    def test_different_seed_differs(self):
        assert self.card(seed=19).to_json_bytes() != \
            self.card(seed=20).to_json_bytes()

    def test_scores_are_bounded(self):
        for entry in self.card().protocols:
            assert 0.0 <= entry.score <= 100.0
            assert 0.0 <= entry.success_rate <= 1.0

    def test_quantile_presets_present_and_monotone(self):
        for entry in self.card().protocols:
            quantiles = [entry.p50_ms, entry.p95_ms, entry.p99_ms,
                         entry.p999_ms]
            assert all(value is not None for value in quantiles)
            assert quantiles == sorted(quantiles)

    def test_shed_queries_lower_the_score(self):
        world = small_world(seed=21)
        engine = ServingEngine(world, ServingConfig(concurrency=2,
                                                    max_queue=4))
        report = engine.run(small_spec(qps_start=400.0))
        engine.close()
        card = ResolverScorecard.from_report(report, seed=21)
        assert any(entry.score < 100.0 for entry in card.protocols)
        assert any(entry.success_rate < 1.0 for entry in card.protocols)

    def test_table_renders_every_protocol(self):
        text = self.card().to_table()
        for protocol in ("do53", "dot", "doh"):
            assert protocol in text
        assert "p99.9" in text

    def test_json_carries_schema_version(self):
        document = json.loads(self.card().to_json_bytes())
        assert document["schema_version"] == 1
        assert document["cache"]["hits"] > 0


class TestBench:
    def small_config(self):
        return BenchConfig(queries_per_protocol=150, qps=75.0, clients=6,
                           names=64, concurrency=16, max_queue=64,
                           overload_duration_s=2.0, repro_queries=100)

    def test_overload_leg_completes_with_shed(self):
        leg = run_overload_leg(self.small_config())
        assert leg["completed"]
        assert leg["shed"] > 0
        assert leg["served"] + leg["shed"] == leg["offered"]

    def test_repro_check_is_identical(self):
        repro = run_repro_check(self.small_config())
        assert repro["identical"]
        assert repro["digest_a"] == repro["digest_b"]

    def test_validator_accepts_the_committed_artifact_shape(self):
        document = {
            "schema_version": 1, "seed": 2019,
            "queries_per_protocol": 100,
            "protocols": {
                protocol: {"served": 100, "qps_wall": 1000.0,
                           "p50_ms": 10.0, "p95_ms": 20.0,
                           "p99_ms": 30.0, "p999_ms": 40.0,
                           "success_rate": 1.0}
                for protocol in ("do53", "dot", "doh")},
            "overload": {"completed": True, "shed": 5},
            "reproducibility": {"identical": True},
        }
        validate_document(document)

    def test_validator_rejects_missing_leg(self):
        with pytest.raises(ValueError, match="missing protocol leg"):
            validate_document({
                "schema_version": 1, "seed": 1,
                "queries_per_protocol": 1, "protocols": {},
                "overload": {}, "reproducibility": {}})

    def test_validator_rejects_low_served(self):
        document = {
            "schema_version": 1, "seed": 1, "queries_per_protocol": 100,
            "protocols": {
                protocol: {"served": 10, "qps_wall": 1.0, "p50_ms": 1.0,
                           "p95_ms": 2.0, "p99_ms": 3.0, "p999_ms": 4.0,
                           "success_rate": 1.0}
                for protocol in ("do53", "dot", "doh")},
            "overload": {"completed": True, "shed": 5},
            "reproducibility": {"identical": True},
        }
        with pytest.raises(ValueError, match="below"):
            validate_document(document)

    def test_validator_rejects_shed_free_overload(self):
        document = {
            "schema_version": 1, "seed": 1, "queries_per_protocol": 10,
            "protocols": {
                protocol: {"served": 10, "qps_wall": 1.0, "p50_ms": 1.0,
                           "p95_ms": 2.0, "p99_ms": 3.0, "p999_ms": 4.0,
                           "success_rate": 1.0}
                for protocol in ("do53", "dot", "doh")},
            "overload": {"completed": True, "shed": 0},
            "reproducibility": {"identical": True},
        }
        with pytest.raises(ValueError, match="shed nothing"):
            validate_document(document)

    def test_validator_rejects_non_identical_repro(self):
        document = {
            "schema_version": 1, "seed": 1, "queries_per_protocol": 10,
            "protocols": {
                protocol: {"served": 10, "qps_wall": 1.0, "p50_ms": 1.0,
                           "p95_ms": 2.0, "p99_ms": 3.0, "p999_ms": 4.0,
                           "success_rate": 1.0}
                for protocol in ("do53", "dot", "doh")},
            "overload": {"completed": True, "shed": 5},
            "reproducibility": {"identical": False},
        }
        with pytest.raises(ValueError, match="byte-identical"):
            validate_document(document)


class TestCli:
    def test_serve_table(self, capsys):
        from repro.cli import main
        assert main(["serve", "--duration", "3", "--qps", "40",
                     "--clients", "6", "--names", "64"]) == 0
        out = capsys.readouterr().out
        assert "serving scorecard" in out
        assert "do53" in out and "dot" in out and "doh" in out

    def test_serve_json_is_seed_stable(self, capsys):
        from repro.cli import main
        runs = []
        for _ in range(2):
            assert main(["--seed", "5", "serve", "--duration", "2",
                         "--qps", "30", "--clients", "4", "--names", "32",
                         "--format", "json"]) == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        assert json.loads(runs[0])["seed"] == 5

    def test_serve_rejects_bad_mix(self, capsys):
        from repro.cli import main
        assert main(["serve", "--mix", "dot=x"]) == 2

    def test_bench_serving_validate_mode(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "BENCH_SERVING.json"
        assert main(["bench-serving", "--queries", "120", "--qps", "60",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["bench-serving", "--validate", str(out),
                     "--min-queries", "120"]) == 0
        assert "valid serving benchmark" in capsys.readouterr().out

    def test_bench_serving_validate_rejects_garbage(self, tmp_path):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["bench-serving", "--validate", str(bad)]) == 1
