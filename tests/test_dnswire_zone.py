"""Tests for authoritative zones and the builder helpers."""

import pytest

from repro.dnswire import DnsName, Rcode, ResourceRecord, RRType, make_query
from repro.dnswire.builder import (
    nxdomain,
    rewrite_answers,
    servfail,
    unique_probe_name,
)
from repro.dnswire.builder import make_response
from repro.dnswire.zone import Zone
from repro.errors import ScenarioError

ORIGIN = DnsName.from_text("probe.example.")


@pytest.fixture()
def zone() -> Zone:
    zone = Zone(ORIGIN, ResourceRecord.soa(
        ORIGIN, ORIGIN.child("ns1"), ORIGIN.child("hostmaster"), serial=1))
    zone.add(ResourceRecord.a(ORIGIN.child("www"), "192.0.2.10"))
    zone.add(ResourceRecord.a(ORIGIN.child("*"), "192.0.2.53"))
    zone.add(ResourceRecord.cname(ORIGIN.child("alias"),
                                  ORIGIN.child("www")))
    return zone


class TestZoneLookups:
    def test_exact_match(self, zone):
        result = zone.lookup(ORIGIN.child("www"), RRType.A)
        assert result.rcode == Rcode.NOERROR
        assert result.records[0].rdata.address == "192.0.2.10"

    def test_wildcard_synthesis(self, zone):
        result = zone.lookup(ORIGIN.child("xyz123"), RRType.A)
        assert result.rcode == Rcode.NOERROR
        assert result.records[0].name == ORIGIN.child("xyz123")
        assert result.records[0].rdata.address == "192.0.2.53"

    def test_exact_match_beats_wildcard(self, zone):
        result = zone.lookup(ORIGIN.child("www"), RRType.A)
        assert result.records[0].rdata.address == "192.0.2.10"

    def test_cname_chain_followed(self, zone):
        result = zone.lookup(ORIGIN.child("alias"), RRType.A)
        assert result.rcode == Rcode.NOERROR
        assert result.records[0].rrtype == RRType.CNAME
        assert result.records[-1].rdata.address == "192.0.2.10"

    def test_out_of_zone_name_is_nxdomain(self, zone):
        result = zone.lookup(DnsName.from_text("other.example."), RRType.A)
        assert result.rcode == Rcode.NXDOMAIN

    def test_existing_name_with_missing_type_is_noerror_empty(self, zone):
        result = zone.lookup(ORIGIN.child("www"), RRType.AAAA)
        # Wildcard doesn't cover AAAA; name exists so NOERROR/NODATA...
        # except the wildcard matches any label. Query the apex instead.
        result = zone.lookup(ORIGIN, RRType.TXT)
        assert result.rcode == Rcode.NOERROR
        assert result.is_empty

    def test_cname_loop_servfails(self):
        zone = Zone(ORIGIN)
        zone.add(ResourceRecord.cname(ORIGIN.child("a"), ORIGIN.child("b")))
        zone.add(ResourceRecord.cname(ORIGIN.child("b"), ORIGIN.child("a")))
        result = zone.lookup(ORIGIN.child("a"), RRType.A)
        assert result.rcode == Rcode.SERVFAIL

    def test_cname_to_external_target_returns_partial_chain(self):
        zone = Zone(ORIGIN)
        external = DnsName.from_text("elsewhere.example.com.")
        zone.add(ResourceRecord.cname(ORIGIN.child("ext"), external))
        result = zone.lookup(ORIGIN.child("ext"), RRType.A)
        assert result.rcode == Rcode.NOERROR
        assert result.records[-1].rdata.target == external

    def test_out_of_zone_record_rejected(self, zone):
        with pytest.raises(ScenarioError):
            zone.add(ResourceRecord.a(DnsName.from_text("evil.example."),
                                      "192.0.2.1"))

    def test_record_count(self, zone):
        assert zone.record_count() == 4  # SOA + www + wildcard + alias


class TestBuilderHelpers:
    def test_unique_probe_name_lowercases(self):
        name = unique_probe_name(ORIGIN, "ABC123")
        assert name.labels[0] == b"abc123"

    def test_servfail_mirrors_query(self):
        query = make_query(ORIGIN.child("x"), msg_id=9)
        response = servfail(query)
        assert response.rcode() == Rcode.SERVFAIL
        assert response.header.msg_id == 9
        assert not response.answers

    def test_nxdomain_carries_authorities(self):
        query = make_query(ORIGIN.child("x"))
        soa = ResourceRecord.soa(ORIGIN, ORIGIN.child("ns1"),
                                 ORIGIN.child("h"), serial=1)
        response = nxdomain(query, authorities=[soa])
        assert response.rcode() == Rcode.NXDOMAIN
        assert response.authorities == (soa,)

    def test_rewrite_answers_replaces_every_a(self):
        query = make_query(ORIGIN.child("x"))
        response = make_response(query, answers=[
            ResourceRecord.a(ORIGIN.child("x"), "192.0.2.1"),
            ResourceRecord.a(ORIGIN.child("x"), "192.0.2.2"),
        ])
        rewritten = rewrite_answers(response, "198.51.100.7")
        assert rewritten.answer_addresses() == ("198.51.100.7",
                                                "198.51.100.7")

    def test_rewrite_preserves_non_a_records(self):
        query = make_query(ORIGIN.child("x"), RRType.TXT)
        response = make_response(query, answers=[
            ResourceRecord.txt(ORIGIN.child("x"), "keep me")])
        rewritten = rewrite_answers(response, "198.51.100.7")
        assert rewritten.answers[0].rdata.strings == (b"keep me",)
