"""Tests for the methodology limitations the paper documents (§3.1).

Two negative results are part of the paper's method story: zone files
cannot find subdomain-hosted DoH services, and a port-853 sweep misses
DoT servers on non-standard ports. Both must hold in the reproduction.
"""

import pytest

from repro.core.scan import ScanCampaign, ZmapScanner, ZoneFileDohDiscovery
from repro.core.scan.doh_scan import DohDiscovery
from repro.datasets.zonefile import build_zone_file


@pytest.fixture(scope="module")
def world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=3))


@pytest.fixture(scope="module")
def doh_discovery(world):
    network = world.client_network()
    return DohDiscovery(network, world.rng.fork("lim"), world.trust_store,
                        world.bootstrap, world.probe_origin,
                        world.expected_probe_answer(),
                        public_list=world.public_doh_list())


class TestZoneFileLimitation:
    def test_zone_files_only_list_slds(self, world):
        zone_file = build_zone_file(world)
        assert all(sld.count(".") == 1 for sld in zone_file)

    def test_zone_file_discovery_misses_subdomain_services(self, world,
                                                           doh_discovery):
        zone_records = ZoneFileDohDiscovery(doh_discovery).discover(
            build_zone_file(world))
        zone_found = [record for record in zone_records if record.is_doh]
        url_found = [record for record in
                     doh_discovery.discover(world.url_dataset())
                     if record.is_doh]
        # The URL corpus finds all 17 services; zone files only the few
        # hosted directly on a registrable domain.
        assert len(url_found) == 17
        assert 0 < len(zone_found) < len(url_found) / 2

    def test_zone_file_finds_only_sld_hosted_services(self, world,
                                                      doh_discovery):
        zone_records = ZoneFileDohDiscovery(doh_discovery).discover(
            build_zone_file(world))
        for record in zone_records:
            if record.is_doh:
                assert record.hostname.count(".") == 1


class TestNonStandardPortLimitation:
    def test_sweep_misses_dot_on_other_ports(self, world, rng, trust):
        from repro.netsim import Host, country
        from repro.netsim.host import TlsConfig
        from repro.resolvers import DnsUniverse, DotService, RecursiveBackend
        from repro.tlssim import make_chain

        network = world.network_for_round(0)
        universe = DnsUniverse()
        chain = make_chain(trust["ca"], "hidden.dot.example",
                           "2018-06-01", "2019-12-01")
        hidden = Host(address="198.51.77.77", country_code="DE",
                      point=country("DE").point)
        hidden.bind("tcp", 8853, DotService(
            RecursiveBackend(universe, rng.fork("b")),
            TlsConfig(cert_chain=chain)))
        network.add_host(hidden)
        try:
            scanner = ZmapScanner(network, rng.fork("z"))
            sweep = scanner.sweep(853)
            # The methodology explicitly scans only the default port;
            # "those services are not considered in this study".
            assert hidden.address not in sweep.open_addresses
            # A sweep of the non-standard port would see it.
            other = scanner.sweep(8853)
            assert hidden.address in other.open_addresses
        finally:
            network.remove_host(hidden.address)
