"""Differential pin for the procedural world (ISSUE 8).

The determinism contract: a host is a pure function of
``(seed, address)``. Materialisation strategy — eager registry, lazy
LRU-backed derivation, shard-restricted partial builds, any
materialisation *order* — must never change a single field, and full
campaign artefacts must serialise byte-identical across eager, lazy,
and lazy+sharded execution.

``scripts/check.sh`` runs this module twice under different
``PYTHONHASHSEED`` values (like the chaos and parallel suites) to
prove none of it leans on hash ordering.
"""

from __future__ import annotations

import random
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.analysis import tables
from repro.core.client import FailureDiagnosis
from repro.core.client.performance import PerformanceStudy
from repro.core.client.reachability import ReachabilityStudy, platform_points
from repro.core.parallel import ParallelConfig
from repro.core.scan.campaign import ScanCampaign
from repro.core.scan.zmap import ZmapScanner
from repro.errors import ScenarioError
from repro.netsim.host import Host
from repro.netsim.ipv4 import Netblock
from repro.netsim.procgen import RangeSegment
from repro.netsim.rand import keyed_offset
from repro.telemetry.manifest import RunManifest
from repro.world.scenario import ScenarioConfig, build_scenario
from tests.conftest import tiny_config

pytestmark = pytest.mark.procedural

SEED = 133
SHARDS = 5
ROUNDS = 2
REACH_SAMPLE = 0.08
PERF_SAMPLE = 0.15

#: tracemalloc ceiling for the 10^6-address sweep; the bench measured
#: ~2.5 MB, so 48 MB is generous headroom without letting an O(space)
#: regression slip through (one Host per address would need ~1 GB).
SCALE_PEAK_BUDGET_BYTES = 48 * 1024 * 1024


def lazy_tiny_config(seed: int = SEED, **overrides) -> ScenarioConfig:
    config = tiny_config(seed)
    config.world_mode = "lazy"
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


# -- host fingerprints --------------------------------------------------------

def _tls_fingerprint(service) -> tuple:
    tls = getattr(service, "tls", None)
    if tls is None:
        return ()
    # Serials are a process-global issuance counter — identical world,
    # different scenario instance, different serials — so the
    # fingerprint pins every *derived* certificate field except them.
    return tuple(
        (cert.subject_cn, cert.issuer_cn, cert.not_before, cert.not_after,
         cert.san, cert.is_ca)
        for cert in tls.cert_chain) + (tls.alpn,)


def fingerprint(host: Host) -> tuple:
    """Every derived field of a host, minus object identities."""
    return (
        host.address,
        host.country_code,
        (host.point.lat, host.point.lon),
        tuple((point.lat, point.lon) for point in host.pops),
        host.processing_ms,
        tuple(sorted(host.tags)),
        host.ptr_name,
        host.webpage,
        host.operator,
        tuple(sorted(
            (proto, port, type(service).__name__,
             _tls_fingerprint(service))
            for (proto, port), service in host.services.items())),
    )


# -- satellite 1: purity / order-invariance ----------------------------------

class TestDerivationPurity:
    def test_eager_and_lazy_worlds_match_field_for_field(self):
        eager = build_scenario(tiny_config(SEED))
        lazy = build_scenario(lazy_tiny_config(SEED))
        eager_net = eager.network_for_round(0)
        lazy_net = lazy.network_for_round(0)
        addresses = list(eager_net.iter_addresses())
        assert addresses == list(lazy_net.iter_addresses())
        for address in addresses:
            left = eager_net.host_at(address)
            right = lazy_net.host_at(address)
            assert fingerprint(left) == fingerprint(right), address

    @settings(max_examples=8, deadline=None)
    @given(order_seed=st.integers(0, 2**32 - 1))
    def test_materialisation_order_never_changes_fields(self, order_seed):
        """Touch the same world in two unrelated orders; every host must
        come out identical — derivation draws only from per-address
        forks, never from shared sequential state."""
        forward = build_scenario(lazy_tiny_config(SEED))
        shuffled = build_scenario(lazy_tiny_config(SEED))
        net_a = forward.network_for_round(0)
        net_b = shuffled.network_for_round(0)
        addresses = list(net_a.iter_addresses())
        permuted = list(addresses)
        random.Random(order_seed).shuffle(permuted)
        prints_a = {address: fingerprint(net_a.host_at(address))
                    for address in addresses}
        prints_b = {address: fingerprint(net_b.host_at(address))
                    for address in permuted}
        assert prints_a == prints_b

    def test_repeated_touch_returns_cached_instance(self):
        scenario = build_scenario(lazy_tiny_config(SEED))
        network = scenario.network_for_round(0)
        address = next(network.iter_addresses())
        assert network.host_at(address) is network.host_at(address)

    def test_partial_world_matches_full_world(self):
        """A shard-restricted build derives the same hosts as the same
        addresses inside the full world (the only_addresses contract)."""
        scenario = build_scenario(lazy_tiny_config(SEED))
        full = scenario.network_for_round(0)
        subset = frozenset(list(full.iter_addresses())[::7])
        partial = scenario.fresh_network_for_round(
            0, only_addresses=subset)
        assert set(partial.iter_addresses()) == subset
        for address in subset:
            assert (fingerprint(partial.host_at(address))
                    == fingerprint(full.host_at(address)))

    def test_world_mode_validated(self):
        config = tiny_config(SEED)
        config.world_mode = "psychic"
        with pytest.raises(ScenarioError):
            build_scenario(config)


class TestScaledSegment:
    def test_closed_scaled_address_is_absent_in_both_modes(self):
        overrides = dict(world_scale=12.0, background_open_stride=8)
        lazy = build_scenario(lazy_tiny_config(SEED, **overrides))
        eager_config = tiny_config(SEED)
        for key, value in overrides.items():
            setattr(eager_config, key, value)
        eager = build_scenario(eager_config)
        segment = lazy.round_layout(0).scaled
        assert segment is not None
        closed = next(segment.address_of(index)
                      for index in range(segment.stride)
                      if not segment.is_open(index))
        for network in (lazy.network_for_round(0),
                        eager.network_for_round(0)):
            assert network.host_at(closed) is None
            assert not network.tcp_port_open(closed, 853)

    def test_open_scaled_hosts_match_across_modes(self):
        overrides = dict(world_scale=12.0, background_open_stride=8)
        lazy = build_scenario(lazy_tiny_config(SEED, **overrides))
        eager_config = tiny_config(SEED)
        for key, value in overrides.items():
            setattr(eager_config, key, value)
        eager = build_scenario(eager_config)
        lazy_net = lazy.network_for_round(0)
        eager_net = eager.network_for_round(0)
        segment = lazy.round_layout(0).scaled
        for _, address in segment.open_items():
            assert (fingerprint(lazy_net.host_at(address))
                    == fingerprint(eager_net.host_at(address)))

    def test_exactly_one_open_host_per_stride_block(self):
        segment = RangeSegment("t", 4096, Netblock.from_text("11.0.0.0/16"),
                               853, 64, "2019:bg-open-0")
        opens = list(segment.open_items())
        assert len(opens) == 4096 // 64
        for block, (index, _) in enumerate(opens):
            assert index // 64 == block
            assert index % 64 == keyed_offset("2019:bg-open-0", block, 64)


# -- satellite 4: full-materialise regression --------------------------------

class TestFullMaterialiseRegression:
    def test_sweep_never_materialises(self):
        """The scan pipeline must stream; hitting ``hosts()`` on a
        procedural world would re-grow memory with the address space."""
        scenario = build_scenario(lazy_tiny_config(SEED))
        network = scenario.network_for_round(0)
        scanner = ZmapScanner(network, scenario.rng.fork("zmap-0"))
        scanner.sweep(853, 0)
        assert network.full_materialise_calls == 0
        assert network.host_cache_peak == 0

    def test_hosts_view_is_cached_between_mutations(self):
        scenario = build_scenario(tiny_config(SEED))
        network = scenario.network_for_round(0)
        first = network.hosts()
        assert network.hosts() is first
        assert network.hosts_with_tcp_port(853) \
            is network.hosts_with_tcp_port(853)
        network.add_host(Host(address="198.51.100.99", country_code="US",
                              point=first[0].point))
        assert network.hosts() is not first

    def test_lazy_hosts_promotes_whole_world_once(self):
        scenario = build_scenario(lazy_tiny_config(SEED))
        network = scenario.network_for_round(0)
        view = network.hosts()
        assert len(view) == network.address_count()
        assert network.full_materialise_calls == 1
        assert network.hosts() is view
        assert network.full_materialise_calls == 2


# -- satellite 2: differential golden run -------------------------------------

_snapshots = {}

#: (key, world_mode, workers)
_RUNS = {
    "eager": ("eager", 1),
    "lazy": ("lazy", 1),
    "lazy-sharded": ("lazy", 4),
}


def snapshot(key: str) -> dict:
    """Every artefact of one full campaign in one materialisation mode.

    All three runs shard with the same plan (shards define the
    experiment); they differ only in world mode and worker count —
    neither of which may change a byte of any artefact.
    """
    if key in _snapshots:
        return _snapshots[key]
    world_mode, workers = _RUNS[key]
    telemetry.reset_registry()
    try:
        config = tiny_config(SEED)
        config.world_mode = world_mode
        scenario = build_scenario(config)
        parallel = ParallelConfig(workers=workers, shards=SHARDS,
                                  min_fanout_items=0, oversubscribe=True)
        campaign = ScanCampaign(scenario, parallel=parallel).run(
            rounds=ROUNDS, include_doh=True)
        study = ReachabilityStudy(scenario)
        report = study.run_sharded("proxyrack", parallel,
                                   sample=REACH_SAMPLE)
        report = study.run_sharded("zhima", parallel, sample=REACH_SAMPLE,
                                   report=report)
        perf = PerformanceStudy(scenario).run_sharded(parallel,
                                                      sample=PERF_SAMPLE)
        failed = set(report.failed_endpoints("proxyrack", "Cloudflare",
                                             "dot"))
        points = [point for point in platform_points(
            scenario, "proxyrack", REACH_SAMPLE)
            if point.env.label in failed]
        diagnosis = FailureDiagnosis(
            scenario.client_network(), scenario.rng.fork("diagnosis"),
            retry_policy=scenario.retry_policy(op="client.diag")
        ).diagnose_all(points)
        registry = telemetry.get_registry()
        manifest = RunManifest.collect(
            config, registry, include_git=False,
            execution=parallel.manifest_execution())
        _snapshots[key] = {
            "table2": tables.table2_text(campaign),
            "table4": tables.table4_text(report),
            "table5": tables.table5_text(diagnosis),
            # The manifest deliberately records the world mode, so the
            # byte-compared telemetry snapshot excludes it; the
            # manifest's own contents are pinned separately below.
            "telemetry": telemetry.to_json(registry,
                                           telemetry.get_tracer()),
            "manifest": manifest.as_dict(),
            "doh": tuple((record.url, record.is_doh, record.latency_ms)
                         for record in campaign.doh_records),
            "timings": tuple(
                (timing.endpoint, timing.median_do53_ms,
                 timing.median_dot_ms, timing.median_doh_ms)
                for timing in perf.timings),
        }
    finally:
        telemetry.reset_registry()
    return _snapshots[key]


class TestEagerLazyEquivalence:
    @pytest.mark.parametrize("other", ["lazy", "lazy-sharded"])
    def test_byte_identical_artifacts(self, other):
        base = snapshot("eager")
        candidate = snapshot(other)
        for key in ("table2", "table4", "table5", "telemetry", "doh",
                    "timings"):
            assert base[key] == candidate[key], (
                f"artefact {key!r} differs between eager and {other}")

    def test_manifest_records_world_mode_and_scale(self):
        for key, (world_mode, _) in _RUNS.items():
            manifest = snapshot(key)["manifest"]
            assert manifest["world"]["mode"] == world_mode
            assert manifest["world"]["world_scale"] == 1.0
            assert manifest["scenario"]["world_mode"] == world_mode

    def test_manifests_identical_apart_from_world_mode(self):
        def scrub(manifest):
            record = {key: value for key, value in manifest.items()
                      if key != "world"}
            record["scenario"] = {
                key: value
                for key, value in manifest["scenario"].items()
                if key != "world_mode"}
            return record

        base = snapshot("eager")["manifest"]
        for other in ("lazy", "lazy-sharded"):
            assert scrub(base) == scrub(snapshot(other)["manifest"])


# -- satellite 3: memory regression at 10^6 addresses -------------------------

@pytest.mark.scale
class TestScaleMemory:
    def test_million_address_sweep_stays_flat(self):
        config = ScenarioConfig(
            seed=SEED, scan_rounds=2, vantage_scale=0.005,
            background_sample_size=100, url_dataset_noise=500,
            intercepted_clients=2, hijacked_routers=1,
            world_mode="lazy", world_scale=10_000.0)
        tracemalloc.start()
        try:
            scenario = build_scenario(config)
            network = scenario.network_for_round(0)
            assert network.address_count() >= 1_000_000
            scanner = ZmapScanner(network, scenario.rng.fork("zmap-0"))
            result = scanner.sweep(853, 0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak <= SCALE_PEAK_BUDGET_BYTES, (
            f"10^6-address sweep peaked at {peak / 1e6:.1f} MB")
        # The sweep streams: nothing materialised, LRU untouched.
        assert network.full_materialise_calls == 0
        assert network.host_cache_peak <= network.host_cache_size
        # Openness is procedural: one open host per stride block
        # beyond the explicit sample.
        segment = scenario.round_layout(0).scaled
        extra_opens = segment.open_count()
        assert segment.count >= 999_000
        assert len(result.open_addresses) >= extra_opens
