"""Tests for the scanning leg: ZMap sweeps, DoT/DoH discovery, grouping."""

import pytest

from repro.core.scan import (
    DohDiscovery,
    DotDiscovery,
    ScanCampaign,
    ZmapScanner,
    group_into_providers,
)
from repro.core.scan.providers import provider_stats, resolvers_per_provider_cdf
from repro.netsim.rand import SeededRng
from repro.tlssim.certs import ValidationFailure


@pytest.fixture(scope="module")
def campaign_result(scenario_module):
    campaign = ScanCampaign(scenario_module)
    result = campaign.run(rounds=2, include_doh=True)
    return result


@pytest.fixture(scope="module")
def scenario_module():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=77))


class TestZmap:
    def test_sweep_finds_all_open_hosts(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(1, "z"),
                              background_total=2_000_000)
        sweep = scanner.sweep(853, round_index=0)
        expected = len(network.hosts_with_tcp_port(853))
        assert sweep.materialized_count == expected
        assert sweep.total_open_estimate >= 2_000_000

    def test_sweep_order_is_randomised(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(2, "z"))
        first = scanner.sweep(853, round_index=0).open_addresses
        second = scanner.sweep(853, round_index=1).open_addresses
        assert sorted(first) == sorted(second)
        assert first != second

    def test_opt_out_honoured(self, scenario_module):
        network = scenario_module.network_for_round(0)
        victim = network.hosts_with_tcp_port(853)[0].address
        scanner = ZmapScanner(network, SeededRng(3, "z"),
                              opt_out={victim})
        sweep = scanner.sweep(853)
        assert victim not in sweep.open_addresses
        assert sweep.opted_out == 1

    def test_sources_rotate(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(4, "z"))
        sources = {scanner.source_for_probe(index).address
                   for index in range(6)}
        assert len(sources) == 3


class TestDotDiscovery:
    def test_probe_real_resolver(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(5, "z"))
        discovery = DotDiscovery(network, scanner, SeededRng(6, "d"),
                                 scenario_module.trust_store,
                                 scenario_module.probe_origin,
                                 scenario_module.expected_probe_answer())
        record = discovery.probe_one("1.1.1.1")
        assert record.is_dot
        assert record.answer_correct
        assert record.cert_report.valid
        assert record.common_name == "cloudflare-dns.com"

    def test_probe_background_host_fails(self, scenario_module):
        network = scenario_module.network_for_round(0)
        background = [host for host in network.hosts()
                      if host.has_tag("background-853")]
        assert background
        scanner = ZmapScanner(network, SeededRng(7, "z"))
        discovery = DotDiscovery(network, scanner, SeededRng(8, "d"),
                                 scenario_module.trust_store,
                                 scenario_module.probe_origin,
                                 scenario_module.expected_probe_answer())
        record = discovery.probe_one(background[0].address)
        assert not record.is_dot

    def test_fixed_answer_resolver_flagged_incorrect(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(9, "z"))
        discovery = DotDiscovery(network, scanner, SeededRng(10, "d"),
                                 scenario_module.trust_store,
                                 scenario_module.probe_origin,
                                 scenario_module.expected_probe_answer())
        record = discovery.probe_one("103.247.37.37")  # dnsfilter
        assert record.is_dot
        assert not record.answer_correct
        assert record.answers == ("198.51.100.7",)

    def test_grouping_key_uses_sld(self, scenario_module):
        network = scenario_module.network_for_round(0)
        scanner = ZmapScanner(network, SeededRng(11, "z"))
        discovery = DotDiscovery(network, scanner, SeededRng(12, "d"),
                                 scenario_module.trust_store,
                                 scenario_module.probe_origin,
                                 scenario_module.expected_probe_answer())
        record = discovery.probe_one("1.1.1.1")
        assert record.grouping_key() == "cloudflare-dns.com"


class TestCampaign:
    def test_round_results(self, campaign_result):
        assert len(campaign_result.rounds) == 2
        first = campaign_result.first
        assert first.stats.dot_resolvers > 1_500
        assert first.stats.total_open_estimate > 1_000_000
        assert len(first.groups) > 100

    def test_authoritative_log_validates_probes(self, scenario_module,
                                                campaign_result):
        log = scenario_module.universe.log_for(scenario_module.probe_origin)
        assert len(log) >= campaign_result.first.stats.dot_resolvers

    def test_country_counts(self, campaign_result):
        counts = campaign_result.first.country_counts()
        assert counts["IE"] > counts["DE"]

    def test_provider_statistics(self, campaign_result):
        stats = campaign_result.first.provider_statistics()
        assert stats.invalid_cert_providers > 30
        assert 0.15 < stats.invalid_provider_fraction < 0.40
        assert stats.failure_totals[ValidationFailure.SELF_SIGNED] > 30

    def test_doh_discovery_finds_17(self, campaign_result):
        working = campaign_result.working_doh()
        assert len(working) == 17
        beyond = [record for record in working
                  if not record.in_public_list]
        assert len(beyond) == 2
        assert {record.hostname for record in beyond} == {
            "dns.rubyfish.cn", "dns.233py.com"}

    def test_doh_certificates_all_valid(self, campaign_result):
        assert all(record.cert_valid
                   for record in campaign_result.working_doh())

    def test_doh_lookalikes_fail_probe(self, campaign_result):
        failures = [record for record in campaign_result.doh_records
                    if not record.is_doh]
        assert len(failures) >= 40


class TestGrouping:
    def test_group_and_stats(self, campaign_result):
        groups = campaign_result.first.groups
        stats = provider_stats(groups)
        assert stats.resolver_count == len(campaign_result.first.resolvers)
        assert stats.top_coverage[5] < stats.top_coverage[10] <= 1.0
        assert 0.5 < stats.single_address_fraction < 0.9

    def test_cdf_is_monotone(self, campaign_result):
        cdf = resolvers_per_provider_cdf(campaign_result.first.groups)
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_groups(self):
        assert group_into_providers([]) == []
        stats = provider_stats([])
        assert stats.provider_count == 0
        assert stats.invalid_provider_fraction == 0.0
