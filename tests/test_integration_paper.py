"""Integration tests: the paper's headline findings at test scale.

These run the whole pipeline on the shared tiny scenario and assert the
*shape* of every key finding — the same checks EXPERIMENTS.md records at
paper scale.
"""

import pytest

from repro.analysis.report import ExperimentSuite
from repro.core.scan import ScanCampaign


@pytest.fixture(scope="module")
def suite():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return ExperimentSuite(scenario=build_scenario(tiny_config(seed=13)),
                           netflow_scale=0.2)


class TestFinding1:
    """Servers: discovery and certificate hygiene."""

    def test_over_1500_dot_resolvers_per_scan(self, suite):
        for round_result in suite.campaign().rounds:
            assert len(round_result.resolvers) > 1_500

    def test_millions_of_port853_hosts(self, suite):
        assert suite.campaign().first.stats.total_open_estimate > 2_000_000

    def test_quarter_of_providers_have_invalid_certs(self, suite):
        stats = suite.campaign().last.provider_statistics()
        assert 0.18 < stats.invalid_provider_fraction < 0.35

    def test_final_scan_cert_breakdown_matches_paper(self, suite):
        from repro.tlssim.certs import ValidationFailure
        stats = suite.campaign().last.provider_statistics()
        assert stats.invalid_cert_resolvers == 122
        assert stats.invalid_cert_providers == 62
        assert stats.failure_totals[ValidationFailure.EXPIRED] == 27
        assert stats.failure_totals[ValidationFailure.SELF_SIGNED] == 67
        assert stats.failure_totals[ValidationFailure.BROKEN_CHAIN] == 28

    def test_17_doh_resolvers_2_beyond_list(self, suite):
        working = suite.campaign().working_doh()
        assert len(working) == 17
        assert sum(1 for record in working
                   if not record.in_public_list) == 2

    def test_doh_has_no_invalid_certificates(self, suite):
        assert all(record.cert_valid
                   for record in suite.campaign().working_doh())

    def test_table2_growth_directions(self, suite):
        growth = dict((code, pct) for code, _, _, pct
                      in suite.campaign().country_growth())
        assert growth["IE"] > 80
        assert growth["US"] > 300
        assert growth["CN"] < -70


class TestFinding2:
    """Clients: reachability."""

    def test_doe_more_reachable_than_cleartext(self, suite):
        report = suite.reachability()
        do53 = report.rates("proxyrack", "Cloudflare", "do53")
        dot = report.rates("proxyrack", "Cloudflare", "dot")
        doh = report.rates("proxyrack", "Cloudflare", "doh")
        assert do53["failed"] > 0.10
        assert dot["failed"] < 0.06
        assert doh["failed"] < 0.06

    def test_google_doh_censored_in_china(self, suite):
        rates = suite.reachability().rates("zhima", "Google", "doh")
        assert rates["failed"] > 0.98

    def test_quad9_doh_misconfiguration(self, suite):
        rates = suite.reachability().rates("proxyrack", "Quad9", "doh")
        assert 0.06 < rates["incorrect"] < 0.22

    def test_interception_breaks_doh_not_opportunistic_dot(self, suite):
        report = suite.reachability()
        cases = [case for case in report.interceptions
                 if case.intercepts_853]
        assert cases
        assert all(case.dot_lookup_succeeded for case in cases)

    def test_diagnosis_explains_dot_failures(self, suite):
        diagnosis = suite.diagnosis()
        assert diagnosis.clients
        # Every diagnosed client's port/webpage profile contradicts the
        # genuine resolver: something else answers on 1.1.1.1 for them.
        assert all(client.is_conflict for client in diagnosis.clients)
        assert diagnosis.conflict_count() == len(diagnosis.clients)


class TestFinding3:
    """Clients: performance."""

    def test_reused_overhead_is_milliseconds(self, suite):
        summary = suite.performance().global_summary()
        assert abs(summary["dot_median"]) < 20
        assert abs(summary["doh_median"]) < 25

    def test_no_reuse_overhead_is_hundreds_of_ms(self, suite):
        results = {result.vantage: result for result in suite.no_reuse()}
        assert results["controlled-AU"].dot_overhead_ms > 100
        assert results["controlled-HK"].doh_overhead_ms > 100

    def test_india_gains_from_doe(self, suite):
        rows = {row.country: row
                for row in suite.performance().by_country(min_clients=2)}
        if "IN" in rows:  # tiny scale may lack Indian clients
            assert rows["IN"].doh_overhead_median_ms < -40


class TestFinding4:
    """Usage: traffic volume and growth."""

    def test_cloudflare_dot_growth(self, suite):
        _, report = suite.netflow_report()
        assert 0.3 < report.growth("cloudflare", "2018-07",
                                   "2018-12") < 0.9

    def test_dot_far_below_do53(self, suite):
        _, report = suite.netflow_report()
        assert report.dot_to_do53_ratio("cloudflare") > 100

    def test_traffic_not_from_scanners(self, suite):
        assert not any(suite.scanner_vetting().values())

    def test_doh_usage_dominated_by_google(self, suite):
        usage = suite.doh_usage()
        assert usage.dominant_domain() == "dns.google.com"
        assert len(usage.popular) == 4
        assert 8 < usage.growth("doh.cleanbrowsing.org", "2018-09",
                                "2019-03") < 11


class TestTelemetryIntegration:
    """A full campaign leaves a coherent trail in the default registry."""

    @pytest.fixture(scope="class")
    def fresh_run(self, suite):
        from repro import telemetry
        from repro.core.client.reachability import ReachabilityStudy
        telemetry.reset_registry()
        ScanCampaign(suite.scenario).run(rounds=1, include_doh=False)
        study = ReachabilityStudy(suite.scenario)
        study.run("proxyrack", suite.proxyrack_network().endpoints()[:2])
        yield telemetry.get_registry(), telemetry.get_tracer()
        telemetry.reset_registry()

    def test_campaign_emits_scan_counters(self, fresh_run):
        registry, _ = fresh_run
        assert registry.total("scan.probes_sent") > 0
        assert registry.total("dot.handshake.ok") > 0
        assert registry.total("scan.rounds") == 1

    def test_client_latency_histogram_populated(self, fresh_run):
        registry, _ = fresh_run
        histogram = registry.get("client.query.latency", protocol="dot",
                                 reuse="false")
        assert histogram is not None and histogram.count > 0
        assert histogram.quantile(0.95) >= histogram.quantile(0.5) > 0

    def test_span_tree_covers_campaign_sweep_probe(self, fresh_run):
        _, tracer = fresh_run
        campaign = tracer.find("campaign")
        assert campaign is not None
        assert campaign.find("scan.sweep") is not None
        assert campaign.find("scan.probe") is not None

    def test_transport_counters_track_probes(self, fresh_run):
        registry, _ = fresh_run
        opened = registry.total("netsim.transport.connections_opened")
        assert opened > 0
        # Every successful DoT probe opened at least one connection.
        assert opened >= registry.total("dot.handshake.ok")


class TestSuitePlumbing:
    def test_results_are_cached(self, suite):
        assert suite.campaign() is suite.campaign()
        assert suite.reachability() is suite.reachability()

    def test_render_all_produces_every_section(self, suite):
        text = suite.render_all()
        for marker in ("Table 1", "Table 2", "Table 4", "Table 5",
                       "Table 6", "Table 7", "Table 8", "Figure 3",
                       "Figure 11", "Figure 13"):
            assert marker in text, marker

    def test_determinism_across_builds(self):
        from tests.conftest import tiny_config
        first = ExperimentSuite.build(tiny_config(seed=99))
        second = ExperimentSuite.build(tiny_config(seed=99))
        campaign_a = ScanCampaign(first.scenario).run(rounds=1,
                                                      include_doh=False)
        campaign_b = ScanCampaign(second.scenario).run(rounds=1,
                                                       include_doh=False)
        assert ([record.address for record in campaign_a.first.resolvers]
                == [record.address for record in campaign_b.first.resolvers])


class TestEmptyFaultPlanNoRegression:
    """An installed-but-empty fault injector must not move a single bit.

    The fault layer's determinism contract: an injector holding an empty
    plan draws no randomness, so Tables 4/5 come out byte-identical to a
    run without any injector at all.
    """

    def test_tables_4_and_5_unchanged(self):
        from tests.conftest import tiny_config
        from repro.analysis import tables
        from repro.netsim.faults import FaultInjector, FaultPlan
        from repro.netsim.rand import SeededRng
        from repro.world.scenario import build_scenario

        def tables_4_and_5(install_empty_injector: bool):
            scenario = build_scenario(tiny_config(seed=13))
            if install_empty_injector:
                scenario.client_network().install_fault_injector(
                    FaultInjector(FaultPlan.empty(),
                                  SeededRng(13).fork("faults")))
            run = ExperimentSuite(scenario=scenario, netflow_scale=0.2)
            return (tables.table4_text(run.reachability()),
                    tables.table5_text(run.diagnosis()))

        assert tables_4_and_5(False) == tables_4_and_5(True)
