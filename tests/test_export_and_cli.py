"""Tests for the dataset-release exports and the command-line interface."""

import json

import pytest

from repro.analysis import export
from repro.core.scan import ScanCampaign
from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=47))


@pytest.fixture(scope="module")
def campaign(world):
    return ScanCampaign(world).run(rounds=2)


class TestExport:
    def test_dot_resolver_rows(self, campaign):
        rows = export.export_dot_resolvers(campaign)
        assert len(rows) == len(campaign.last.resolvers)
        sample = rows[0]
        assert set(sample) == {"address", "country", "provider",
                               "answer_correct", "cert_valid",
                               "cert_failure"}
        invalid = [row for row in rows if not row["cert_valid"]]
        assert all(row["cert_failure"] for row in invalid)

    def test_doh_resolver_rows(self, campaign):
        rows = export.export_doh_resolvers(campaign)
        assert len(rows) == 17
        assert all(row["cert_valid"] for row in rows)

    def test_scan_timeseries(self, campaign):
        rows = export.export_scan_timeseries(campaign)
        assert len(rows) == 2
        assert rows[0]["dot_resolvers"] > 1_500

    def test_reachability_rows_are_anonymised(self, world):
        from repro.core.client import ReachabilityStudy
        study = ReachabilityStudy(world)
        report = study.run("proxyrack", world.proxyrack()[:5])
        rows = export.export_reachability(report)
        assert rows
        # No raw endpoint labels or addresses leak into the release.
        for row in rows:
            assert row["endpoint"].startswith("client-")
            assert "proxyrack-" not in row["endpoint"]

    def test_anonymize_truncates_addresses(self):
        assert export._anonymize("100.128.7.99") == "100.128.7.0/24"
        assert export._anonymize("not-an-ip") == "not-an-ip"

    def test_json_roundtrip(self, campaign):
        text = export.to_json(export.export_doh_resolvers(campaign))
        assert len(json.loads(text)) == 17

    def test_csv_has_header(self, campaign):
        text = export.to_csv(export.export_scan_timeseries(campaign))
        header = text.splitlines()[0]
        assert "dot_resolvers" in header

    def test_csv_of_nothing(self):
        assert export.to_csv([]) == ""

    def test_write_release(self, campaign, tmp_path):
        paths = export.write_release(campaign, None, None, str(tmp_path))
        assert len(paths) == 3
        for path in paths:
            assert (tmp_path / path.split("/")[-1]).exists()

    def test_netflow_monthly_rows(self):
        from repro.core.usage import DotTrafficStudy
        from repro.datasets.netflow import generate_netflow_dataset
        from repro.netsim.rand import SeededRng
        dataset = generate_netflow_dataset(SeededRng(5), scale=0.05,
                                           include_scanners=False,
                                           include_noise=False)
        report = DotTrafficStudy().analyze(dataset)
        rows = export.export_netflow_monthly(report)
        assert rows
        assert all(row["do53_flows"] >= row["dot_flows"] for row in rows)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_runs_without_a_world(self, capsys):
        assert main(["compare"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "Table 8" in output

    def test_scan_command(self, capsys):
        assert main(["--scale", "0.004", "--seed", "3", "scan"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "DoH: 17 working services" in output

    def test_release_command(self, tmp_path, capsys):
        assert main(["--scale", "0.004", "--seed", "3", "release",
                     str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert output.count("wrote ") == 5
        assert (tmp_path / "dot_resolvers.json").exists()
