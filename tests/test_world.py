"""Tests for the world scenario: providers, populations, calibration."""

import pytest

from repro.world.population import (
    build_atlas_probes,
    build_proxyrack,
    build_zhima,
)
from repro.world.providers import (
    CERT_VALID,
    OTHER_COUNTRY_COUNTS,
    TABLE2_COUNTS,
    build_provider_population,
)
from repro.world.scenario import GOOGLE_DOH_IP, SELF_BUILT_IP
from repro.netsim.rand import SeededRng


class TestProviderPopulation:
    @pytest.fixture(scope="class")
    def providers(self):
        return build_provider_population(SeededRng(2019, "t"),
                                         total_rounds=10)

    def test_table2_counts_first_round(self, providers):
        counts = {}
        for provider in providers:
            for spec in provider.addresses_in_round(0):
                counts[spec.country] = counts.get(spec.country, 0) + 1
        for code, (first, _) in TABLE2_COUNTS.items():
            assert counts[code] == pytest.approx(first, abs=2), code

    def test_table2_counts_final_round(self, providers):
        counts = {}
        for provider in providers:
            for spec in provider.addresses_in_round(9):
                counts[spec.country] = counts.get(spec.country, 0) + 1
        for code, (_, last) in TABLE2_COUNTS.items():
            assert counts[code] == pytest.approx(last, abs=2), code

    def test_over_1500_resolvers_every_round(self, providers):
        for round_index in range(10):
            total = sum(len(provider.addresses_in_round(round_index))
                        for provider in providers)
            assert total > 1_500, round_index

    def test_invalid_cert_budget(self, providers):
        invalid = [spec for provider in providers
                   for spec in provider.addresses_in_round(9)
                   if spec.cert_status != CERT_VALID]
        assert len(invalid) == 122
        invalid_providers = [
            provider for provider in providers
            if provider.addresses_in_round(9)
            and provider.has_invalid_cert_in_round(9)]
        assert len(invalid_providers) == 62

    def test_invalid_provider_fraction_near_25_percent(self, providers):
        active = [provider for provider in providers
                  if provider.addresses_in_round(9)]
        invalid = [provider for provider in active
                   if provider.has_invalid_cert_in_round(9)]
        assert 0.2 < len(invalid) / len(active) < 0.32

    def test_seventy_percent_single_address(self, providers):
        active = [provider for provider in providers
                  if provider.addresses_in_round(9)]
        singles = sum(1 for provider in active
                      if len(provider.addresses_in_round(9)) == 1)
        assert 0.62 < singles / len(active) < 0.80

    def test_large_providers_cover_most_addresses(self, providers):
        active = [provider for provider in providers
                  if provider.addresses_in_round(9)]
        sizes = sorted((len(provider.addresses_in_round(9))
                        for provider in active), reverse=True)
        total = sum(sizes)
        assert sum(sizes[:7]) / total > 0.75

    def test_seventeen_doh_templates(self, providers):
        templates = [provider.doh_template for provider in providers
                     if provider.doh_template]
        assert len(templates) == 17
        in_list = [provider for provider in providers
                   if provider.doh_template and provider.in_public_list]
        assert len(in_list) == 15

    def test_unique_addresses(self, providers):
        addresses = [spec.address for provider in providers
                     for spec in provider.addresses]
        assert len(addresses) == len(set(addresses))

    def test_determinism(self):
        first = build_provider_population(SeededRng(7, "t"), total_rounds=5)
        second = build_provider_population(SeededRng(7, "t"), total_rounds=5)
        assert ([p.name for p in first] == [p.name for p in second])
        assert ([a.address for p in first for a in p.addresses]
                == [a.address for p in second for a in p.addresses])


class TestPopulations:
    def test_proxyrack_size_and_geography(self):
        points = build_proxyrack(400, SeededRng(1, "pr"),
                                 interception_count=3,
                                 hijacked_router_count=2)
        assert len(points) == 400
        countries = {point.env.country_code for point in points}
        assert len(countries) > 20

    def test_interception_count_exact(self):
        points = build_proxyrack(300, SeededRng(2, "pr"),
                                 interception_count=5,
                                 hijacked_router_count=0)
        intercepted = [point for point in points
                       if point.interceptor_cn is not None]
        assert len(intercepted) == 5

    def test_hijacked_routers_claim_1111(self):
        points = build_proxyrack(300, SeededRng(3, "pr"),
                                 interception_count=0,
                                 hijacked_router_count=4)
        hijacked = [point for point in points
                    if point.conflict_kind == "hijacked-router"]
        assert len(hijacked) == 4
        for point in hijacked:
            assert "1.1.1.1" in point.env.conflicts
            device = point.env.conflicts["1.1.1.1"].device
            assert "coinhive" in (device.webpage or "")

    def test_india_has_cleartext_route_penalty(self):
        points = build_proxyrack(1500, SeededRng(4, "pr"),
                                 interception_count=0,
                                 hijacked_router_count=0)
        indian = [point for point in points
                  if point.env.country_code == "IN"]
        assert indian, "expected some Indian endpoints at n=1500"
        for point in indian:
            assert point.env.route_penalty_ms("1.1.1.1", 53) > 0
            assert point.env.route_penalty_ms("1.1.1.1", 853) == 0

    def test_zhima_all_chinese(self):
        points = build_zhima(200, SeededRng(5, "zh"))
        assert all(point.env.country_code == "CN" for point in points)
        assert all(point.platform == "zhima" for point in points)

    def test_zhima_has_five_ases(self):
        points = build_zhima(50, SeededRng(6, "zh"))
        assert len({point.env.asn for point in points}) == 5

    def test_atlas_probe_split(self):
        probes, capable = build_atlas_probes(600, SeededRng(7, "at"),
                                             dot_capable_rate=0.05)
        public = [probe for probe in probes if probe.uses_public_resolver]
        assert 0 < len(public) < len(probes)
        assert all(ip not in ("8.8.8.8",) for ip in capable)


class TestScenario:
    def test_scan_dates_cadence(self, scenario):
        dates = scenario.scan_dates()
        assert len(dates) == scenario.config.scan_rounds
        assert dates[1] - dates[0] == pytest.approx(10 * 86400.0)

    def test_client_network_has_key_hosts(self, client_network):
        for address in ("1.1.1.1", "9.9.9.9", "8.8.8.8", SELF_BUILT_IP,
                        GOOGLE_DOH_IP):
            assert client_network.host_at(address) is not None, address

    def test_google_has_no_dot(self, client_network):
        host = client_network.host_at("8.8.8.8")
        assert host.service_on("tcp", 853) is None

    def test_self_built_serves_all_protocols(self, client_network):
        host = client_network.host_at(SELF_BUILT_IP)
        for proto, port in (("udp", 53), ("tcp", 53), ("tcp", 853),
                            ("tcp", 443)):
            assert host.service_on(proto, port) is not None

    def test_probe_zone_wildcard(self, scenario):
        addresses = scenario.universe.resolve_public(
            "anytoken." + scenario.probe_origin.to_display())
        assert addresses == scenario.expected_probe_answer()

    def test_bootstrap_resolves_doh_hostnames(self, scenario):
        scenario.client_network()  # ensure hosts and records exist
        assert scenario.bootstrap("mozilla.cloudflare-dns.com")
        assert scenario.bootstrap("dns.quad9.net")

    def test_background_population_shrinks(self, scenario):
        first = scenario.background_open853(0)
        last = scenario.background_open853(scenario.final_round())
        assert first > last > 1_000_000

    def test_networks_are_cached(self, scenario):
        assert (scenario.network_for_round(0)
                is scenario.network_for_round(0))

    def test_public_lists(self, scenario):
        dot_list = scenario.public_dot_list()
        assert "1.1.1.1" in dot_list
        assert "9.9.9.9" in dot_list
        assert len(scenario.public_doh_list()) == 15
