"""Tests for clock, rng, geo and IPv4 helpers."""

import pytest

from repro.errors import ScenarioError
from repro.netsim import (
    COUNTRIES,
    Netblock,
    SeededRng,
    SimClock,
    country,
    great_circle_km,
    int_to_ip,
    ip_to_int,
    is_public_unicast,
    slash24,
)
from repro.netsim.clock import format_date, iter_months, month_key, parse_date
from repro.netsim.geo import GeoPoint, nearest
from repro.netsim.ipv4 import random_public_ip


class TestClock:
    def test_parse_format_roundtrip(self):
        assert format_date(parse_date("2019-02-01")) == "2019-02-01"

    def test_advance(self):
        clock = SimClock(100.0)
        clock.advance(5.0)
        assert clock.now() == 105.0

    def test_advance_ms(self):
        clock = SimClock()
        clock.advance_ms(1500.0)
        assert clock.now() == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_set_backwards_rejected(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.set_to(5.0)

    def test_month_key(self):
        assert month_key(parse_date("2018-07-15")) == "2018-07"

    def test_iter_months_spans_year_boundary(self):
        months = [month_key(ts) for ts in iter_months(
            parse_date("2018-11-15"), parse_date("2019-02-15"))]
        assert months == ["2018-11", "2018-12", "2019-01", "2019-02"]

    def test_at_date(self):
        clock = SimClock.at_date("2019-05-01")
        assert format_date(clock.now()) == "2019-05-01"


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(1).random()
        b = SeededRng(1).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_forks_are_independent(self):
        root = SeededRng(1)
        fork_a = root.fork("a")
        fork_b = root.fork("b")
        assert fork_a.random() != fork_b.random()

    def test_fork_is_deterministic(self):
        assert SeededRng(9).fork("x").random() == SeededRng(9).fork("x").random()

    def test_fork_path_nesting(self):
        nested = SeededRng(1).fork("a").fork("b")
        assert nested.path == "a/b"

    def test_chance_extremes(self):
        rng = SeededRng(3)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_binomial_bounds(self):
        rng = SeededRng(4)
        for trials, p in ((10, 0.5), (100_000, 0.001), (500, 0.0), (7, 1.0)):
            draw = rng.binomial(trials, p)
            assert 0 <= draw <= trials

    def test_binomial_large_mean_accuracy(self):
        rng = SeededRng(5)
        draws = [rng.binomial(3_000_000, 1 / 3000.0) for _ in range(50)]
        mean = sum(draws) / len(draws)
        assert 900 < mean < 1100  # expectation is 1000

    def test_clipped_gauss_respects_bounds(self):
        rng = SeededRng(6)
        for _ in range(200):
            value = rng.clipped_gauss(5.0, 10.0, low=1.0, high=8.0)
            assert 1.0 <= value <= 8.0

    def test_token_alphabet(self):
        token = SeededRng(7).token(24)
        assert len(token) == 24
        assert token.islower() or token.isdigit() or token.isalnum()

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRng(8)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"a"}


class TestGeo:
    def test_country_lookup(self):
        assert country("DE").name == "Germany"

    def test_unknown_country_raises(self):
        with pytest.raises(ScenarioError):
            country("XX")

    def test_all_paper_countries_present(self):
        for code in ("IE", "CN", "US", "DE", "FR", "JP", "NL", "GB",
                     "BR", "RU", "ID", "VN", "IN", "LA", "MY"):
            assert code in COUNTRIES

    def test_great_circle_known_distance(self):
        # Berlin-ish to New York-ish should be roughly 6,400 km.
        km = great_circle_km(GeoPoint(52.5, 13.4), GeoPoint(40.7, -74.0))
        assert 6000 < km < 6800

    def test_distance_to_self_is_zero(self):
        point = country("JP").point
        assert great_circle_km(point, point) == pytest.approx(0.0)

    def test_distance_is_symmetric(self):
        a, b = country("BR").point, country("AU").point
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_nearest(self):
        candidates = (country("US").point, country("SG").point)
        index, km = nearest(country("JP").point, candidates)
        assert index == 1  # Singapore is closer to Japan than the US

    def test_nearest_empty_raises(self):
        with pytest.raises(ScenarioError):
            nearest(country("US").point, ())

    def test_proxy_weights_positive(self):
        assert all(entry.proxy_weight > 0 for entry in COUNTRIES.values())


class TestIpv4:
    def test_roundtrip(self):
        assert int_to_ip(ip_to_int("203.0.113.77")) == "203.0.113.77"

    def test_ip_to_int_known_value(self):
        assert ip_to_int("1.0.0.1") == (1 << 24) + 1

    def test_bad_address_raises(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ScenarioError):
                ip_to_int(bad)

    def test_slash24(self):
        assert slash24("198.51.100.73") == "198.51.100.0/24"

    def test_public_unicast_excludes_reserved(self):
        for reserved in ("10.1.2.3", "192.168.1.1", "127.0.0.1",
                         "169.254.1.1", "224.0.0.5", "100.64.0.1"):
            assert not is_public_unicast(reserved)

    def test_public_unicast_accepts_public(self):
        for public in ("8.8.8.8", "1.1.1.1", "93.184.216.34"):
            assert is_public_unicast(public)

    def test_random_public_ip(self):
        rng = SeededRng(10)
        for _ in range(100):
            assert is_public_unicast(random_public_ip(rng))

    def test_netblock_contains(self):
        block = Netblock.from_text("192.0.2.0/24")
        assert block.contains("192.0.2.200")
        assert not block.contains("192.0.3.1")

    def test_netblock_size(self):
        assert Netblock.from_text("10.0.0.0/30").size == 4

    def test_netblock_nth(self):
        block = Netblock.from_text("10.0.0.0/30")
        assert block.nth(3) == "10.0.0.3"
        with pytest.raises(ScenarioError):
            block.nth(4)

    def test_netblock_needs_prefix(self):
        with pytest.raises(ScenarioError):
            Netblock.from_text("10.0.0.0")

    def test_netblock_addresses_iterates_all(self):
        block = Netblock.from_text("198.51.100.4/31")
        assert list(block.addresses()) == ["198.51.100.4", "198.51.100.5"]
