"""Tests for certificates, chains, trust stores and validation."""

import pytest

from repro.errors import ScenarioError
from repro.netsim.clock import parse_date
from repro.tlssim import (
    CaStore,
    CertificateAuthority,
    ValidationFailure,
    make_chain,
    resign_for,
    self_signed,
    validate_chain,
)
from repro.tlssim.certs import ValidationReport

NOW = parse_date("2019-05-01")


@pytest.fixture()
def ca():
    return CertificateAuthority.root("Test Root")


@pytest.fixture()
def store(ca):
    store = CaStore()
    store.trust(ca)
    return store


class TestValidChains:
    def test_valid_leaf(self, ca, store):
        chain = make_chain(ca, "dns.example.com", "2018-06-01",
                           "2019-12-01")
        assert validate_chain(chain, store, NOW).valid

    def test_intermediate_chain(self, ca, store):
        intermediate = ca.intermediate("Test Issuing CA")
        chain = make_chain(intermediate, "dns.example.com",
                           "2018-06-01", "2019-12-01")
        assert len(chain) == 3
        assert validate_chain(chain, store, NOW).valid

    def test_name_match_via_san(self, ca, store):
        chain = make_chain(ca, "cloudflare-dns.com", "2018-06-01",
                           "2019-12-01",
                           san=("*.cloudflare-dns.com",))
        report = validate_chain(chain, store, NOW,
                                expected_name="mozilla.cloudflare-dns.com")
        assert report.valid

    def test_wildcard_matches_single_label_only(self, ca, store):
        chain = make_chain(ca, "*.example.com", "2018-06-01", "2019-12-01")
        ok = validate_chain(chain, store, NOW, expected_name="a.example.com")
        deep = validate_chain(chain, store, NOW,
                              expected_name="a.b.example.com")
        assert ok.valid
        assert deep.has(ValidationFailure.NAME_MISMATCH)


class TestFailureModes:
    def test_expired(self, ca, store):
        chain = make_chain(ca, "dns.example.com", "2017-01-01",
                           "2018-07-20")
        report = validate_chain(chain, store, NOW)
        assert report.has(ValidationFailure.EXPIRED)
        assert report.primary_failure() is ValidationFailure.EXPIRED

    def test_not_yet_valid(self, ca, store):
        chain = make_chain(ca, "dns.example.com", "2020-01-01",
                           "2021-01-01")
        assert validate_chain(chain, store, NOW).has(
            ValidationFailure.NOT_YET_VALID)

    def test_expiry_boundary_is_inclusive(self, ca, store):
        chain = make_chain(ca, "dns.example.com", "2018-06-01",
                           "2019-05-01")
        assert validate_chain(chain, store, NOW).valid

    def test_self_signed(self, store):
        chain = self_signed("FGT60E4Q16000001", "2017-01-01", "2027-01-01")
        report = validate_chain(chain, store, NOW)
        assert report.has(ValidationFailure.SELF_SIGNED)

    def test_untrusted_ca(self, store):
        rogue = CertificateAuthority.root("Rogue CA", trusted=False)
        chain = make_chain(rogue, "dns.example.com", "2018-06-01",
                           "2019-12-01")
        assert validate_chain(chain, store, NOW).has(
            ValidationFailure.UNTRUSTED_CA)

    def test_broken_chain(self, ca, store):
        other_root = CertificateAuthority.root("Unrelated Root")
        store.trust(other_root)
        leaf = ca.intermediate("Hidden Issuer").issue(
            "dns.example.com", "2018-06-01", "2019-12-01")
        chain = (leaf, other_root.certificate)
        report = validate_chain(chain, store, NOW)
        assert report.has(ValidationFailure.BROKEN_CHAIN)

    def test_empty_chain(self, store):
        report = validate_chain((), store, NOW)
        assert report.has(ValidationFailure.EMPTY_CHAIN)
        assert not report.valid

    def test_name_mismatch(self, ca, store):
        chain = make_chain(ca, "dns.example.com", "2018-06-01",
                           "2019-12-01")
        report = validate_chain(chain, store, NOW,
                                expected_name="other.example.com")
        assert report.has(ValidationFailure.NAME_MISMATCH)

    def test_name_check_skipped_when_unknown(self, ca, store):
        # The paper cannot know DoT resolver names discovered by address,
        # so it only verifies certificate paths.
        chain = make_chain(ca, "whatever.example", "2018-06-01",
                           "2019-12-01")
        assert validate_chain(chain, store, NOW, expected_name=None).valid

    def test_expired_intermediate_breaks_chain(self, ca, store):
        stale = ca.intermediate("Old Issuing CA", not_before="2015-01-01",
                                not_after="2018-01-01")
        chain = make_chain(stale, "dns.example.com", "2018-06-01",
                           "2019-12-01")
        assert validate_chain(chain, store, NOW).has(
            ValidationFailure.BROKEN_CHAIN)


class TestInterception:
    def test_resign_copies_subject(self, ca):
        rogue = CertificateAuthority.root("DPI CA", trusted=False)
        chain = resign_for(rogue, "dns.quad9.net")
        assert chain[0].subject_cn == "dns.quad9.net"
        assert chain[0].issuer_cn == "DPI CA"

    def test_resigned_chain_fails_strict_validation(self, store):
        rogue = CertificateAuthority.root("DPI CA", trusted=False)
        chain = resign_for(rogue, "dns.quad9.net")
        report = validate_chain(chain, store, NOW,
                                expected_name="dns.quad9.net")
        assert report.has(ValidationFailure.UNTRUSTED_CA)
        assert not report.has(ValidationFailure.NAME_MISMATCH)

    def test_resign_requires_untrusted_ca(self, ca):
        with pytest.raises(ScenarioError):
            resign_for(ca, "dns.quad9.net")


class TestReport:
    def test_priority_order(self):
        report = ValidationReport((ValidationFailure.BROKEN_CHAIN,
                                   ValidationFailure.EXPIRED))
        assert report.primary_failure() is ValidationFailure.EXPIRED

    def test_valid_report_has_no_primary(self):
        assert ValidationReport(()).primary_failure() is None

    def test_store_len(self, store, ca):
        assert len(store) == 1
        store.trust(CertificateAuthority.root("Second Root"))
        assert len(store) == 2

    def test_trusting_intermediate_trusts_its_root(self, ca):
        store = CaStore()
        store.trust(ca.intermediate("Mid CA"))
        assert store.is_trusted_root_key(ca.key_id)
