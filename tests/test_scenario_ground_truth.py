"""Cross-checks: what the scanner measures vs what the world contains.

These tests close the loop between `repro.world` (ground truth) and
`repro.core.scan` (measurement): every discovered property must agree
with the scenario's own records, which is what makes the pipeline's
numbers trustworthy rather than accidental.
"""

import pytest

from repro.core.scan import ScanCampaign
from repro.tlssim.certs import ValidationFailure, validate_chain
from repro.world.providers import (
    CERT_BAD_CHAIN,
    CERT_EXPIRED,
    CERT_EXPIRED_2018,
    CERT_FORTIGATE,
    CERT_SELF_SIGNED,
    CERT_VALID,
)


@pytest.fixture(scope="module")
def world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=61))


@pytest.fixture(scope="module")
def final_round(world):
    return ScanCampaign(world).run_round(world.final_round())


class TestScanAgainstGroundTruth:
    def test_every_active_resolver_discovered(self, world, final_round):
        discovered = {record.address for record in final_round.resolvers}
        expected = set()
        for provider in world.providers:
            for spec in provider.addresses_in_round(world.final_round()):
                expected.add(spec.address)
        assert discovered >= expected

    def test_cert_status_matches_validation(self, world, final_round):
        by_address = {record.address: record
                      for record in final_round.resolvers}
        failure_for_status = {
            CERT_EXPIRED: ValidationFailure.EXPIRED,
            CERT_EXPIRED_2018: ValidationFailure.EXPIRED,
            CERT_SELF_SIGNED: ValidationFailure.SELF_SIGNED,
            CERT_FORTIGATE: ValidationFailure.SELF_SIGNED,
            CERT_BAD_CHAIN: ValidationFailure.BROKEN_CHAIN,
        }
        checked = 0
        for address, record in world.resolver_records.items():
            scan = by_address.get(address)
            if scan is None or scan.cert_report is None:
                continue
            checked += 1
            status = record.spec.cert_status
            if status == CERT_VALID:
                assert scan.cert_report.valid, address
            else:
                assert (scan.cert_report.primary_failure()
                        is failure_for_status[status]), address
        assert checked > 1_000

    def test_provider_grouping_matches_operator(self, world, final_round):
        """Grouping by certificate CN recovers the true operator."""
        network = world.network_for_round(world.final_round())
        mismatches = 0
        sampled = 0
        for group in final_round.groups:
            for record in group.records[:3]:
                host = network.host_at(record.address)
                if host is None or host.operator is None:
                    continue
                truth = world.resolver_records.get(record.address)
                if truth is None:
                    # Special hosts (self-built, ISP local resolvers)
                    # are not provider ground truth.
                    continue
                sampled += 1
                expected_key = truth.provider.cert_cn
                # The grouping key is the CN folded to SLD for names.
                if "." in expected_key:
                    from repro.dnswire import DnsName
                    expected_key = DnsName.from_text(
                        expected_key).second_level_domain().to_display()
                if group.key != expected_key:
                    mismatches += 1
        assert sampled > 100
        assert mismatches == 0

    def test_fortigate_devices_carry_inspection_tag(self, world,
                                                    final_round):
        network = world.network_for_round(world.final_round())
        fortigate = [record for record in final_round.resolvers
                     if record.common_name.startswith("FGT")]
        assert len(fortigate) == 47
        for record in fortigate:
            host = network.host_at(record.address)
            assert host.has_tag("tls-inspection")

    def test_fixed_answer_resolvers_detected(self, world, final_round):
        dnsfilter = [record for record in final_round.resolvers
                     if record.grouping_key() == "dnsfilter.com"]
        assert dnsfilter
        assert all(not record.answer_correct for record in dnsfilter)
        others = [record for record in final_round.resolvers
                  if record.grouping_key() not in ("dnsfilter.com",)
                  and record.is_dot]
        correct_share = sum(1 for r in others if r.answer_correct) / len(
            others)
        assert correct_share > 0.99

    def test_advertised_flag_consistency(self, world):
        """Public-list addresses are exactly the advertised ones."""
        listed = set(world.public_dot_list())
        for provider in world.providers:
            if not provider.in_public_list:
                continue
            for spec in provider.addresses:
                assert (spec.address in listed) == spec.advertised

    def test_tls_configs_are_stable_across_rounds(self, world):
        """The same address presents the same chain in every round."""
        early = world.network_for_round(0)
        late = world.network_for_round(world.final_round())
        shared = 0
        for host in early.hosts_with_tcp_port(853)[:200]:
            other = late.host_at(host.address)
            if other is None or ("tcp", 853) not in other.services:
                continue
            shared += 1
            assert (host.service_on("tcp", 853).tls.cert_chain
                    == other.service_on("tcp", 853).tls.cert_chain)
        assert shared > 100
