"""Tests for repro.dnswire.names."""

import pytest

from repro.dnswire import DnsName
from repro.errors import NameError_


class TestParsing:
    def test_simple_name(self):
        name = DnsName.from_text("dns.example.com")
        assert name.labels == (b"dns", b"example", b"com")

    def test_trailing_dot_is_equivalent(self):
        assert (DnsName.from_text("a.example.com")
                == DnsName.from_text("a.example.com."))

    def test_root_from_dot(self):
        assert DnsName.from_text(".").is_root()

    def test_root_from_empty(self):
        assert DnsName.from_text("").is_root()

    def test_empty_inner_label_rejected(self):
        with pytest.raises(NameError_):
            DnsName.from_text("a..example.com")

    def test_label_longer_than_63_rejected(self):
        with pytest.raises(NameError_):
            DnsName.from_text("x" * 64 + ".example.com")

    def test_label_of_63_accepted(self):
        name = DnsName.from_text("x" * 63 + ".example.com")
        assert len(name.labels[0]) == 63

    def test_name_longer_than_255_octets_rejected(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            DnsName.from_text(".".join([label] * 5))

    def test_non_ascii_rejected(self):
        with pytest.raises(UnicodeEncodeError):
            DnsName.from_text("ünïcode.example.com")


class TestComparison:
    def test_case_insensitive_equality(self):
        assert (DnsName.from_text("DNS.Example.COM")
                == DnsName.from_text("dns.example.com"))

    def test_case_insensitive_hash(self):
        names = {DnsName.from_text("A.B.C"), DnsName.from_text("a.b.c")}
        assert len(names) == 1

    def test_inequality_with_other_types(self):
        assert DnsName.from_text("a.example.") != "a.example."

    def test_ordering_is_by_reversed_labels(self):
        # DNSSEC canonical ordering groups siblings under a parent.
        a = DnsName.from_text("a.example.com")
        z = DnsName.from_text("z.example.com")
        other = DnsName.from_text("a.example.net")
        assert a < z
        assert z < other  # com < net at the rightmost label


class TestManipulation:
    def test_parent(self):
        name = DnsName.from_text("a.b.example.com")
        assert name.parent().to_text() == "b.example.com."

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            DnsName.root().parent()

    def test_child(self):
        base = DnsName.from_text("example.com")
        assert base.child("probe").to_text() == "probe.example.com."

    def test_is_subdomain_of_self(self):
        name = DnsName.from_text("example.com")
        assert name.is_subdomain_of(name)

    def test_is_subdomain_of_parent(self):
        child = DnsName.from_text("a.b.example.com")
        assert child.is_subdomain_of(DnsName.from_text("example.com"))

    def test_not_subdomain_of_sibling(self):
        assert not DnsName.from_text("a.example.com").is_subdomain_of(
            DnsName.from_text("b.example.com"))

    def test_everything_is_subdomain_of_root(self):
        assert DnsName.from_text("x.y").is_subdomain_of(DnsName.root())

    def test_partial_label_match_is_not_subdomain(self):
        # "aexample.com" must not count as a subdomain of "example.com".
        assert not DnsName.from_text("aexample.com").is_subdomain_of(
            DnsName.from_text("example.com"))

    def test_second_level_domain(self):
        name = DnsName.from_text("mozilla.cloudflare-dns.com")
        assert name.second_level_domain().to_text() == "cloudflare-dns.com."

    def test_second_level_domain_of_short_name(self):
        name = DnsName.from_text("example.com")
        assert name.second_level_domain() == name


class TestRendering:
    def test_to_text_is_absolute(self):
        assert DnsName.from_text("a.b").to_text() == "a.b."

    def test_root_to_text(self):
        assert DnsName.root().to_text() == "."

    def test_to_display_strips_dot(self):
        assert DnsName.from_text("a.b.").to_display() == "a.b"

    def test_wire_length(self):
        # 1+3 + 1+7 + 1+3 + 1 = 17 for dns.example.com.
        assert DnsName.from_text("dns.example.com").wire_length() == 17

    def test_repr_roundtrip_text(self):
        name = DnsName.from_text("x.example.org")
        assert "x.example.org." in repr(name)
