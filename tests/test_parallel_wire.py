"""Persistent pool, compact wire format, and adaptive dispatch.

Covers the executor mechanics under the sharded determinism contract:

* the wire codec round-trips registries and span trees losslessly, and
  wire-transported fragments merge byte-identically to object graphs;
* the in-process fallback restores the caller's telemetry pair even
  when a shard raises (regression: a raising shard used to be able to
  leak its isolated registry into the caller);
* worker counts above ``os.cpu_count()`` clamp (with the clamped-away
  excess counted under the scheduling namespace) unless the run
  explicitly oversubscribes;
* adaptive dispatch decisions are a pure predicate of (item count,
  threshold), recorded in the manifest execution block;
* a pool reused across campaign rounds produces the same bytes as a
  fresh pool per round and as the in-process path;
* sharded serving merges byte-identical scorecards at any worker count.
"""

from __future__ import annotations

import os

import pytest

from repro import telemetry
from repro.analysis import tables
from repro.core.parallel import (
    DEFAULT_IN_PROCESS_THRESHOLD,
    ParallelConfig,
    ShardOutcome,
    merge_outcomes,
    run_shards,
    shutdown_worker_pool,
)
from repro.core.scan.campaign import ScanCampaign
from repro.telemetry.metrics import MetricsRegistry, WIRE_VERSION
from repro.telemetry.spans import Span, Tracer
from repro.world.scenario import build_scenario
from tests.conftest import tiny_config

pytestmark = pytest.mark.parallel


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("probe.sent", 3)
    registry.inc("probe.sent", 2, protocol="dot")
    registry.set_gauge("scan.round.dot_resolvers", 17, round="1")
    histogram = registry.histogram("probe.latency_ms", protocol="doh")
    for value in (0.4, 3.0, 3.0, 250.0, 8_000.0):
        histogram.observe(value)
    return registry


class TestWireCodec:
    def test_registry_round_trip(self):
        registry = _populated_registry()
        wire = registry.to_wire()
        assert wire[0] == WIRE_VERSION
        decoded = MetricsRegistry.from_wire(wire)
        assert decoded.to_wire() == wire
        assert decoded.value("probe.sent") == 3
        assert decoded.value("probe.sent", protocol="dot") == 2
        assert decoded.value("scan.round.dot_resolvers", round="1") == 17
        original = registry.get("probe.latency_ms", protocol="doh")
        copy = decoded.get("probe.latency_ms", protocol="doh")
        assert copy.as_dict() == original.as_dict()

    def test_registry_wire_is_flat(self):
        """Only tuples, strings and numbers cross the boundary."""
        def check(value):
            if isinstance(value, tuple):
                for item in value:
                    check(item)
            else:
                assert isinstance(value, (str, int, float, type(None))), (
                    f"non-flat wire element: {value!r}")
        check(_populated_registry().to_wire())

    def test_registry_wire_version_pinned(self):
        wire = _populated_registry().to_wire()
        with pytest.raises(ValueError):
            MetricsRegistry.from_wire((wire[0] + 1, wire[1]))

    def test_span_round_trip(self):
        tracer = Tracer()
        clock = {"now": 10.0}
        with tracer.span("outer", clock=lambda: clock["now"], kind="root"):
            clock["now"] = 12.5
            with tracer.span("inner", clock=lambda: clock["now"]):
                clock["now"] = 13.0
        root = tracer.roots[0]
        decoded = Span.from_wire(root.to_wire())
        assert decoded.to_wire() == root.to_wire()
        assert decoded.name == "outer"
        assert decoded.attrs == root.attrs
        assert decoded.sim_ms == root.sim_ms
        assert [child.name for child in decoded.children] == ["inner"]

    def test_wire_and_object_fragments_merge_identically(self):
        def worker(payload):
            registry = telemetry.get_registry()
            registry.inc("shard.work", payload + 1)
            registry.observe("shard.ms", payload * 1.5)
            with telemetry.get_tracer().span("shard.op",
                                             clock=lambda: 0.0):
                pass
            return ShardOutcome(payload, payload * 10)

        def merged_json(encode):
            saved = (telemetry.get_registry(), telemetry.get_tracer())
            try:
                outcomes = run_shards(worker, [0, 1, 2], workers=1)
                if encode:
                    outcomes = [outcome.encoded() for outcome in outcomes]
                registry, tracer = telemetry.reset_registry()
                values = merge_outcomes(outcomes, registry, tracer)
                assert values == [0, 10, 20]
                return telemetry.to_json(registry, tracer)
            finally:
                telemetry.install(*saved)

        assert merged_json(encode=False) == merged_json(encode=True)


class TestInProcessIsolation:
    def test_worker_exception_restores_caller_telemetry(self):
        """A raising shard must not leak its isolated registry into the
        caller (regression: the fallback now restores in a finally)."""
        registry, tracer = telemetry.reset_registry()
        registry.inc("caller.marker")

        def exploding(payload):
            telemetry.get_registry().inc("shard.leak")
            raise RuntimeError("shard boom")

        with pytest.raises(RuntimeError, match="shard boom"):
            run_shards(exploding, [1, 2], workers=1)
        assert telemetry.get_registry() is registry
        assert telemetry.get_tracer() is tracer
        assert registry.value("caller.marker") == 1
        assert registry.value("shard.leak") == 0


class TestWorkerClamp:
    def test_workers_clamped_to_cpu_count(self):
        registry, _ = telemetry.reset_registry()
        cpus = os.cpu_count() or 1
        config = ParallelConfig(workers=cpus + 7)
        assert config.effective_workers() == cpus
        assert registry.value("parallel.workers.clamped") == 7

    def test_oversubscribe_disables_clamp(self):
        registry, _ = telemetry.reset_registry()
        cpus = os.cpu_count() or 1
        config = ParallelConfig(workers=cpus + 7, oversubscribe=True)
        assert config.effective_workers() == cpus + 7
        assert registry.value("parallel.workers.clamped") == 0

    def test_in_range_workers_not_clamped(self):
        registry, _ = telemetry.reset_registry()
        assert ParallelConfig(workers=1).effective_workers() == 1
        assert registry.value("parallel.workers.clamped") == 0


class TestAdaptiveDispatch:
    def test_schedule_is_pure_threshold_predicate(self):
        config = ParallelConfig(workers=4, min_fanout_items=100)
        assert config.schedule(99) is True
        assert config.schedule(100) is False
        assert config.decisions == [
            {"items": 99, "in_process": True},
            {"items": 100, "in_process": False},
        ]

    def test_below_threshold_runs_in_process(self):
        telemetry.reset_registry()
        config = ParallelConfig(workers=4, min_fanout_items=1_000,
                                oversubscribe=True)

        def worker(payload):
            return ShardOutcome(payload, os.getpid())

        outcomes = config.dispatch(worker, [0, 1], item_count=10)
        assert {outcome.value for outcome in outcomes} == {os.getpid()}

    def test_manifest_execution_records_adaptive_block(self):
        config = ParallelConfig(workers=4, shards=6, min_fanout_items=100)
        config.schedule(42)
        config.schedule(5_000)
        execution = config.manifest_execution()
        assert "workers" not in execution
        assert execution["shards"] == 6
        assert execution["adaptive"] == {
            "threshold": 100,
            "decisions": [
                {"items": 42, "in_process": True},
                {"items": 5_000, "in_process": False},
            ],
        }

    def test_default_threshold(self):
        assert (ParallelConfig().min_fanout_items
                == DEFAULT_IN_PROCESS_THRESHOLD)


SEED = 91
ROUNDS = 3


def _campaign_bytes(workers: int, fresh_pool_per_round: bool = False):
    """Table 2 + deterministic telemetry for a 3-round sharded run."""
    telemetry.reset_registry()
    try:
        scenario = build_scenario(tiny_config(SEED))
        parallel = ParallelConfig(workers=workers, shards=4,
                                  min_fanout_items=0, oversubscribe=True)
        campaign = ScanCampaign(scenario, parallel=parallel)
        results = []
        for round_index in range(ROUNDS):
            if fresh_pool_per_round:
                shutdown_worker_pool()
            results.append(campaign.run_round(round_index))
        doh = campaign.run_doh_discovery()
        from repro.core.scan.campaign import CampaignResult
        result = CampaignResult(results, doh)
        return (tables.table2_text(result),
                telemetry.to_json(telemetry.get_registry(),
                                  telemetry.get_tracer()))
    finally:
        telemetry.reset_registry()
        shutdown_worker_pool()


class TestPoolReuseDeterminism:
    def test_reused_pool_matches_fresh_pools_and_in_process(self):
        """One pool serving all three rounds must not differ from a
        fresh pool per round, nor from no pool at all: worker reuse —
        including worker-side scenario caches surviving across rounds —
        is invisible in every output byte."""
        reused = _campaign_bytes(workers=2)
        fresh = _campaign_bytes(workers=2, fresh_pool_per_round=True)
        in_process = _campaign_bytes(workers=1)
        assert reused == fresh
        assert reused == in_process


class TestServingSharded:
    def test_scorecards_byte_identical_across_worker_counts(self):
        from repro.serving import (
            ResolverScorecard,
            ServingConfig,
            ServingWorldConfig,
            WorkloadSpec,
            run_sharded,
        )

        world_config = ServingWorldConfig(seed=7, clients=24, names=40)
        spec = WorkloadSpec(duration_s=5.0, qps_start=80.0, clients=24,
                            names=40)
        serving_config = ServingConfig(concurrency=8, max_queue=32)
        cards = []
        for workers in (1, 2):
            telemetry.reset_registry()
            try:
                parallel = ParallelConfig(workers=workers, shards=4,
                                          min_fanout_items=0,
                                          oversubscribe=True)
                report = run_sharded(world_config, spec, serving_config,
                                     parallel)
                cards.append(ResolverScorecard.from_report(
                    report, seed=7).to_json_bytes())
            finally:
                telemetry.reset_registry()
        shutdown_worker_pool()
        assert cards[0] == cards[1]
