"""Shared fixtures for the test suite.

The expensive fixtures (scenario, campaign, reachability) are
session-scoped and must be treated as read-only by tests.
"""

from __future__ import annotations

import pytest

from repro.netsim.clock import SimClock, parse_date
from repro.netsim.geo import country
from repro.netsim.host import Host, TlsConfig
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.resolvers import (
    DnsUniverse,
    Do53TcpService,
    Do53UdpService,
    DohService,
    DotService,
    RecursiveBackend,
    install_resolver_frontends,
)
from repro.tlssim import CaStore, CertificateAuthority, make_chain
from repro.world.scenario import Scenario, ScenarioConfig, build_scenario


def tiny_config(seed: int = 2019) -> ScenarioConfig:
    """An even smaller configuration than ``ScenarioConfig.small``."""
    return ScenarioConfig(
        seed=seed,
        vantage_scale=0.006,
        background_sample_size=40,
        url_dataset_noise=500,
        intercepted_clients=4,
        hijacked_routers=2,
    )


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A small, fully built world. Session-scoped: do not mutate."""
    return build_scenario(tiny_config())


@pytest.fixture(scope="session")
def client_network(scenario):
    return scenario.client_network()


@pytest.fixture()
def rng() -> SeededRng:
    return SeededRng(4242)


@pytest.fixture()
def trust() -> dict:
    """A standalone CA infrastructure: trusted root + store + rogue CA."""
    ca = CertificateAuthority.root("Test Root CA")
    store = CaStore()
    store.trust(ca)
    rogue = CertificateAuthority.root("Rogue DPI CA", trusted=False)
    return {"ca": ca, "store": store, "rogue": rogue}


@pytest.fixture()
def mini_world(rng, trust):
    """A self-contained network: one full resolver + universe + client.

    Independent from the session scenario, safe to mutate.
    """
    network = Network(clock=SimClock(parse_date("2019-03-01")))
    universe = DnsUniverse()
    universe.host_a("www.example.com", "93.184.216.34")
    universe.host_a("dns.resolver.test", "7.7.7.7")
    chain = make_chain(trust["ca"], "dns.resolver.test",
                       "2018-06-01", "2019-12-01",
                       san=("dns.resolver.test",))
    host = Host(address="7.7.7.7", country_code="US",
                point=country("US").point,
                pops=(country("US").point, country("DE").point,
                      country("SG").point))
    backend = RecursiveBackend(universe, rng.fork("backend"))
    install_resolver_frontends(host, backend, TlsConfig(cert_chain=chain),
                               webpage_html="<title>resolver</title>")
    network.add_host(host)
    env = ClientEnvironment.in_country("mini-client", "82.5.6.7", "DE",
                                       rng.fork("env"))
    return {
        "network": network,
        "universe": universe,
        "host": host,
        "backend": backend,
        "env": env,
        "chain": chain,
        "resolver_ip": "7.7.7.7",
        "hostname": "dns.resolver.test",
    }
