"""Tests for the DNS message codec (records, header, full round trips)."""

import pytest

from repro.dnswire import (
    AData,
    DnsName,
    Flags,
    Header,
    Message,
    OptRecord,
    Question,
    Rcode,
    ResourceRecord,
    RRClass,
    RRType,
    TxtData,
    make_query,
    make_response,
)
from repro.dnswire.records import MxData, SoaData, _ipv6_from_bytes, _ipv6_to_bytes
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError

NAME = DnsName.from_text("dns.example.com")


def roundtrip(message: Message) -> Message:
    return Message.decode(message.encode())


class TestHeader:
    def test_flag_bits_roundtrip(self):
        flags = Flags(qr=True, aa=True, tc=False, rd=True, ra=True)
        assert Flags.from_bits(flags.to_bits()) == flags

    def test_message_id_roundtrip(self):
        message = make_query(NAME, msg_id=0xBEEF)
        assert roundtrip(message).header.msg_id == 0xBEEF

    def test_opcode_roundtrip(self):
        message = Message(header=Header(opcode=4),
                          questions=(Question(NAME),))
        assert roundtrip(message).header.opcode == 4

    def test_rcode_roundtrip(self):
        query = make_query(NAME)
        response = make_response(query, rcode=Rcode.NXDOMAIN)
        assert roundtrip(response).rcode() == Rcode.NXDOMAIN


class TestQueryResponse:
    def test_query_question(self):
        decoded = roundtrip(make_query(NAME, RRType.AAAA, msg_id=7))
        assert decoded.question.name == NAME
        assert decoded.question.rrtype == RRType.AAAA
        assert decoded.question.rrclass == RRClass.IN

    def test_query_has_rd_set(self):
        assert roundtrip(make_query(NAME)).header.flags.rd

    def test_response_mirrors_id_and_question(self):
        query = make_query(NAME, msg_id=321)
        response = make_response(
            query, answers=[ResourceRecord.a(NAME, "192.0.2.1")])
        decoded = roundtrip(response)
        assert decoded.header.msg_id == 321
        assert decoded.question == query.question
        assert decoded.is_response()

    def test_answer_addresses(self):
        query = make_query(NAME)
        response = make_response(query, answers=[
            ResourceRecord.a(NAME, "192.0.2.1"),
            ResourceRecord.aaaa(NAME, "2001:db8::1"),
        ])
        assert roundtrip(response).answer_addresses() == (
            "192.0.2.1", "2001:db8::1")

    def test_cname_chain_roundtrip(self):
        target = DnsName.from_text("target.example.com")
        query = make_query(NAME)
        response = make_response(query, answers=[
            ResourceRecord.cname(NAME, target),
            ResourceRecord.a(target, "192.0.2.9"),
        ])
        decoded = roundtrip(response)
        assert decoded.answers[0].rdata.target == target
        assert decoded.answer_addresses() == ("192.0.2.9",)

    def test_authority_section_roundtrip(self):
        query = make_query(NAME)
        soa = ResourceRecord.soa(
            DnsName.from_text("example.com"),
            DnsName.from_text("ns1.example.com"),
            DnsName.from_text("hostmaster.example.com"), serial=42)
        response = make_response(query, rcode=Rcode.NXDOMAIN,
                                 authorities=[soa])
        decoded = roundtrip(response)
        assert len(decoded.authorities) == 1
        assert decoded.authorities[0].rdata.serial == 42


class TestRdataTypes:
    def test_a_rejects_bad_address(self):
        writer = WireWriter()
        with pytest.raises(WireFormatError):
            AData("999.1.2.3").encode(writer)

    def test_a_rejects_short_address(self):
        writer = WireWriter()
        with pytest.raises(WireFormatError):
            AData("1.2.3").encode(writer)

    def test_txt_roundtrip(self):
        query = make_query(NAME, RRType.TXT)
        response = make_response(query, answers=[
            ResourceRecord.txt(NAME, "hello dns-over-encryption")])
        decoded = roundtrip(response)
        assert decoded.answers[0].rdata.strings == (
            b"hello dns-over-encryption",)

    def test_txt_splits_long_strings(self):
        data = TxtData.from_text("x" * 600)
        assert [len(chunk) for chunk in data.strings] == [255, 255, 90]

    def test_mx_roundtrip(self):
        mx = ResourceRecord(NAME, RRType.MX, RRClass.IN, 300,
                            MxData(10, DnsName.from_text("mail.example.com")))
        query = make_query(NAME, RRType.MX)
        decoded = roundtrip(make_response(query, answers=[mx]))
        assert decoded.answers[0].rdata.preference == 10

    def test_ipv6_compression(self):
        assert _ipv6_from_bytes(_ipv6_to_bytes("2001:db8::1")) == "2001:db8::1"

    def test_ipv6_all_zero(self):
        assert _ipv6_from_bytes(b"\x00" * 16) == "::"

    def test_ipv6_bad_text(self):
        with pytest.raises(WireFormatError):
            _ipv6_to_bytes("2001:::1")

    def test_soa_to_text(self):
        soa = SoaData(DnsName.from_text("ns1.x."),
                      DnsName.from_text("admin.x."), 7)
        assert "7" in soa.to_text()


class TestWireRobustness:
    def test_truncated_header_rejected(self):
        with pytest.raises(WireFormatError):
            Message.decode(b"\x00\x01\x00")

    def test_truncated_question_rejected(self):
        wire = make_query(NAME).encode()
        with pytest.raises(WireFormatError):
            Message.decode(wire[:-3])

    def test_garbage_rejected(self):
        with pytest.raises(WireFormatError):
            Message.decode(b"\xff" * 11)

    def test_compression_pointer_loop_rejected(self):
        # Hand-craft a message whose qname points at itself.
        header = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        loop = b"\xc0\x0c"  # pointer to offset 12 (itself)
        with pytest.raises(WireFormatError):
            Message.decode(header + loop + b"\x00\x01\x00\x01")

    def test_forward_pointer_rejected(self):
        header = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        forward = b"\xc0\x20"  # points past itself
        with pytest.raises(WireFormatError):
            Message.decode(header + forward + b"\x00\x01\x00\x01")

    def test_reserved_label_type_rejected(self):
        reader = WireReader(b"\x80abc\x00")
        with pytest.raises(WireFormatError):
            reader.read_name()


class TestCompression:
    def test_compression_shrinks_repeated_names(self):
        query = make_query(NAME, with_edns=False)
        response = make_response(query, answers=[
            ResourceRecord.a(NAME, "192.0.2.1"),
            ResourceRecord.a(NAME, "192.0.2.2"),
        ])
        compressed = response.encode(compress=True)
        uncompressed = response.encode(compress=False)
        assert len(compressed) < len(uncompressed)

    def test_compressed_message_decodes_identically(self):
        query = make_query(NAME, with_edns=False)
        response = make_response(query, answers=[
            ResourceRecord.a(NAME, "192.0.2.1")])
        assert (Message.decode(response.encode(compress=True)).answers
                == Message.decode(response.encode(compress=False)).answers)


class TestEdns:
    def test_opt_record_roundtrip(self):
        message = make_query(NAME, with_edns=True)
        decoded = roundtrip(message)
        assert decoded.opt is not None
        assert decoded.opt.udp_payload == OptRecord().udp_payload

    def test_padding_rounds_to_block(self):
        for block in (64, 128, 468):
            message = make_query(NAME, pad_block=block)
            assert len(message.encode()) % block == 0

    def test_padding_octets_visible_after_decode(self):
        message = make_query(NAME, pad_block=128)
        assert roundtrip(message).opt.padding_octets() > 0

    def test_duplicate_opt_rejected(self):
        message = make_query(NAME, with_edns=True)
        wire = bytearray(message.encode())
        # Claim two additional records and append a second OPT.
        wire[11] = 2
        wire += b"\x00" + b"\x00\x29" + b"\x04\xd0" + b"\x00" * 4 + b"\x00\x00"
        with pytest.raises(WireFormatError):
            Message.decode(bytes(wire))

    def test_extended_rcode(self):
        message = Message(header=Header(rcode=2),
                          opt=OptRecord(extended_rcode=1))
        assert message.rcode() == (1 << 4) | 2

    def test_to_text_mentions_padding(self):
        message = make_query(NAME, pad_block=128)
        assert "padding" in message.to_text()
