"""Tests for the URL corpus and dataset plumbing."""

import pytest

from repro.datasets.urldataset import UrlDataset, build_url_dataset
from repro.httpsim.uri import parse_url


@pytest.fixture(scope="module")
def world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=91))


@pytest.fixture(scope="module")
def dataset(world):
    return world.url_dataset()


class TestUrlDataset:
    def test_size_includes_noise(self, world, dataset):
        assert len(dataset) >= world.config.url_dataset_noise

    def test_61_doh_path_candidates(self, dataset):
        # 17 genuine endpoints + lookalikes = 61 candidate URLs.
        assert len(dataset.doh_candidates()) == 61

    def test_candidates_are_https(self, dataset):
        for url in dataset.doh_candidates():
            assert url.startswith("https://")

    def test_contains_real_doh_endpoints(self, world, dataset):
        candidates = {parse_url(url).hostname
                      for url in dataset.doh_candidates()}
        for template in world.all_doh_templates():
            hostname = template.split("//")[1].split("/")[0]
            assert hostname in candidates

    def test_no_url_parameters_in_corpus(self, dataset):
        # Ethics: "the dataset does not contain user information or URL
        # parameters".
        assert not any("?" in url for url in dataset)

    def test_deterministic_per_scenario(self, world):
        again = build_url_dataset(world)
        assert again.urls == world.url_dataset().urls

    def test_custom_dataset_filtering(self):
        dataset = UrlDataset(urls=[
            "https://dns.example/dns-query",
            "https://shop.example/cart",
            "http://insecure.example/dns-query",
            "not a url at all",
        ])
        assert dataset.doh_candidates() == [
            "https://dns.example/dns-query"]
