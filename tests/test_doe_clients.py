"""Tests for the Do53/DoT/DoH client implementations."""

import pytest

from repro.dnswire import DnsName, RRType, make_query
from repro.doe import (
    Do53Client,
    DohClient,
    DohMethod,
    DotClient,
    FailureKind,
    PrivacyProfile,
    QueryOutcome,
    frame_tcp_message,
    unframe_tcp_message,
)
from repro.errors import WireFormatError
from repro.httpsim.uri import UriTemplate
from repro.netsim.middlebox import PortFilter, RuleSet, TlsInterceptor
from repro.tlssim.certs import ValidationFailure

WWW = DnsName.from_text("www.example.com")
EXPECTED = ("93.184.216.34",)


def query(msg_id=1):
    return make_query(WWW, RRType.A, msg_id=msg_id)


class TestFraming:
    def test_roundtrip(self):
        assert unframe_tcp_message(frame_tcp_message(b"abc")) == b"abc"

    def test_length_mismatch_rejected(self):
        framed = bytearray(frame_tcp_message(b"abcd"))
        framed[1] = 99
        with pytest.raises(WireFormatError):
            unframe_tcp_message(bytes(framed))

    def test_short_buffer_rejected(self):
        with pytest.raises(WireFormatError):
            unframe_tcp_message(b"\x00")

    def test_oversized_message_rejected(self):
        with pytest.raises(WireFormatError):
            frame_tcp_message(b"x" * 70_000)


class TestDo53(object):
    def test_udp_query(self, mini_world, rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_udp(mini_world["env"],
                                  mini_world["resolver_ip"], query())
        assert result.ok
        assert result.addresses() == EXPECTED
        assert result.classify(EXPECTED) is QueryOutcome.CORRECT

    def test_tcp_query(self, mini_world, rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_tcp(mini_world["env"],
                                  mini_world["resolver_ip"], query())
        assert result.ok
        assert result.transport == "do53-tcp"

    def test_tcp_reuse_lowers_latency(self, mini_world, rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        first = client.query_tcp(mini_world["env"],
                                 mini_world["resolver_ip"], query(1))
        second = client.query_tcp(mini_world["env"],
                                  mini_world["resolver_ip"], query(2))
        assert not first.reused_connection
        assert second.reused_connection
        assert second.latency_ms < first.latency_ms

    def test_udp_timeout_classified(self, mini_world, rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_udp(mini_world["env"], "100.66.55.44",
                                  query(), timeout_s=2.0)
        assert not result.ok
        assert result.failure is FailureKind.TIMEOUT
        assert result.latency_ms == pytest.approx(2000.0)

    def test_close_all(self, mini_world, rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        client.query_tcp(mini_world["env"], mini_world["resolver_ip"],
                         query())
        client.close_all()
        result = client.query_tcp(mini_world["env"],
                                  mini_world["resolver_ip"], query())
        assert not result.reused_connection


class TestDot:
    def test_strict_query_against_valid_cert(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"], profile=PrivacyProfile.STRICT)
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"], query())
        assert result.ok
        assert result.cert_report.valid
        assert result.addresses() == EXPECTED

    def test_reuse_skips_handshake(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"])
        first = client.query(mini_world["env"], mini_world["resolver_ip"],
                             query(1))
        second = client.query(mini_world["env"], mini_world["resolver_ip"],
                              query(2))
        assert second.reused_connection
        assert second.latency_ms < first.latency_ms / 2

    def test_strict_fails_on_interception(self, mini_world, rng, trust):
        mini_world["env"].middleboxes.append(
            TlsInterceptor("dpi", trust["rogue"]))
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"], profile=PrivacyProfile.STRICT)
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"], query())
        assert not result.ok
        assert result.failure is FailureKind.CERTIFICATE
        assert result.intercepted_by == "dpi"

    def test_opportunistic_proceeds_on_interception(self, mini_world, rng,
                                                    trust):
        mini_world["env"].middleboxes.append(
            TlsInterceptor("dpi", trust["rogue"]))
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"],
                           profile=PrivacyProfile.OPPORTUNISTIC)
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"], query())
        assert result.ok
        assert result.intercepted_by == "dpi"
        assert not result.cert_report.valid
        assert result.cert_report.has(ValidationFailure.UNTRUSTED_CA)

    def test_blocked_port_fails(self, mini_world, rng, trust):
        mini_world["env"].middleboxes.append(PortFilter(
            "f", RuleSet(blocked_ports={853})))
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"])
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"], query(),
                              timeout_s=3.0)
        assert result.failure is FailureKind.TIMEOUT

    def test_queries_are_padded(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"], pad_block=128)
        # The service decodes the padded query; the answer must be intact.
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"], query())
        assert result.ok

    def test_fetch_certificate(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"])
        chain, report, error = client.fetch_certificate(
            mini_world["env"], mini_world["resolver_ip"])
        assert error is None
        assert chain == mini_world["chain"]
        assert report.valid

    def test_fetch_certificate_from_dead_host(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"])
        chain, report, error = client.fetch_certificate(
            mini_world["env"], "100.66.55.44", timeout_s=1.0)
        assert error is not None
        assert chain == ()
        assert report is None


class TestDoh:
    @pytest.fixture()
    def doh(self, mini_world, rng, trust):
        return DohClient(mini_world["network"], rng.fork("c"),
                         trust["store"],
                         bootstrap=mini_world["universe"].resolve_public)

    @pytest.fixture()
    def template(self, mini_world):
        return UriTemplate(
            f"https://{mini_world['hostname']}/dns-query{{?dns}}")

    def test_post_query(self, doh, mini_world, template):
        result = doh.query(mini_world["env"], template, query())
        assert result.ok
        assert result.addresses() == EXPECTED

    def test_get_query(self, mini_world, rng, trust, template):
        client = DohClient(mini_world["network"], rng.fork("g"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public,
                           method=DohMethod.GET)
        result = client.query(mini_world["env"], template, query())
        assert result.ok

    def test_reuse(self, doh, mini_world, template):
        first = doh.query(mini_world["env"], template, query(1))
        second = doh.query(mini_world["env"], template, query(2))
        assert second.reused_connection
        assert second.latency_ms < first.latency_ms

    def test_wrong_path_is_http_error(self, doh, mini_world):
        bad = UriTemplate(
            f"https://{mini_world['hostname']}/other-path{{?dns}}")
        result = doh.query(mini_world["env"], bad, query())
        assert not result.ok
        assert result.failure is FailureKind.HTTP

    def test_bootstrap_failure(self, doh, mini_world):
        missing = UriTemplate("https://nonexistent.example/dns-query{?dns}")
        result = doh.query(mini_world["env"], missing, query())
        assert not result.ok
        assert result.failure is FailureKind.UNREACHABLE

    def test_interception_always_fatal(self, mini_world, rng, trust,
                                       template):
        mini_world["env"].middleboxes.append(
            TlsInterceptor("dpi", trust["rogue"]))
        client = DohClient(mini_world["network"], rng.fork("i"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public)
        result = client.query(mini_world["env"], template, query())
        assert not result.ok
        assert result.failure is FailureKind.CERTIFICATE
        assert result.intercepted_by == "dpi"

    def test_name_mismatch_fails_strict(self, mini_world, rng, trust):
        # Register a hostname that resolves to the resolver but does not
        # appear in its certificate.
        mini_world["universe"].host_a("wrong.name.test", "7.7.7.7")
        client = DohClient(mini_world["network"], rng.fork("m"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public)
        template = UriTemplate("https://wrong.name.test/dns-query{?dns}")
        result = client.query(mini_world["env"], template, query())
        assert not result.ok
        assert result.failure is FailureKind.CERTIFICATE


class TestQueryResultClassification:
    def test_failed_when_no_response(self):
        from repro.doe.result import QueryResult
        result = QueryResult.failed("dot", "1.1.1.1", 100.0,
                                    FailureKind.TIMEOUT)
        assert result.classify(EXPECTED) is QueryOutcome.FAILED

    def test_incorrect_on_servfail(self, mini_world, rng):
        from repro.doe.result import QueryResult
        from repro.dnswire.builder import servfail
        response = servfail(query())
        result = QueryResult.answered("dot", "1.1.1.1", 10.0, response)
        assert result.classify(EXPECTED) is QueryOutcome.INCORRECT

    def test_incorrect_on_empty_answer(self):
        from repro.doe.result import QueryResult
        from repro.dnswire.builder import make_response
        result = QueryResult.answered("dot", "1.1.1.1", 10.0,
                                      make_response(query()))
        assert result.classify(EXPECTED) is QueryOutcome.INCORRECT

    def test_incorrect_on_spoofed_answer(self):
        from repro.doe.result import QueryResult
        from repro.dnswire.builder import make_response
        from repro.dnswire import ResourceRecord
        response = make_response(query(), answers=[
            ResourceRecord.a(WWW, "192.0.2.66")])
        result = QueryResult.answered("do53-tcp", "1.1.1.1", 10.0, response)
        assert result.classify(EXPECTED) is QueryOutcome.INCORRECT

    def test_correct_without_expectation(self):
        from repro.doe.result import QueryResult
        from repro.dnswire.builder import make_response
        from repro.dnswire import ResourceRecord
        response = make_response(query(), answers=[
            ResourceRecord.a(WWW, "192.0.2.66")])
        result = QueryResult.answered("dot", "1.1.1.1", 10.0, response)
        assert result.classify(()) is QueryOutcome.CORRECT
