"""Deeper CLI coverage: the study commands at minuscule scale."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("command, markers", [
    (["--scale", "0.004", "--seed", "7", "reachability"],
     ["Table 4", "Table 6"]),
    (["--scale", "0.004", "--seed", "7", "performance"],
     ["Reused connections", "Table 7"]),
    (["--scale", "0.004", "--seed", "7", "usage"],
     ["Monthly DoT flows", "Popular DoH domains"]),
])
def test_study_commands(capsys, command, markers):
    assert main(command) == 0
    output = capsys.readouterr().out
    for marker in markers:
        assert marker in output, marker


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["conquer-the-internet"])


def test_seed_changes_sampled_world(capsys):
    main(["--scale", "0.004", "--seed", "1", "scan"])
    first = capsys.readouterr().out
    main(["--scale", "0.004", "--seed", "2", "scan"])
    second = capsys.readouterr().out
    # Country totals are calibrated (stable), but the sampled noise and
    # exact provider tallies shift with the seed.
    assert first != second


def test_same_seed_is_reproducible(capsys):
    main(["--scale", "0.004", "--seed", "9", "scan"])
    first = capsys.readouterr().out
    main(["--scale", "0.004", "--seed", "9", "scan"])
    second = capsys.readouterr().out
    assert first == second
