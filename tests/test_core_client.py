"""Tests for the client-side leg: proxy, reachability, diagnosis, perf."""

import pytest

from repro.core.client import (
    AtlasStudy,
    FailureDiagnosis,
    PerformanceStudy,
    ProxyNetwork,
    ReachabilityReport,
    ReachabilityStudy,
    default_targets,
)
from repro.netsim.rand import SeededRng


@pytest.fixture(scope="module")
def study_world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    scenario = build_scenario(tiny_config(seed=55))
    return scenario


@pytest.fixture(scope="module")
def reachability(study_world):
    study = ReachabilityStudy(study_world)
    report = study.run("proxyrack", study_world.proxyrack())
    return study.run("zhima", study_world.zhima()[:250], report)


class TestProxyNetwork:
    def test_basic_accounting(self, study_world):
        network = ProxyNetwork("ProxyRack", study_world.proxyrack())
        assert len(network) == len(study_world.proxyrack())
        assert len(network.country_distribution()) > 10

    def test_usable_for_filters_by_uptime(self, study_world):
        network = ProxyNetwork("ProxyRack", study_world.proxyrack())
        long_lived = network.usable_for(2_590.0)
        assert 0 < len(long_lived) < len(network)
        assert all(point.remaining_uptime_s >= 2_590.0
                   for point in long_lived)

    def test_remove(self, study_world):
        points = study_world.proxyrack()
        network = ProxyNetwork("ProxyRack", points)
        network.remove(points[0])
        assert len(network) == len(points) - 1
        assert points[0] not in network.endpoints()

    def test_tcp_only(self):
        assert not ProxyNetwork.supports_udp


class TestTargets:
    def test_four_targets(self, study_world):
        targets = default_targets(study_world)
        assert [target.name for target in targets] == [
            "Cloudflare", "Google", "Quad9", "Self-built"]

    def test_google_has_no_dot(self, study_world):
        google = default_targets(study_world)[1]
        assert google.dot_ip is None
        assert google.doh_template is not None


class TestReachability:
    def test_table4_shape(self, reachability):
        assert reachability.platforms() == ("proxyrack", "zhima")
        rates = reachability.rates("proxyrack", "Cloudflare", "do53")
        assert rates["correct"] + rates["incorrect"] + rates["failed"] == (
            pytest.approx(1.0))

    def test_cloudflare_do53_fails_much_more_than_dot(self, reachability):
        do53 = reachability.rates("proxyrack", "Cloudflare", "do53")
        dot = reachability.rates("proxyrack", "Cloudflare", "dot")
        assert do53["failed"] > 0.10
        assert dot["failed"] < 0.06
        assert do53["failed"] > 4 * dot["failed"]

    def test_quad9_doh_servfail_spike(self, reachability):
        rates = reachability.rates("proxyrack", "Quad9", "doh")
        assert rates["incorrect"] > 0.07

    def test_google_doh_blocked_in_china(self, reachability):
        rates = reachability.rates("zhima", "Google", "doh")
        assert rates["failed"] > 0.98

    def test_cloudflare_doh_survives_china(self, reachability):
        rates = reachability.rates("zhima", "Cloudflare", "doh")
        assert rates["correct"] > 0.95

    def test_cn_blackhole_hits_do53_and_dot_together(self, reachability):
        do53 = reachability.rates("zhima", "Cloudflare", "do53")
        dot = reachability.rates("zhima", "Cloudflare", "dot")
        assert do53["failed"] == pytest.approx(dot["failed"], abs=0.03)
        assert do53["failed"] > 0.08

    def test_self_built_nearly_perfect(self, reachability):
        for protocol in ("do53", "dot", "doh"):
            rates = reachability.rates("proxyrack", "Self-built", protocol)
            assert rates["correct"] > 0.97, protocol

    def test_interceptions_detected(self, reachability):
        assert len(reachability.interceptions) >= 2
        for case in reachability.interceptions:
            assert case.ca_common_name
            # Opportunistic DoT proceeds whenever 853 is intercepted.
            if case.intercepts_853:
                assert case.dot_lookup_succeeded

    def test_failed_endpoint_listing(self, reachability):
        failed = reachability.failed_endpoints("proxyrack", "Cloudflare",
                                               "dot")
        rates = reachability.rates("proxyrack", "Cloudflare", "dot")
        assert len(failed) == round(rates["failed"] * rates["total"])


class TestDiagnosis:
    @pytest.fixture(scope="class")
    def diagnosis(self, study_world, reachability):
        failed = set(reachability.failed_endpoints(
            "proxyrack", "Cloudflare", "dot"))
        points = [point for point in study_world.proxyrack()
                  if point.env.label in failed]
        runner = FailureDiagnosis(study_world.client_network(),
                                  SeededRng(1, "diag"))
        return runner.diagnose_all(points), points

    def test_conflicting_devices_found(self, diagnosis):
        report, points = diagnosis
        assert len(report.clients) == len(points)
        # Every diagnosed client either sees nothing (blackhole/filters)
        # or a device profile unlike the genuine resolver.
        assert all(client.is_conflict for client in report.clients)

    def test_port_census_subset_of_probe_ports(self, diagnosis):
        from repro.core.client.diagnosis import PROBE_PORTS
        report, _ = diagnosis
        assert set(report.port_census()) <= set(PROBE_PORTS)

    def test_hijacked_routers_detected(self, diagnosis, study_world):
        report, _ = diagnosis
        ground_truth = sum(
            1 for point in study_world.proxyrack()
            if point.conflict_kind == "hijacked-router")
        assert report.hijacked_count() == ground_truth

    def test_genuine_resolver_profile_not_conflict(self, study_world):
        from repro.core.client.diagnosis import ClientDiagnosis
        clean = ClientDiagnosis(endpoint="x", country="US", asn=1,
                                as_name="", open_ports=(53, 80, 443, 853))
        assert not clean.is_conflict


class TestPerformance:
    @pytest.fixture(scope="class")
    def perf(self, study_world):
        study = PerformanceStudy(study_world)
        points = ProxyNetwork("pr", study_world.proxyrack()).usable_for(
            2_590.0)
        return study.run(points, queries=12)

    def test_overheads_are_small_with_reuse(self, perf):
        summary = perf.global_summary()
        assert -5.0 < summary["dot_median"] < 20.0
        assert -5.0 < summary["doh_median"] < 25.0

    def test_scatter_points_match_client_count(self, perf):
        assert len(perf.scatter_points()) == len(perf.timings)

    def test_by_country_respects_minimum(self, perf):
        for summary in perf.by_country(min_clients=3):
            assert summary.client_count >= 3

    def test_no_reuse_costs_more_than_reuse(self, study_world, perf):
        study = PerformanceStudy(study_world)
        results = study.run_no_reuse(countries=("US",), queries=30)
        assert len(results) == 1
        no_reuse = results[0]
        assert no_reuse.dot_overhead_ms > 10.0
        assert no_reuse.median_dot_ms > no_reuse.median_do53_ms

    def test_overhead_grows_with_distance(self, study_world):
        study = PerformanceStudy(study_world)
        results = {result.vantage.replace("controlled-", ""): result
                   for result in study.run_no_reuse(
                       countries=("NL", "AU"), queries=30)}
        # The self-built resolver lives in DE: AU pays far more RTTs.
        assert (results["AU"].dot_overhead_ms
                > 3 * results["NL"].dot_overhead_ms)


class TestAtlas:
    def test_local_resolver_dot_rate_is_tiny(self, study_world):
        result = AtlasStudy(study_world).run()
        assert result.attempted > 0
        assert result.excluded_public + result.attempted == (
            result.total_probes)
        assert result.success_rate < 0.12
        assert result.succeeded == len(result.dot_capable_resolvers)
