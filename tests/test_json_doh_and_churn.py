"""Tests for the JSON DoH API and the scan churn analysis."""

import json

import pytest

from repro.core.scan import ScanCampaign
from repro.core.scan.churn import (
    cohort_survival,
    provider_deltas,
    round_churn,
)
from repro.dnswire import DnsName, Rcode, RRType, make_query
from repro.doe import DohClient, DohMethod, FailureKind
from repro.doe.doh import message_from_json
from repro.errors import WireFormatError
from repro.httpsim import HttpRequest
from repro.httpsim.uri import UriTemplate
from repro.resolvers.frontends import DOH_JSON_MEDIA_TYPE, DohService

WWW = DnsName.from_text("www.example.com")


@pytest.fixture()
def json_service(mini_world, rng):
    """Enable the JSON API on the mini-world resolver."""
    service = mini_world["host"].service_on("tcp", 443)
    service.supports_json = True
    return service


class TestJsonServer:
    def _get(self, service, target, ctx_kwargs=None):
        from repro.netsim.host import ServiceContext
        ctx = ServiceContext(client_address="1.2.3.4",
                             server_address="7.7.7.7", port=443,
                             protocol="tcp", timestamp=0.0)
        return service.handle(HttpRequest.get(target), ctx)

    def test_json_answer(self, json_service):
        response = self._get(json_service,
                             "/dns-query?name=www.example.com&type=A")
        assert response.status == 200
        assert response.header("content-type") == DOH_JSON_MEDIA_TYPE
        body = json.loads(response.body)
        assert body["Status"] == 0
        assert body["Answer"][0]["data"] == "93.184.216.34"

    def test_numeric_type_accepted(self, json_service):
        response = self._get(json_service,
                             "/dns-query?name=www.example.com&type=1")
        assert json.loads(response.body)["Answer"]

    def test_nxdomain_status(self, json_service):
        response = self._get(json_service,
                             "/dns-query?name=missing.nowhere&type=A")
        assert json.loads(response.body)["Status"] == int(Rcode.NXDOMAIN)

    def test_bad_name_400(self, json_service):
        response = self._get(json_service, "/dns-query?name=a..b&type=A")
        assert response.status == 400

    def test_bad_type_400(self, json_service):
        response = self._get(json_service,
                             "/dns-query?name=www.example.com&type=WAT")
        assert response.status == 400

    def test_json_disabled_by_default(self, mini_world, rng):
        from repro.resolvers import RecursiveBackend
        service = mini_world["host"].service_on("tcp", 443)
        service.supports_json = False
        response = self._get(service,
                             "/dns-query?name=www.example.com&type=A")
        # Without JSON support, a name= query is a missing-dns-param 400.
        assert response.status == 400


class TestJsonClient:
    def test_end_to_end(self, mini_world, rng, trust, json_service):
        client = DohClient(mini_world["network"], rng.fork("c"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public,
                           method=DohMethod.JSON)
        template = UriTemplate(
            f"https://{mini_world['hostname']}/dns-query{{?dns}}")
        result = client.query(mini_world["env"], template,
                              make_query(WWW, msg_id=3))
        assert result.ok
        assert result.addresses() == ("93.184.216.34",)

    def test_wire_client_against_json_only_path(self, mini_world, rng,
                                                trust):
        # A POST (wire-format) client still works when JSON is enabled.
        service = mini_world["host"].service_on("tcp", 443)
        service.supports_json = True
        client = DohClient(mini_world["network"], rng.fork("c"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public,
                           method=DohMethod.POST)
        template = UriTemplate(
            f"https://{mini_world['hostname']}/dns-query{{?dns}}")
        assert client.query(mini_world["env"], template,
                            make_query(WWW, msg_id=4)).ok

    def test_message_from_json_roundtrip(self):
        query = make_query(WWW, RRType.A, msg_id=5)
        body = json.dumps({
            "Status": 0,
            "Answer": [{"name": "www.example.com.", "type": 1,
                        "TTL": 300, "data": "93.184.216.34"}],
        }).encode()
        message = message_from_json(body, query)
        assert message.answer_addresses() == ("93.184.216.34",)
        assert message.header.msg_id == 5

    def test_message_from_json_cname(self):
        query = make_query(WWW, RRType.A, msg_id=6)
        body = json.dumps({
            "Status": 0,
            "Answer": [
                {"name": "www.example.com.", "type": 5, "TTL": 60,
                 "data": "real.example.com."},
                {"name": "real.example.com.", "type": 1, "TTL": 60,
                 "data": "192.0.2.9"},
            ],
        }).encode()
        message = message_from_json(body, query)
        assert message.answer_addresses() == ("192.0.2.9",)

    def test_message_from_json_rejects_garbage(self):
        query = make_query(WWW, msg_id=7)
        with pytest.raises(WireFormatError):
            message_from_json(b"not json", query)
        with pytest.raises(WireFormatError):
            message_from_json(json.dumps(
                {"Answer": [{"type": "x"}]}).encode(), query)


class TestChurn:
    @pytest.fixture(scope="class")
    def campaign(self):
        from tests.conftest import tiny_config
        from repro.world.scenario import build_scenario
        scenario = build_scenario(tiny_config(seed=23))
        return ScanCampaign(scenario).run(rounds=4, include_doh=False)

    def test_round_churn_shape(self, campaign):
        churns = round_churn(campaign)
        assert len(churns) == 4
        first = churns[0]
        assert first.arrived == first.total
        assert first.departed == 0
        # Growth dominates this campaign: arrivals outnumber departures.
        assert sum(churn.arrived for churn in churns[1:]) > sum(
            churn.departed for churn in churns[1:])

    def test_churn_rate_bounded(self, campaign):
        for churn in round_churn(campaign)[1:]:
            assert 0.0 <= churn.churn_rate < 0.5

    def test_cohort_survival_monotone_decreasing(self, campaign):
        survival = cohort_survival(campaign)
        assert survival[0] == pytest.approx(1.0)
        assert all(earlier >= later - 1e-9 for earlier, later
                   in zip(survival, survival[1:]))
        # The Chinese cloud shutdown bites, but most of the cohort lives.
        assert survival[-1] > 0.7

    def test_provider_deltas_highlight_movers(self, campaign):
        deltas = provider_deltas(campaign, top_n=5)
        keys = [key for key, _, _, _ in deltas]
        # CleanBrowsing's growth and the CN cloud's decline are the
        # paper's two headline movers.
        assert "cleanbrowsing.org" in keys
        assert any(delta < 0 for _, _, _, delta in deltas)
