"""Deterministic chaos suite for the fault-injection layer.

Every test here is seeded: a fault plan plus a seed fully determine
which probes fail, how retries play out, and what the telemetry
snapshot looks like. ``scripts/check.sh`` runs this module twice under
different ``PYTHONHASHSEED`` values to prove none of it leans on hash
ordering.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import telemetry
from repro.core.retry import RetryClass, RetryPolicy
from repro.dnswire import DnsName, RRType, make_query
from repro.doe import DotClient, FailureKind, PrivacyProfile
from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    ScenarioError,
    TimeoutError_,
    TlsError,
)
from repro.netsim.faults import FaultInjector, FaultKind, FaultPlan, FaultRule
from repro.netsim.rand import SeededRng

pytestmark = pytest.mark.chaos


# -- plan parsing ------------------------------------------------------------


class TestPlanParsing:
    def test_parse_describe_round_trip(self):
        spec = ("reset host=1.1.1.1 port=853 p=0.5 max=3; "
                "slow host=* port=443 p=1 ms=250; "
                "tls host=9.9.* p=0.25; "
                "drop-after host=* p=1 bytes=512; "
                "refuse host=7.7.7.7 proto=udp p=1")
        plan = FaultPlan.parse(spec)
        assert len(plan.rules) == 5
        assert FaultPlan.parse(plan.describe()) == plan

    def test_empty_specs(self):
        assert FaultPlan.parse("").is_empty
        assert FaultPlan.parse("  ;  ; ").is_empty
        assert FaultPlan.empty().is_empty
        assert not FaultPlan.parse("refuse host=*").is_empty

    def test_defaults(self):
        rule = FaultPlan.parse("timeout").rules[0]
        assert rule.kind is FaultKind.TIMEOUT
        assert rule.host == "*"
        assert rule.port is None
        assert rule.probability == 1.0
        assert rule.max_hits is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            FaultPlan.parse("explode host=*")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            FaultPlan.parse("reset hostless")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            FaultPlan.parse("reset color=red")

    def test_bad_numeric_value_rejected(self):
        with pytest.raises(ScenarioError):
            FaultPlan.parse("reset port=eight")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ScenarioError):
            FaultPlan.parse("reset p=1.5")


class TestRuleMatching:
    def test_host_glob(self):
        rule = FaultRule(kind=FaultKind.RESET, host="1.1.*")
        assert rule.matches("connect", "1.1.1.1", 853, "tcp")
        assert not rule.matches("connect", "9.9.9.9", 853, "tcp")

    def test_port_and_protocol_filters(self):
        rule = FaultRule(kind=FaultKind.TIMEOUT, port=853, protocol="tcp")
        assert rule.matches("connect", "1.1.1.1", 853, "tcp")
        assert not rule.matches("connect", "1.1.1.1", 443, "tcp")
        assert not rule.matches("udp", "1.1.1.1", 853, "udp")

    def test_kind_limits_injection_points(self):
        tls_rule = FaultRule(kind=FaultKind.TLS)
        assert tls_rule.matches("tls", "1.1.1.1", 853, "tcp")
        assert not tls_rule.matches("connect", "1.1.1.1", 853, "tcp")
        refuse = FaultRule(kind=FaultKind.REFUSE)
        assert refuse.matches("probe", "1.1.1.1", 853, "tcp")
        assert not refuse.matches("request", "1.1.1.1", 853, "tcp")


# -- injector determinism ----------------------------------------------------

SWEEP_PLANS = [
    "reset host=* port=853 p=0.5",
    "timeout host=198.* p=0.3; refuse host=* port=443 p=0.2",
    "slow host=* p=0.7 ms=100; reset host=* p=0.1",
    "tls host=* p=0.4; drop-after host=* p=1 bytes=64",
]

CONSULTS = [
    ("connect", "198.51.100.7", 853, "tcp", 0),
    ("connect", "1.1.1.1", 443, "tcp", 0),
    ("request", "198.51.100.7", 853, "tcp", 128),
    ("tls", "9.9.9.9", 853, "tcp", 0),
    ("udp", "8.8.8.8", 53, "udp", 0),
    ("probe", "203.0.113.9", 853, "tcp", 0),
] * 25


def _decision_trace(plan_spec: str, seed: int):
    injector = FaultInjector(FaultPlan.parse(plan_spec),
                             SeededRng(seed).fork("faults"))
    trace = []
    for op, host, port, proto, total in CONSULTS:
        fault = injector.decide(op, host, port, proto, total_bytes=total)
        if fault is None:
            trace.append(None)
        else:
            trace.append((fault.rule.kind.value,
                          type(fault.error).__name__ if fault.error
                          else None,
                          fault.latency_ms))
    return trace


class TestInjectorDeterminism:
    @pytest.mark.parametrize("plan_spec", SWEEP_PLANS)
    def test_same_seed_same_decisions(self, plan_spec):
        assert (_decision_trace(plan_spec, 11)
                == _decision_trace(plan_spec, 11))

    def test_different_seeds_diverge(self):
        traces = {tuple(_decision_trace(SWEEP_PLANS[0], seed))
                  for seed in range(5)}
        assert len(traces) > 1

    def test_sweep_actually_injects(self):
        for plan_spec in SWEEP_PLANS:
            trace = _decision_trace(plan_spec, 11)
            assert any(entry is not None for entry in trace), plan_spec

    def test_empty_plan_never_fires(self):
        injector = FaultInjector(FaultPlan.empty(),
                                 SeededRng(11).fork("faults"))
        for op, host, port, proto, total in CONSULTS:
            assert injector.decide(op, host, port, proto,
                                   total_bytes=total) is None
            assert injector.inject(op, host, port, proto,
                                   total_bytes=total) == 0.0

    def test_max_hits_caps_injections(self):
        injector = FaultInjector(
            FaultPlan.parse("reset host=* p=1 max=3"),
            SeededRng(1).fork("faults"))
        fired = sum(
            injector.decide("connect", "1.1.1.1", 853, "tcp") is not None
            for _ in range(10))
        assert fired == 3
        assert injector.hits(0) == 3

    def test_rule_streams_are_independent(self):
        """Consulting rule 0 more often never changes rule 1's stream."""
        plan = FaultPlan.parse("reset host=a.test p=0.5; "
                               "reset host=b.test p=0.5")

        def b_trace(extra_a_consults: int):
            injector = FaultInjector(plan, SeededRng(3).fork("faults"))
            for _ in range(extra_a_consults):
                injector.decide("connect", "a.test", 853, "tcp")
            return [injector.decide("connect", "b.test", 853, "tcp")
                    is not None for _ in range(40)]

        assert b_trace(0) == b_trace(17)


# -- injected error classes --------------------------------------------------


class TestErrorClasses:
    def _injector(self, spec):
        return FaultInjector(FaultPlan.parse(spec),
                             SeededRng(5).fork("faults"))

    def test_refuse_raises_connection_refused(self):
        injector = self._injector("refuse host=* p=1")
        with pytest.raises(ConnectionRefused) as excinfo:
            injector.inject("connect", "1.1.1.1", 853, "tcp")
        assert excinfo.value.elapsed_ms > 0

    def test_reset_raises_connection_reset(self):
        with pytest.raises(ConnectionReset):
            self._injector("reset host=* p=1").inject(
                "request", "1.1.1.1", 853, "tcp")

    def test_timeout_burns_the_full_deadline(self):
        injector = self._injector("timeout host=* p=1")
        with pytest.raises(TimeoutError_) as excinfo:
            injector.inject("connect", "1.1.1.1", 853, "tcp",
                            timeout_s=7.0)
        assert excinfo.value.elapsed_ms == pytest.approx(7000.0)

    def test_tls_raises_tls_error(self):
        with pytest.raises(TlsError):
            self._injector("tls host=* p=1").inject(
                "tls", "1.1.1.1", 853, "tcp")

    def test_drop_after_respects_byte_threshold(self):
        injector = self._injector("drop-after host=* p=1 bytes=512")
        assert injector.inject("request", "1.1.1.1", 853, "tcp",
                               total_bytes=100) == 0.0
        with pytest.raises(TimeoutError_):
            injector.inject("request", "1.1.1.1", 853, "tcp",
                            total_bytes=513)

    def test_slow_returns_latency_without_raising(self):
        injector = self._injector("slow host=* p=1 ms=300")
        assert injector.inject("connect", "1.1.1.1", 853,
                               "tcp") == pytest.approx(300.0)


# -- retry policies driving injected faults ----------------------------------


class TestRetryUnderFaults:
    def setup_method(self):
        telemetry.reset_registry()

    def teardown_method(self):
        telemetry.reset_registry()

    def test_persistent_timeout_exhausts_retries(self):
        injector = FaultInjector(FaultPlan.parse("timeout host=* p=1"),
                                 SeededRng(7).fork("faults"))
        policy = RetryPolicy(attempts=3, op="chaos")
        outcome = policy.call(
            lambda: injector.inject("connect", "1.1.1.1", 853, "tcp"))
        assert outcome.classification is RetryClass.TRANSIENT_EXHAUSTED
        assert outcome.attempts == 3
        registry = telemetry.get_registry()
        assert registry.value("retry.attempts", op="chaos") == 3
        assert registry.value("retry.exhausted", op="chaos") == 1
        assert registry.value("faults.injected", kind="timeout",
                              op="connect", protocol="tcp") == 3

    def test_refusal_is_permanent_no_retry(self):
        injector = FaultInjector(FaultPlan.parse("refuse host=* p=1"),
                                 SeededRng(7).fork("faults"))
        policy = RetryPolicy(attempts=5, op="chaos")
        outcome = policy.call(
            lambda: injector.inject("connect", "1.1.1.1", 853, "tcp"))
        assert outcome.classification is RetryClass.PERMANENT
        assert outcome.attempts == 1
        assert telemetry.get_registry().value("retry.permanent",
                                              op="chaos") == 1

    def test_bounded_fault_recovers(self):
        """A rule with max=2 lets the third attempt through."""
        injector = FaultInjector(
            FaultPlan.parse("reset host=* p=1 max=2"),
            SeededRng(7).fork("faults"))
        policy = RetryPolicy(attempts=5, op="chaos")
        outcome = policy.call(
            lambda: injector.inject("connect", "1.1.1.1", 853, "tcp"))
        assert outcome.ok
        assert outcome.attempts == 3
        assert outcome.classification is RetryClass.RECOVERED
        assert telemetry.get_registry().value("retry.recovered",
                                              op="chaos") == 1


# -- transport integration ---------------------------------------------------


WWW = DnsName.from_text("www.example.com")


class TestTransportIntegration:
    def setup_method(self):
        telemetry.reset_registry()

    def teardown_method(self):
        telemetry.reset_registry()

    def _query(self, mini_world, rng, trust, timeout_s=10.0):
        client = DotClient(mini_world["network"], rng.fork("dot"),
                           trust["store"],
                           profile=PrivacyProfile.OPPORTUNISTIC)
        return client.query(mini_world["env"], mini_world["resolver_ip"],
                            make_query(WWW, RRType.A, msg_id=1),
                            reuse=False, timeout_s=timeout_s)

    def test_refusal_surfaces_as_refused(self, mini_world, rng, trust):
        mini_world["network"].install_fault_injector(FaultInjector(
            FaultPlan.parse("refuse host=7.7.7.7 port=853 p=1"),
            rng.fork("faults")))
        result = self._query(mini_world, rng, trust)
        assert not result.ok
        assert result.failure is FailureKind.REFUSED

    def test_reset_surfaces_as_reset(self, mini_world, rng, trust):
        mini_world["network"].install_fault_injector(FaultInjector(
            FaultPlan.parse("reset host=7.7.7.7 p=1"),
            rng.fork("faults")))
        result = self._query(mini_world, rng, trust)
        assert not result.ok
        assert result.failure is FailureKind.RESET

    def test_tls_fault_surfaces_as_tls(self, mini_world, rng, trust):
        mini_world["network"].install_fault_injector(FaultInjector(
            FaultPlan.parse("tls host=7.7.7.7 p=1"),
            rng.fork("faults")))
        result = self._query(mini_world, rng, trust)
        assert not result.ok
        assert result.failure is FailureKind.TLS

    def test_timeout_fault_surfaces_as_timeout(self, mini_world, rng,
                                               trust):
        mini_world["network"].install_fault_injector(FaultInjector(
            FaultPlan.parse("timeout host=7.7.7.7 p=1"),
            rng.fork("faults")))
        result = self._query(mini_world, rng, trust, timeout_s=4.0)
        assert not result.ok
        assert result.failure is FailureKind.TIMEOUT
        assert result.latency_ms == pytest.approx(4000.0)

    def test_slow_fault_adds_latency_only(self, mini_world, rng, trust):
        baseline = self._query(mini_world, rng, trust)
        assert baseline.ok
        mini_world["network"].install_fault_injector(FaultInjector(
            FaultPlan.parse("slow host=7.7.7.7 p=1 ms=400"),
            rng.fork("faults")))
        slowed = self._query(mini_world, rng, trust)
        assert slowed.ok
        assert slowed.latency_ms > baseline.latency_ms + 400


# -- end-to-end golden determinism -------------------------------------------

GOLDEN_PLAN = ("reset host=* port=853 p=0.05 max=40; "
               "timeout host=198.* port=853 p=0.1; "
               "slow host=* port=443 p=0.5 ms=120")


def _campaign_snapshot(seed: int, plan: str, parallel=None) -> str:
    from tests.conftest import tiny_config

    from repro.core.scan.campaign import ScanCampaign
    from repro.telemetry.manifest import RunManifest
    from repro.world.scenario import build_scenario

    telemetry.reset_registry()
    try:
        config = dataclasses.replace(tiny_config(seed), fault_plan=plan,
                                     retry_attempts=2)
        scenario = build_scenario(config)
        ScanCampaign(scenario, parallel=parallel).run(rounds=1,
                                                      include_doh=True)
        registry = telemetry.get_registry()
        manifest = RunManifest.collect(
            scenario.config, registry, include_git=False,
            execution=(parallel.manifest_execution()
                       if parallel is not None else None))
        return telemetry.to_json(registry, telemetry.get_tracer(),
                                 manifest.as_dict())
    finally:
        telemetry.reset_registry()


class TestGoldenDeterminism:
    def test_same_seed_same_plan_byte_identical_telemetry(self):
        first = _campaign_snapshot(77, GOLDEN_PLAN)
        second = _campaign_snapshot(77, GOLDEN_PLAN)
        assert first == second

    def test_snapshot_records_faults_and_retries(self):
        snapshot = _campaign_snapshot(77, GOLDEN_PLAN)
        assert '"faults.injected' in snapshot
        assert '"retry.attempts' in snapshot
        assert '"fault_plan":"%s"' % GOLDEN_PLAN in snapshot

    def test_sharded_chaos_same_seed_byte_identical(self):
        """Chaos-compose: an active FaultPlan under sharded execution
        still yields byte-identical telemetry across two same-seed
        runs at workers=4."""
        from repro.core.parallel import ParallelConfig
        parallel = ParallelConfig(workers=4, shards=4)
        first = _campaign_snapshot(77, GOLDEN_PLAN, parallel)
        second = _campaign_snapshot(77, GOLDEN_PLAN, parallel)
        assert first == second
        assert '"faults.injected' in first

    def test_sharded_chaos_worker_count_invariant(self):
        """The fork-pool path and the in-process fallback agree byte
        for byte under fault injection."""
        from repro.core.parallel import ParallelConfig
        in_process = _campaign_snapshot(
            77, GOLDEN_PLAN, ParallelConfig(workers=1, shards=4))
        pooled = _campaign_snapshot(
            77, GOLDEN_PLAN, ParallelConfig(workers=4, shards=4))
        assert in_process == pooled


# -- per-protocol censorship presets (ISSUE 9) --------------------------------


class TestCensorshipPresets:
    """Each DoE protocol gets a canned censored-network FaultPlan, and
    the clients react per their protocol's design: DoQ falls back to
    DoT, DNSCrypt strictly never falls back, and the ``proto=`` matcher
    keeps the two port-443 protocols (DoH/tcp vs DNSCrypt/udp)
    independently blockable."""

    @staticmethod
    def _scenario(preset: str):
        from tests.conftest import tiny_config

        from repro.netsim.faults import CENSORSHIP_PRESETS
        from repro.world.scenario import build_scenario
        config = dataclasses.replace(tiny_config(31),
                                     fault_plan=CENSORSHIP_PRESETS[preset])
        return build_scenario(config)

    @staticmethod
    def _env(index: int):
        from repro.netsim.network import ClientEnvironment
        return ClientEnvironment.in_country(
            f"cens-{index}", f"203.0.113.{index}", "US",
            SeededRng(900 + index).fork("env"))

    def test_every_preset_parses_into_a_plan(self):
        from repro.netsim.faults import CENSORSHIP_PRESETS, censorship_plan
        for preset in CENSORSHIP_PRESETS:
            assert not censorship_plan(preset).is_empty
        with pytest.raises(ScenarioError):
            censorship_plan("carrier-pigeon-blocked")

    def test_doq_blocked_network_falls_back_to_dot(self):
        from repro.core.client.fourproto import query_with_fallback
        from repro.doe.doq import DoqClient
        scenario = self._scenario("doq-blocked")
        network = scenario.client_network()
        env = self._env(1)
        doq = DoqClient(network, SeededRng(31).fork("doq"),
                        scenario.trust_store)
        dot = DotClient(network, SeededRng(31).fork("dot"),
                        scenario.trust_store,
                        profile=PrivacyProfile.OPPORTUNISTIC)
        query = make_query(scenario.probe_name("censdoq"), RRType.A,
                           msg_id=77)
        alone = DoqClient(network, SeededRng(32).fork("doq"),
                          scenario.trust_store).query(
            env, "9.9.9.9", query, reuse=False)
        assert not alone.ok
        assert alone.failure is FailureKind.TIMEOUT
        result, fell_back = query_with_fallback(
            doq, dot, env, "9.9.9.9", "9.9.9.9", query)
        assert fell_back
        assert result.ok, result.error
        assert result.transport == "dot"

    def test_dnscrypt_blocked_network_never_falls_back(self):
        from repro.doe.dnscrypt import DnsCryptClient
        from repro.world.scenario import (
            SELF_BUILT_HOSTNAME,
            SELF_BUILT_IP,
            dnscrypt_provider_key,
        )
        scenario = self._scenario("dnscrypt-blocked")
        network = scenario.client_network()
        env = self._env(2)
        client = DnsCryptClient(network, SeededRng(33).fork("dc"))
        bootstrap = client.fetch_certificate(env, SELF_BUILT_IP)
        assert not isinstance(bootstrap, tuple)
        assert bootstrap.failure is FailureKind.TIMEOUT
        # Even with the key pinned in advance the sealed exchange fails
        # — and that is the end of it: no clear-text, no DoT, the
        # result is simply a failed DNSCrypt lookup.
        key = dnscrypt_provider_key(SELF_BUILT_HOSTNAME)
        query = make_query(scenario.probe_name("censdc"), RRType.A,
                           msg_id=78)
        result = client.query(env, SELF_BUILT_IP, key, query)
        assert not result.ok
        assert result.transport == "dnscrypt"
        assert result.failure is FailureKind.TIMEOUT

    def test_port_443_blocks_distinguish_doh_from_dnscrypt(self):
        """``doh-blocked`` kills tcp/443 but leaves udp/443 (DNSCrypt)
        alive; ``dnscrypt-blocked`` does the reverse."""
        from repro.doe.dnscrypt import DnsCryptClient
        from repro.doe.doh import DohClient, DohMethod
        from repro.httpsim.uri import UriTemplate
        from repro.world.scenario import (
            SELF_BUILT_HOSTNAME,
            SELF_BUILT_IP,
            dnscrypt_provider_key,
        )
        key = dnscrypt_provider_key(SELF_BUILT_HOSTNAME)
        template = UriTemplate(
            "https://dns.selfbuilt.example/dns-query{?dns}")

        scenario = self._scenario("doh-blocked")
        network = scenario.client_network()
        env = self._env(3)
        doh = DohClient(network, SeededRng(34).fork("doh"),
                        scenario.trust_store,
                        bootstrap=scenario.bootstrap,
                        method=DohMethod.POST)
        query = make_query(scenario.probe_name("cens443"), RRType.A,
                           msg_id=79)
        assert not doh.query(env, template, query, reuse=False).ok
        sealed = DnsCryptClient(network, SeededRng(34).fork("dc")).query(
            env, SELF_BUILT_IP, key, query)
        assert sealed.ok, sealed.error

        scenario = self._scenario("dnscrypt-blocked")
        network = scenario.client_network()
        env = self._env(4)
        doh = DohClient(network, SeededRng(35).fork("doh"),
                        scenario.trust_store,
                        bootstrap=scenario.bootstrap,
                        method=DohMethod.POST)
        assert doh.query(env, template, query, reuse=False).ok
        sealed = DnsCryptClient(network, SeededRng(35).fork("dc")).query(
            env, SELF_BUILT_IP, key, query)
        assert not sealed.ok

    def test_dot_blocked_leaves_doq_alive(self):
        from repro.doe.doq import DoqClient
        from repro.doe.dot import DotClient as _DotClient
        scenario = self._scenario("dot-blocked")
        network = scenario.client_network()
        env = self._env(5)
        query = make_query(scenario.probe_name("cens853"), RRType.A,
                           msg_id=80)
        dot = _DotClient(network, SeededRng(36).fork("dot"),
                         scenario.trust_store,
                         profile=PrivacyProfile.OPPORTUNISTIC)
        assert not dot.query(env, "9.9.9.9", query, reuse=False).ok
        doq = DoqClient(network, SeededRng(36).fork("doq"),
                        scenario.trust_store)
        assert doq.query(env, "9.9.9.9", query, reuse=False).ok

    def test_fourproto_under_censorship_is_byte_identical(self):
        """The whole study under a censored-network preset is a pure
        function of the seed — and every DoQ series records fallbacks
        instead of successes."""
        from tests.conftest import tiny_config

        from repro.core.client.fourproto import FourProtoStudy
        from repro.core.client.reachability import platform_points
        from repro.netsim.faults import CENSORSHIP_PRESETS
        from repro.world.scenario import build_scenario

        def run_once():
            telemetry.reset_registry()
            try:
                config = dataclasses.replace(
                    tiny_config(31),
                    fault_plan=CENSORSHIP_PRESETS["doq-blocked"])
                scenario = build_scenario(config)
                study = FourProtoStudy(scenario)
                report = study.run(
                    platform_points(scenario, "proxyrack", 0.08))
                return (tuple(map(repr, report.timings)),
                        report.fallbacks)
            finally:
                telemetry.reset_registry()

        first = run_once()
        assert first == run_once()
        assert first[1] > 0
        doq_rows = [row for row in first[0] if "protocol='doq'" in row]
        assert doq_rows
        assert all("ok_queries=0" in row for row in doq_rows)
