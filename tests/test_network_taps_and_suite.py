"""Tests for network taps, transport accounting details, and suite glue."""

import pytest

from repro.analysis import tables
from repro.core.client import ProxyNetwork
from repro.netsim import (
    ClientEnvironment,
    Host,
    Network,
    SeededRng,
    TcpConnection,
    UdpExchange,
    country,
)
from repro.netsim.host import CallableService


@pytest.fixture()
def tapped_world(rng):
    network = Network()
    host = Host(address="9.8.7.5", country_code="US",
                point=country("US").point)
    host.bind("tcp", 853, CallableService(lambda p, ctx: p))
    host.bind("udp", 53, CallableService(lambda p, ctx: p))
    network.add_host(host)
    env = ClientEnvironment.in_country("tap-client", "5.5.5.4", "FR",
                                       rng.fork("env"))
    events = []
    network.taps.append(
        lambda env_, host_, port, protocol, n_bytes, ts:
        events.append((env_.label, host_.address, port, protocol,
                       n_bytes)))
    return network, env, events


class TestNetworkTaps:
    def test_tcp_requests_hit_taps(self, tapped_world, rng):
        network, env, events = tapped_world
        connection = TcpConnection.open(network, env, "9.8.7.5", 853,
                                        rng.fork("c"))
        connection.request(b"hello-dns")
        assert events == [("tap-client", "9.8.7.5", 853, "tcp", 9)]

    def test_udp_exchanges_hit_taps(self, tapped_world, rng):
        network, env, events = tapped_world
        UdpExchange.exchange(network, env, "9.8.7.5", 53, b"q" * 40,
                             rng.fork("u"))
        assert events[-1] == ("tap-client", "9.8.7.5", 53, "udp", 40)

    def test_failed_connections_do_not_tap(self, tapped_world, rng):
        from repro.errors import ConnectionRefused
        network, env, events = tapped_world
        with pytest.raises(ConnectionRefused):
            TcpConnection.open(network, env, "9.8.7.5", 80, rng.fork("c"))
        assert events == []


class TestSpendRtts:
    def test_fractional_rtts(self, tapped_world, rng):
        network, env, _ = tapped_world
        connection = TcpConnection.open(network, env, "9.8.7.5", 853,
                                        rng.fork("c"))
        before = connection.elapsed_ms
        connection.spend_rtts(0.5)
        half = connection.elapsed_ms - before
        connection.spend_rtts(2.0)
        two = connection.elapsed_ms - before - half
        assert 0 < half < two

    def test_crypto_surcharge(self, tapped_world, rng):
        network, env, _ = tapped_world
        connection = TcpConnection.open(network, env, "9.8.7.5", 853,
                                        rng.fork("c"))
        before = connection.elapsed_ms
        connection.spend_rtts(0.0, crypto_ms=7.5)
        assert connection.elapsed_ms - before == pytest.approx(7.5)


class TestTable3:
    def test_dataset_summary_rows(self, scenario):
        proxyrack = ProxyNetwork("ProxyRack", scenario.proxyrack())
        zhima = ProxyNetwork("Zhima", scenario.zhima())
        rows = tables.table3_rows([("Reachability", proxyrack),
                                   ("Reachability", zhima)],
                                  performance_counts={"ProxyRack": 42})
        assert len(rows) == 3
        test_name, platform, ips, countries, ases = rows[0]
        assert platform == "ProxyRack"
        assert ips == len(proxyrack)
        assert countries > 10
        zhima_row = rows[1]
        assert zhima_row[3] == 1  # one country: CN
        assert zhima_row[4] == 5  # five ASes
        assert rows[2] == ("Performance", "ProxyRack", 42, 0, 0)
