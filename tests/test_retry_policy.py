"""RetryPolicy unit tests: validation, classification, backoff, budget."""

from __future__ import annotations

import pytest

from repro.core.retry import (
    TRANSIENT_KINDS,
    RetryClass,
    RetryOutcome,
    RetryPolicy,
    RetryStats,
)
from repro.doe.result import FailureKind, QueryResult
from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    TimeoutError_,
    TlsError,
)
from repro.netsim.rand import SeededRng


def _failing(error_factory, succeed_after=None):
    """A callable that raises until attempt ``succeed_after`` (1-based)."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if succeed_after is not None and calls["n"] >= succeed_after:
            return f"ok-{calls['n']}"
        raise error_factory()

    fn.calls = calls
    return fn


# -- construction -----------------------------------------------------------


def test_zero_attempts_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)


def test_negative_attempts_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=-3)


def test_jitter_must_stay_below_one():
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


def test_multiplier_below_one_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)


# -- call(): classification --------------------------------------------------


def test_first_try_success_is_ok():
    outcome = RetryPolicy(attempts=3).call(lambda: 42)
    assert outcome.ok
    assert outcome.value == 42
    assert outcome.attempts == 1
    assert outcome.classification is RetryClass.OK


def test_transient_then_success_is_recovered():
    fn = _failing(lambda: TimeoutError_("t"), succeed_after=3)
    outcome = RetryPolicy(attempts=5).call(fn)
    assert outcome.ok
    assert outcome.value == "ok-3"
    assert outcome.attempts == 3
    assert outcome.classification is RetryClass.RECOVERED


def test_transient_every_time_is_exhausted():
    fn = _failing(lambda: ConnectionReset("r"))
    outcome = RetryPolicy(attempts=4).call(fn)
    assert not outcome.ok
    assert outcome.attempts == 4
    assert fn.calls["n"] == 4
    assert isinstance(outcome.error, ConnectionReset)
    assert outcome.classification is RetryClass.TRANSIENT_EXHAUSTED


def test_non_retryable_short_circuits():
    """A refused connection is permanent: exactly one call, no retries."""
    fn = _failing(lambda: ConnectionRefused("nothing listens"))
    outcome = RetryPolicy(attempts=5).call(fn)
    assert not outcome.ok
    assert fn.calls["n"] == 1
    assert outcome.attempts == 1
    assert outcome.classification is RetryClass.PERMANENT


def test_tls_error_is_permanent_by_default():
    outcome = RetryPolicy(attempts=5).call(
        _failing(lambda: TlsError("bad handshake")))
    assert outcome.classification is RetryClass.PERMANENT
    assert outcome.attempts == 1


def test_custom_retryable_allowlist():
    policy = RetryPolicy(attempts=3, retryable=(ConnectionRefused,))
    outcome = policy.call(_failing(lambda: ConnectionRefused("x")))
    assert outcome.attempts == 3
    assert outcome.classification is RetryClass.TRANSIENT_EXHAUSTED


def test_programming_errors_propagate():
    with pytest.raises(ZeroDivisionError):
        RetryPolicy(attempts=3).call(lambda: 1 / 0)


def test_unwrap_reraises_final_error():
    outcome = RetryPolicy(attempts=2).call(
        _failing(lambda: TimeoutError_("t")))
    with pytest.raises(TimeoutError_):
        outcome.unwrap()
    assert RetryOutcome(value=7).unwrap() == 7


# -- backoff schedule --------------------------------------------------------


def test_backoff_schedule_monotonic_and_capped():
    policy = RetryPolicy(attempts=6, backoff_base_s=0.5,
                         backoff_multiplier=2.0, backoff_max_s=3.0)
    schedule = policy.schedule_s()
    assert schedule == [0.5, 1.0, 2.0, 3.0, 3.0]
    assert all(later >= earlier for earlier, later
               in zip(schedule, schedule[1:]))
    assert max(schedule) <= policy.backoff_max_s


def test_zero_base_disables_backoff():
    policy = RetryPolicy(attempts=4, backoff_base_s=0.0, jitter=0.5)
    assert policy.schedule_s(SeededRng(1).fork("jitter")) == [0.0, 0.0, 0.0]


def test_jitter_bounds_and_determinism():
    policy = RetryPolicy(attempts=8, backoff_base_s=1.0,
                         backoff_multiplier=1.0, backoff_max_s=10.0,
                         jitter=0.25)
    first = policy.schedule_s(SeededRng(99).fork("retry"))
    second = policy.schedule_s(SeededRng(99).fork("retry"))
    assert first == second, "same seed must give the same jitter"
    for delay in first:
        assert 0.75 <= delay <= 1.25
    other = policy.schedule_s(SeededRng(100).fork("retry"))
    assert first != other, "different seeds should jitter differently"


def test_delays_recorded_on_outcome():
    policy = RetryPolicy(attempts=3, backoff_base_s=0.1,
                         backoff_multiplier=2.0)
    outcome = policy.call(_failing(lambda: TimeoutError_("t")))
    assert outcome.delays_ms == (100.0, 200.0)


# -- budget ------------------------------------------------------------------


def test_budget_exhausted_mid_backoff():
    """The third attempt cannot fit its backoff delay into the budget."""
    policy = RetryPolicy(attempts=10, backoff_base_s=5.0,
                         backoff_multiplier=1.0, budget_s=8.0)
    fn = _failing(lambda: TimeoutError_("t"))
    outcome = policy.call(fn)
    # Attempt 1 fails, 5 s backoff fits (5 < 8); attempt 2 fails, the
    # next 5 s delay would cross the 8 s budget: stop at two calls.
    assert fn.calls["n"] == 2
    assert outcome.classification is RetryClass.TRANSIENT_EXHAUSTED
    assert outcome.delays_ms == (5000.0,)


def test_error_elapsed_counts_against_budget():
    def timed_failure():
        error = TimeoutError_("t")
        error.elapsed_ms = 4000.0
        raise error

    policy = RetryPolicy(attempts=10, backoff_base_s=1.0,
                         backoff_multiplier=1.0, budget_s=9.0)
    outcome = policy.call(timed_failure)
    # Each failed attempt burns 4 s + 1 s backoff; the third attempt's
    # backoff would land at 11 s > 9 s budget.
    assert outcome.attempts == 2
    assert outcome.classification is RetryClass.TRANSIENT_EXHAUSTED


# -- run_query ---------------------------------------------------------------


def _query_fn(failures, kind=FailureKind.TIMEOUT):
    """Fail ``failures`` times with ``kind``, then answer."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            return QueryResult.failed("dot", "9.9.9.9", 10.0, failure=kind)
        from repro.dnswire.builder import make_query, make_response
        from repro.dnswire.names import DnsName
        from repro.dnswire.rdtypes import RRType
        from repro.dnswire.records import ResourceRecord
        name = DnsName.from_text("probe.test")
        query = make_query(name, RRType.A, msg_id=7)
        answer = ResourceRecord.a(name, "1.2.3.4")
        return QueryResult.answered(
            "dot", "9.9.9.9", 10.0,
            response=make_response(query, answers=(answer,)))

    fn.calls = calls
    return fn


def test_run_query_retries_transient_kinds():
    policy = RetryPolicy(attempts=3)
    result = policy.run_query(_query_fn(2), retry_on=TRANSIENT_KINDS)
    assert result.response is not None
    assert result.attempts == 3


def test_run_query_permanent_kind_short_circuits():
    fn = _query_fn(5, kind=FailureKind.CERTIFICATE)
    result = RetryPolicy(attempts=5).run_query(fn,
                                               retry_on=TRANSIENT_KINDS)
    assert fn.calls["n"] == 1
    assert result.attempts == 1
    assert result.failure is FailureKind.CERTIFICATE


def test_run_query_retry_on_none_retries_everything():
    fn = _query_fn(2, kind=FailureKind.CERTIFICATE)
    result = RetryPolicy(attempts=5).run_query(fn, retry_on=None)
    assert result.response is not None
    assert result.attempts == 3


def test_run_query_exhaustion_keeps_last_result():
    fn = _query_fn(99)
    result = RetryPolicy(attempts=4).run_query(fn,
                                               retry_on=TRANSIENT_KINDS)
    assert fn.calls["n"] == 4
    assert result.attempts == 4
    assert result.failure is FailureKind.TIMEOUT


# -- stats -------------------------------------------------------------------


def test_retry_stats_aggregation():
    stats = RetryStats()
    for classification in (RetryClass.OK, RetryClass.OK,
                           RetryClass.RECOVERED,
                           RetryClass.TRANSIENT_EXHAUSTED,
                           RetryClass.PERMANENT):
        stats.record(classification)
    assert stats.ok == 2
    assert stats.recovered == 1
    assert stats.transient_exhausted == 1
    assert stats.permanent == 1
    assert stats.total == 5
    assert stats.by_class["ok"] == 2
