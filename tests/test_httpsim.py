"""Tests for the HTTP model and DoH URI templates."""

import pytest

from repro.errors import ScenarioError
from repro.httpsim import HttpRequest, HttpResponse, UriTemplate, parse_url
from repro.httpsim.uri import looks_like_doh_path


class TestHttpRequest:
    def test_get_parses_query(self):
        request = HttpRequest.get("/dns-query?dns=abc&x=1")
        assert request.method == "GET"
        assert request.path == "/dns-query"
        assert request.query_param("dns") == "abc"
        assert request.query_param("x") == "1"

    def test_missing_query_param_is_none(self):
        assert HttpRequest.get("/dns-query").query_param("dns") is None

    def test_post_sets_content_type(self):
        request = HttpRequest.post("/dns-query", b"\x00\x01",
                                   "application/dns-message")
        assert request.header("Content-Type") == "application/dns-message"
        assert request.body == b"\x00\x01"

    def test_headers_case_insensitive(self):
        request = HttpRequest.get("/", headers={"X-Custom": "v"})
        assert request.header("x-custom") == "v"
        assert request.header("X-CUSTOM") == "v"

    def test_method_uppercased(self):
        assert HttpRequest("get", "/").method == "GET"

    def test_target_rebuilds_query(self):
        request = HttpRequest.get("/p?a=1&b=2")
        assert request.target() == "/p?a=1&b=2"

    def test_target_without_query(self):
        assert HttpRequest.get("/p").target() == "/p"

    def test_approximate_size_counts_body(self):
        small = HttpRequest.post("/p", b"", "t/x").approximate_size()
        big = HttpRequest.post("/p", b"x" * 500, "t/x").approximate_size()
        assert big - small == 500


class TestHttpResponse:
    def test_ok(self):
        response = HttpResponse.ok(b"hi", content_type="text/plain")
        assert response.is_success
        assert response.reason == "OK"

    def test_error(self):
        response = HttpResponse.error(404)
        assert not response.is_success
        assert response.status == 404
        assert b"Not Found" in response.body

    def test_error_custom_message(self):
        response = HttpResponse.error(400, "missing dns parameter")
        assert b"missing dns parameter" in response.body

    def test_unknown_status_reason(self):
        assert HttpResponse(599).reason == "Unknown"


class TestParseUrl:
    def test_https_defaults_443(self):
        parsed = parse_url("https://dns.example.com/dns-query")
        assert parsed.hostname == "dns.example.com"
        assert parsed.port == 443
        assert parsed.path == "/dns-query"

    def test_http_defaults_80(self):
        assert parse_url("http://a.example/").port == 80

    def test_explicit_port(self):
        assert parse_url("https://a.example:8443/x").port == 8443

    def test_empty_path_becomes_slash(self):
        assert parse_url("https://a.example").path == "/"

    def test_bad_scheme_rejected(self):
        with pytest.raises(ScenarioError):
            parse_url("ftp://a.example/x")

    def test_missing_host_rejected(self):
        with pytest.raises(ScenarioError):
            parse_url("https:///nohost")


class TestUriTemplate:
    def test_rfc8484_template(self):
        template = UriTemplate("https://dns.example.com/dns-query{?dns}")
        parsed, variables = template.parse()
        assert parsed.hostname == "dns.example.com"
        assert variables == ("dns",)
        assert template.supports_get_param("dns")

    def test_template_without_variables(self):
        template = UriTemplate("https://dns.example.com/dns-query")
        _, variables = template.parse()
        assert variables == ()
        assert not template.supports_get_param()

    def test_hostname_and_path_shortcuts(self):
        template = UriTemplate("https://doh.crypto.sx/dns-query{?dns}")
        assert template.hostname == "doh.crypto.sx"
        assert template.path == "/dns-query"

    def test_multi_variable_template(self):
        template = UriTemplate("https://x.example/resolve{?dns,type}")
        _, variables = template.parse()
        assert variables == ("dns", "type")


class TestDohPathHeuristic:
    @pytest.mark.parametrize("path", ["/dns-query", "/resolve", "/query",
                                      "/doh", "/dns-query/",
                                      "/doh/family-filter"])
    def test_matches(self, path):
        assert looks_like_doh_path(path)

    @pytest.mark.parametrize("path", ["/", "/index.html", "/api/v1/query2",
                                      "/dns", "/search?q=dns-query",
                                      "/dns-query-faq"])
    def test_rejects(self, path):
        assert not looks_like_doh_path(path)
