"""Deeper world-scenario behaviour: conflicts, censorship, datasets."""

import pytest

from repro.datasets.netflow import generate_netflow_dataset
from repro.netsim import SeededRng, TcpConnection
from repro.netsim.network import ClientEnvironment
from repro.world.scenario import GOOGLE_DOH_IP


class TestLocalConflictPath:
    def test_conflict_device_answers_with_lan_latency(self, scenario, rng):
        network = scenario.client_network()
        hijacked = [point for point in scenario.proxyrack()
                    if point.conflict_kind == "hijacked-router"]
        assert hijacked
        env = hijacked[0].env
        connection = TcpConnection.open(network, env, "1.1.1.1", 80,
                                        rng.fork("lan"))
        assert connection.is_local
        # LAN round trips are an order of magnitude below WAN ones.
        assert connection.elapsed_ms < 15.0

    def test_conflict_device_blocks_dot(self, scenario, rng):
        from repro.errors import ConnectionRefused
        network = scenario.client_network()
        blackholes = [point for point in scenario.proxyrack()
                      if point.conflict_kind == "blackhole"]
        hijacked = [point for point in scenario.proxyrack()
                    if point.conflict_kind == "hijacked-router"]
        point = (hijacked or blackholes)[0]
        with pytest.raises(ConnectionRefused):
            TcpConnection.open(network, point.env, "1.1.1.1", 853,
                               rng.fork("dot"))

    def test_conflicts_do_not_leak_to_other_clients(self, scenario, rng):
        network = scenario.client_network()
        clean = ClientEnvironment.in_country("clean", "91.1.2.3", "DE",
                                             rng.fork("clean"))
        connection = TcpConnection.open(network, clean, "1.1.1.1", 853,
                                        rng.fork("c"))
        assert not connection.is_local
        assert connection.host.operator == "Cloudflare"


class TestCensorship:
    def test_cn_policy_targets_google_doh_only(self, scenario):
        network = scenario.client_network()
        policies = network._country_policies.get("CN", [])
        assert len(policies) == 1
        censor = policies[0]
        from repro.netsim.middlebox import Verdict
        assert censor.tcp_verdict(GOOGLE_DOH_IP, 443) is Verdict.DROP
        assert censor.tcp_verdict(GOOGLE_DOH_IP, 80) is Verdict.DROP
        assert censor.tcp_verdict("8.8.8.8", 53) is Verdict.ALLOW
        assert censor.tcp_verdict("104.16.249.249", 443) is Verdict.ALLOW


class TestAtlasLocalResolvers:
    def test_probe_resolvers_exist_in_network(self, scenario):
        network = scenario.client_network()
        probes, capable = scenario.atlas()
        private = [probe for probe in probes
                   if not probe.uses_public_resolver]
        assert private
        for probe in private[:20]:
            host = network.host_at(probe.local_resolver_ip)
            assert host is not None
            assert host.service_on("udp", 53) is not None

    def test_capable_resolvers_speak_dot(self, scenario):
        network = scenario.client_network()
        _, capable = scenario.atlas()
        for address in capable:
            host = network.host_at(address)
            assert host.service_on("tcp", 853) is not None
            assert host.has_tag("dot-local-resolver")


class TestNetflowGeneratorToggles:
    def test_scanner_toggle(self):
        dataset = generate_netflow_dataset(SeededRng(31), scale=0.05,
                                           include_scanners=False)
        assert dataset.scanner_netblocks == ()
        scanner_prefixes = ("141.212.120.", "74.120.14.", "167.94.138.")
        assert not any(record.src_ip.startswith(scanner_prefixes)
                       for record in dataset.records)

    def test_noise_toggle(self):
        with_noise = generate_netflow_dataset(SeededRng(32), scale=0.05,
                                              include_scanners=False,
                                              include_noise=True)
        without = generate_netflow_dataset(SeededRng(32), scale=0.05,
                                           include_scanners=False,
                                           include_noise=False)
        known = {"1.1.1.1", "1.0.0.1", "9.9.9.9", "149.112.112.112"}
        assert any(record.dst_ip not in known
                   for record in with_noise.records)
        assert all(record.dst_ip in known for record in without.records)

    def test_determinism(self):
        first = generate_netflow_dataset(SeededRng(33), scale=0.05)
        second = generate_netflow_dataset(SeededRng(33), scale=0.05)
        assert len(first) == len(second)
        assert first.records[0] == second.records[0]
        assert first.do53_monthly == second.do53_monthly

    def test_collection_window(self):
        dataset = generate_netflow_dataset(SeededRng(34), scale=0.05,
                                           include_scanners=False,
                                           include_noise=False)
        for record in dataset.records[:500]:
            assert dataset.start_ts <= record.start_ts
            assert record.start_ts <= dataset.end_ts + 31 * 86_400
