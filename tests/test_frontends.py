"""Tests for the resolver protocol frontends (server side)."""

import pytest

from repro.dnswire import DnsName, Message, make_query
from repro.doe.framing import b64url_encode, frame_tcp_message, unframe_tcp_message
from repro.httpsim import HttpRequest
from repro.netsim.host import ServiceContext, TlsConfig
from repro.resolvers import (
    DnsUniverse,
    Do53TcpService,
    Do53UdpService,
    DohService,
    DotService,
    RecursiveBackend,
    WebpageService,
    install_resolver_frontends,
)
from repro.tlssim import CertificateAuthority, make_chain

WWW = DnsName.from_text("www.example.com")


@pytest.fixture()
def backend(rng):
    universe = DnsUniverse()
    universe.host_a("www.example.com", "93.184.216.34")
    return RecursiveBackend(universe, rng)


@pytest.fixture()
def tls():
    ca = CertificateAuthority.root("Frontends Root")
    return TlsConfig(cert_chain=make_chain(ca, "dns.test", "2018-01-01",
                                           "2020-01-01"))


def service_ctx(**overrides):
    defaults = dict(client_address="5.5.5.5", server_address="7.7.7.7",
                    port=53, protocol="udp", timestamp=0.0,
                    client_country="DE")
    defaults.update(overrides)
    return ServiceContext(**defaults)


class TestDo53Services:
    def test_udp_roundtrip(self, backend):
        service = Do53UdpService(backend)
        response_wire = service.handle(make_query(WWW).encode(),
                                       service_ctx())
        response = Message.decode(response_wire)
        assert response.answer_addresses() == ("93.184.216.34",)
        assert service.queries_handled == 1

    def test_tcp_framing(self, backend):
        service = Do53TcpService(backend)
        framed = service.handle(frame_tcp_message(make_query(WWW).encode()),
                                service_ctx(protocol="tcp"))
        response = Message.decode(unframe_tcp_message(framed))
        assert response.is_response()

    def test_extra_latency_consumed_once(self, backend, rng):
        service = Do53UdpService(backend)
        service.handle(make_query(WWW).encode(), service_ctx())
        first = service.extra_latency_ms(rng)
        second = service.extra_latency_ms(rng)
        assert first > 0
        assert second == 0.0


class TestDotService:
    def test_roundtrip_with_overhead(self, backend, tls, rng):
        service = DotService(backend, tls)
        framed = service.handle(frame_tcp_message(make_query(WWW).encode()),
                                service_ctx(protocol="tcp", port=853,
                                            encrypted=True))
        assert Message.decode(unframe_tcp_message(framed)).is_response()
        assert service.extra_latency_ms(rng) >= service.base_overhead_ms * 0.2

    def test_has_tls_config(self, backend, tls):
        assert DotService(backend, tls).tls is tls


class TestDohService:
    def make(self, backend, tls, **kwargs):
        return DohService(backend, tls, path="/dns-query", **kwargs)

    def test_get_request(self, backend, tls):
        service = self.make(backend, tls)
        encoded = b64url_encode(make_query(WWW).encode())
        response = service.handle(
            HttpRequest.get(f"/dns-query?dns={encoded}"),
            service_ctx(protocol="tcp", port=443, encrypted=True))
        assert response.status == 200
        assert response.header("content-type") == "application/dns-message"
        assert Message.decode(response.body).answer_addresses() == (
            "93.184.216.34",)

    def test_post_request(self, backend, tls):
        service = self.make(backend, tls)
        request = HttpRequest.post("/dns-query", make_query(WWW).encode(),
                                   "application/dns-message")
        response = service.handle(request, service_ctx(protocol="tcp"))
        assert response.status == 200

    def test_missing_dns_parameter_400(self, backend, tls):
        response = self.make(backend, tls).handle(
            HttpRequest.get("/dns-query"), service_ctx())
        assert response.status == 400

    def test_bad_base64_400(self, backend, tls):
        response = self.make(backend, tls).handle(
            HttpRequest.get("/dns-query?dns=!!!"), service_ctx())
        assert response.status == 400

    def test_wrong_content_type_415(self, backend, tls):
        request = HttpRequest.post("/dns-query", b"\x00" * 12,
                                   "text/plain")
        assert self.make(backend, tls).handle(request,
                                              service_ctx()).status == 415

    def test_oversized_post_413(self, backend, tls):
        request = HttpRequest.post("/dns-query", b"\x00" * 70_000,
                                   "application/dns-message")
        assert self.make(backend, tls).handle(request,
                                              service_ctx()).status == 413

    def test_post_at_the_limit_is_decoded_not_rejected(self, backend, tls):
        # Exactly max_post_bytes octets must pass the size gate: the
        # 413 bound is strictly-greater-than, per RFC 8484's "larger
        # than the server is willing to process".
        service = self.make(backend, tls, max_post_bytes=1024)
        request = HttpRequest.post("/dns-query", b"\x00" * 1024,
                                   "application/dns-message")
        assert service.handle(request, service_ctx()).status != 413

    def test_custom_post_limit(self, backend, tls):
        service = self.make(backend, tls, max_post_bytes=64)
        request = HttpRequest.post("/dns-query", b"\x00" * 65,
                                   "application/dns-message")
        assert service.handle(request, service_ctx()).status == 413

    def test_valid_query_over_tiny_limit_413(self, backend, tls):
        # Even a well-formed DNS message is shed when it exceeds the
        # configured bound: the size gate runs before the decoder.
        service = self.make(backend, tls, max_post_bytes=8)
        request = HttpRequest.post("/dns-query", make_query(WWW).encode(),
                                   "application/dns-message")
        assert service.handle(request, service_ctx()).status == 413

    def test_wrong_method_405(self, backend, tls):
        request = HttpRequest("PUT", "/dns-query")
        assert self.make(backend, tls).handle(request,
                                              service_ctx()).status == 405

    def test_get_disabled_405(self, backend, tls):
        service = self.make(backend, tls, supports_get=False)
        encoded = b64url_encode(make_query(WWW).encode())
        response = service.handle(
            HttpRequest.get(f"/dns-query?dns={encoded}"), service_ctx())
        assert response.status == 405

    def test_unknown_path_404(self, backend, tls):
        response = self.make(backend, tls).handle(
            HttpRequest.get("/elsewhere"), service_ctx())
        assert response.status == 404

    def test_unknown_path_serves_webpage_when_configured(self, backend, tls):
        service = self.make(backend, tls,
                            webpage_html="<title>provider</title>")
        response = service.handle(HttpRequest.get("/"), service_ctx())
        assert response.status == 200
        assert b"provider" in response.body

    def test_undecodable_dns_message_400(self, backend, tls):
        encoded = b64url_encode(b"\x00\x01")
        response = self.make(backend, tls).handle(
            HttpRequest.get(f"/dns-query?dns={encoded}"), service_ctx())
        assert response.status == 400

    def test_non_http_payload_400(self, backend, tls):
        assert self.make(backend, tls).handle(
            b"raw bytes", service_ctx()).status == 400


class TestWebpageService:
    def test_get(self):
        service = WebpageService("<title>hello</title>")
        response = service.handle(HttpRequest.get("/"), service_ctx())
        assert response.status == 200
        assert b"hello" in response.body

    def test_post_rejected(self):
        service = WebpageService("x")
        response = service.handle(HttpRequest.post("/", b"", "t/x"),
                                  service_ctx())
        assert response.status == 405


class TestInstallFrontends:
    def test_default_install(self, backend, tls):
        from repro.netsim import Host, country
        host = Host(address="9.9.9.8", country_code="US",
                    point=country("US").point)
        install_resolver_frontends(host, backend, tls,
                                   webpage_html="<title>x</title>")
        assert host.service_on("udp", 53) is not None
        assert host.service_on("tcp", 53) is not None
        assert host.service_on("tcp", 853) is not None
        assert host.service_on("tcp", 443) is not None
        assert host.service_on("tcp", 80) is not None

    def test_doh_can_use_separate_backend(self, backend, tls, rng):
        from repro.netsim import Host, country
        from repro.resolvers import FlakyForwardingBackend
        host = Host(address="9.9.9.7", country_code="US",
                    point=country("US").point)
        flaky = FlakyForwardingBackend(backend, rng,
                                       slow_upstream_probability=1.0)
        install_resolver_frontends(host, backend, tls, doh_backend=flaky,
                                   protocols=("dot", "doh"))
        doh = host.service_on("tcp", 443)
        dot = host.service_on("tcp", 853)
        assert doh.backend is flaky
        assert dot.backend is backend

    def test_dot_requires_tls(self, backend):
        from repro.netsim import Host, country
        from repro.errors import WireFormatError
        host = Host(address="9.9.9.6", country_code="US",
                    point=country("US").point)
        with pytest.raises(WireFormatError):
            install_resolver_frontends(host, backend, None,
                                       protocols=("dot",))
