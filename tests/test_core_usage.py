"""Tests for the usage leg: NetFlow analysis, passive DNS, scan detection."""

import pytest

from repro.core.usage import (
    DohUsageStudy,
    DotTrafficStudy,
    NetworkScanMonitor,
)
from repro.core.usage.scan_detect import DetectorConfig
from repro.datasets.netflow import generate_netflow_dataset
from repro.datasets.passive_dns import build_passive_dns_stores
from repro.netsim.netflow import FlowRecord, TcpFlags
from repro.netsim.rand import SeededRng


@pytest.fixture(scope="module")
def dataset():
    return generate_netflow_dataset(SeededRng(11), scale=0.25)


@pytest.fixture(scope="module")
def report(dataset):
    return DotTrafficStudy().analyze(dataset)


class TestNetflowDataset:
    def test_single_syn_records_present(self, dataset):
        syn_only = [record for record in dataset.records
                    if record.is_single_syn()]
        assert syn_only

    def test_records_sorted_by_time(self, dataset):
        times = [record.start_ts for record in dataset.records]
        assert times == sorted(times)

    def test_do53_aggregates_dwarf_dot(self, dataset):
        do53_total = sum(dataset.do53_monthly["cloudflare"].values())
        dot_records = sum(1 for record in dataset.records
                          if record.dst_ip in ("1.1.1.1", "1.0.0.1"))
        assert do53_total > 100 * dot_records

    def test_scanner_ground_truth_listed(self, dataset):
        assert len(dataset.scanner_netblocks) == 3

    def test_scale_reduces_volume(self):
        small = generate_netflow_dataset(SeededRng(12), scale=0.05,
                                         include_scanners=False,
                                         include_noise=False)
        big = generate_netflow_dataset(SeededRng(12), scale=0.25,
                                       include_scanners=False,
                                       include_noise=False)
        assert len(small) < len(big)


class TestDotTrafficStudy:
    def test_single_syn_excluded(self, dataset, report):
        syn_only = sum(1 for record in dataset.records
                       if record.dst_port == 853
                       and record.is_single_syn())
        assert report.excluded_single_syn == syn_only

    def test_unmatched_noise_ignored(self, report):
        assert report.unmatched_port853 > 0

    def test_cloudflare_growth_over_h2_2018(self, report):
        growth = report.growth("cloudflare", "2018-07", "2018-12")
        assert 0.35 < growth < 0.80

    def test_no_cloudflare_traffic_before_launch(self, report):
        series = report.monthly_flows["cloudflare"]
        assert all(month >= "2018-04" for month in series)

    def test_quad9_fluctuates(self, report):
        series = [count for _, count in
                  sorted(report.monthly_flows["quad9"].items())]
        diffs = [b - a for a, b in zip(series, series[1:])]
        assert any(diff > 0 for diff in diffs)
        assert any(diff < 0 for diff in diffs)

    def test_dot_is_orders_of_magnitude_below_do53(self, report):
        ratio = report.dot_to_do53_ratio("cloudflare")
        assert 100 < ratio < 1000

    def test_concentration(self, report):
        # Class counts round down at scale=0.25, concentrating the top.
        assert 0.30 < report.top_share(5) < 0.72
        assert report.top_share(20) > report.top_share(5)

    def test_short_lived_majority(self, report):
        block_fraction, traffic_fraction = report.short_lived_stats()
        assert block_fraction > 0.85
        assert 0.10 < traffic_fraction < 0.40

    def test_scatter_shares_sum_to_one(self, report):
        total = sum(share for share, _, _ in report.scatter_points())
        assert total == pytest.approx(1.0)

    def test_growth_of_unknown_family_is_zero(self, report):
        assert report.growth("nonexistent", "2018-07", "2018-12") == 0.0

    def test_empty_dataset(self):
        from repro.datasets.netflow import NetFlowDataset
        empty = NetFlowDataset(records=[], do53_monthly={})
        result = DotTrafficStudy().analyze(empty)
        assert result.matched_records == 0
        assert result.top_share(5) == 0.0
        assert result.short_lived_stats() == (0.0, 0.0)


class TestScanDetection:
    def test_scanners_flagged(self, dataset):
        monitor = NetworkScanMonitor()
        alerts = monitor.detect(dataset.records)
        flagged = {alert.src_netblock for alert in alerts}
        assert flagged == set(dataset.scanner_netblocks)

    def test_clients_not_flagged(self, dataset, report):
        monitor = NetworkScanMonitor()
        blocks = [block.netblock for block in report.netblocks][:60]
        vetting = monitor.vet_netblocks(dataset.records, blocks)
        assert not any(vetting.values())

    def test_fanout_threshold_respected(self):
        monitor = NetworkScanMonitor(DetectorConfig(fanout_threshold=5))
        records = [
            FlowRecord("10.0.0.1", f"8.8.4.{index}", 1000 + index, 853,
                       "tcp", 1, 60, TcpFlags.SYN, float(index), float(index))
            for index in range(6)
        ]
        alerts = monitor.detect(records)
        assert len(alerts) == 1
        assert alerts[0].distinct_destinations >= 5

    def test_talkative_but_focused_client_not_flagged(self):
        monitor = NetworkScanMonitor(DetectorConfig(fanout_threshold=5))
        records = [
            FlowRecord("10.0.0.1", "1.1.1.1", 1000 + index, 853, "tcp",
                       3, 300, TcpFlags.PSH | TcpFlags.ACK,
                       float(index), float(index))
            for index in range(200)
        ]
        assert monitor.detect(records) == []

    def test_ack_heavy_fanout_not_flagged(self):
        # High fan-out with completed connections (e.g. a forwarder's
        # egress) must not look like a SYN scan.
        monitor = NetworkScanMonitor(DetectorConfig(fanout_threshold=5))
        records = [
            FlowRecord("10.0.0.1", f"8.8.4.{index}", 1000 + index, 853,
                       "tcp", 5, 500, TcpFlags.PSH | TcpFlags.ACK,
                       float(index), float(index))
            for index in range(50)
        ]
        assert monitor.detect(records) == []


class TestPassiveDns:
    @pytest.fixture(scope="class")
    def stores(self):
        domains = ["dns.google.com", "mozilla.cloudflare-dns.com",
                   "doh.cleanbrowsing.org", "doh.crypto.sx",
                   "doh.li", "commons.host", "doh.captnemo.in"]
        return build_passive_dns_stores(domains, SeededRng(3, "pd")), domains

    def test_only_four_popular(self, stores):
        store, domains = stores
        usage = DohUsageStudy(store).analyze(domains)
        assert len(usage.popular) == 4
        assert usage.popular[0] == "dns.google.com"

    def test_google_dominates_by_orders_of_magnitude(self, stores):
        store, domains = stores
        usage = DohUsageStudy(store).analyze(domains)
        assert usage.dominant_domain() == "dns.google.com"
        assert usage.orders_of_magnitude_above_rest("dns.google.com") > 1.0

    def test_cleanbrowsing_anchor_growth(self, stores):
        store, domains = stores
        usage = DohUsageStudy(store).analyze(domains)
        growth = usage.growth("doh.cleanbrowsing.org", "2018-09", "2019-03")
        assert growth == pytest.approx(1915 / 200, rel=0.01)

    def test_quiet_domains_under_threshold(self, stores):
        store, domains = stores
        usage = DohUsageStudy(store).analyze(domains)
        for domain in ("doh.li", "commons.host", "doh.captnemo.in"):
            assert usage.totals[domain] < 10_000

    def test_unknown_domain_total_zero(self, stores):
        store, _ = stores
        usage = DohUsageStudy(store).analyze(["never.seen.example"])
        assert usage.totals["never.seen.example"] == 0
        assert usage.popular == []

    def test_monthly_series_only_for_popular(self, stores):
        store, domains = stores
        usage = DohUsageStudy(store).analyze(domains)
        assert set(usage.monthly_series) == set(usage.popular)

    def test_aggregate_lookup_normalises_case(self, stores):
        store, _ = stores
        assert store.aggregate_for("DNS.GOOGLE.COM.") is not None
