"""Tests for EDNS(0) TCP keepalive (RFC 7828) and reuse lifetimes."""

import pytest

from repro.dnswire import (
    DnsName,
    KeepaliveOption,
    Message,
    OptRecord,
    RRType,
    make_query,
)
from repro.doe import Do53Client, DotClient
from repro.resolvers import Do53TcpService

WWW = DnsName.from_text("www.example.com")


def enable_tcp_keepalive(world, timeout_s=30.0):
    """Give the mini-world's TCP frontend an RFC 7828 window."""
    service = world["host"].service_on("tcp", 53)
    assert isinstance(service, Do53TcpService)
    service.keepalive_timeout_s = timeout_s


class TestOptionCodec:
    def test_roundtrip_through_wire(self):
        opt = OptRecord().with_option(KeepaliveOption.make(30.0))
        message = Message(opt=opt)
        decoded = Message.decode(message.encode())
        assert KeepaliveOption.timeout_from(decoded.opt) == 30.0

    def test_decisecond_resolution(self):
        opt = OptRecord().with_option(KeepaliveOption.make(12.34))
        assert KeepaliveOption.timeout_from(opt) == pytest.approx(12.3)

    def test_clamped_to_u16(self):
        opt = OptRecord().with_option(KeepaliveOption.make(1e9))
        assert KeepaliveOption.timeout_from(opt) == 6553.5

    def test_absent_option_is_none(self):
        assert KeepaliveOption.timeout_from(OptRecord()) is None

    def test_empty_client_form_reports_none(self):
        opt = OptRecord().with_option(KeepaliveOption.empty())
        assert KeepaliveOption.timeout_from(opt) is None


class TestServerAdvertisement:
    def test_dot_responses_carry_keepalive(self, mini_world, rng, trust):
        client = DotClient(mini_world["network"], rng.fork("c"),
                           trust["store"])
        result = client.query(mini_world["env"],
                              mini_world["resolver_ip"],
                              make_query(WWW, msg_id=1))
        assert result.ok
        assert KeepaliveOption.timeout_from(result.response.opt) == 30.0

    def test_udp_responses_do_not(self, mini_world, rng):
        from repro.doe import Do53Client
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_udp(mini_world["env"],
                                  mini_world["resolver_ip"],
                                  make_query(WWW, msg_id=1))
        assert result.ok
        assert KeepaliveOption.timeout_from(result.response.opt) is None


class TestDo53TcpAdvertisement:
    def test_bare_tcp_responses_carry_no_option_by_default(self, mini_world,
                                                           rng):
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_tcp(mini_world["env"],
                                  mini_world["resolver_ip"],
                                  make_query(WWW, msg_id=1))
        assert result.ok
        assert KeepaliveOption.timeout_from(result.response.opt) is None

    def test_configured_frontend_advertises_window(self, mini_world, rng):
        enable_tcp_keepalive(mini_world, 30.0)
        client = Do53Client(mini_world["network"], rng.fork("c"))
        result = client.query_tcp(mini_world["env"],
                                  mini_world["resolver_ip"],
                                  make_query(WWW, msg_id=1))
        assert result.ok
        assert KeepaliveOption.timeout_from(result.response.opt) == 30.0


class TestDo53TcpClientLifetimes:
    """Regression tests: the clear-text TCP pool honours RFC 7828.

    Before the serving work the Do53 client reused a pooled TCP
    connection forever; a server that advertised a 30 s window would
    long since have hung up, so "reuse" after a long idle was writing
    into a dead socket.
    """

    def query(self, world, client, msg_id):
        return client.query_tcp(world["env"], world["resolver_ip"],
                                make_query(WWW, msg_id=msg_id))

    def test_connection_reused_within_window(self, mini_world, rng):
        enable_tcp_keepalive(mini_world, 30.0)
        client = Do53Client(mini_world["network"], rng.fork("c"))
        self.query(mini_world, client, 1)
        mini_world["network"].clock.advance(10.0)
        assert self.query(mini_world, client, 2).reused_connection

    def test_connection_expires_after_idle_window(self, mini_world, rng):
        enable_tcp_keepalive(mini_world, 30.0)
        client = Do53Client(mini_world["network"], rng.fork("c"))
        assert self.query(mini_world, client, 1).ok
        mini_world["network"].clock.advance(60.0)  # beyond the 30 s window
        second = self.query(mini_world, client, 2)
        assert second.ok
        assert not second.reused_connection

    def test_each_query_refreshes_the_deadline(self, mini_world, rng):
        enable_tcp_keepalive(mini_world, 30.0)
        client = Do53Client(mini_world["network"], rng.fork("c"))
        self.query(mini_world, client, 1)
        for step in range(4):
            mini_world["network"].clock.advance(20.0)  # never past 30 s
            assert self.query(mini_world, client,
                              2 + step).reused_connection, step

    def test_no_advertisement_means_no_expiry(self, mini_world, rng):
        # Default frontend: no keepalive option, so the pool keeps the
        # connection alive across an arbitrary idle gap (pre-existing
        # behaviour, preserved byte-for-byte).
        client = Do53Client(mini_world["network"], rng.fork("c"))
        self.query(mini_world, client, 1)
        mini_world["network"].clock.advance(3600.0)
        assert self.query(mini_world, client, 2).reused_connection

    def test_reconnect_pays_the_handshake_again(self, mini_world, rng):
        enable_tcp_keepalive(mini_world, 30.0)
        client = Do53Client(mini_world["network"], rng.fork("c"))
        first = self.query(mini_world, client, 1)
        mini_world["network"].clock.advance(10.0)
        warm = self.query(mini_world, client, 2)
        mini_world["network"].clock.advance(120.0)
        cold = self.query(mini_world, client, 3)
        assert warm.latency_ms < first.latency_ms
        assert cold.latency_ms > warm.latency_ms


class TestClientLifetimes:
    def test_session_reused_within_window(self, mini_world, rng, trust):
        network = mini_world["network"]
        client = DotClient(network, rng.fork("c"), trust["store"])
        client.query(mini_world["env"], mini_world["resolver_ip"],
                     make_query(WWW, msg_id=1))
        network.clock.advance(10.0)  # within the 30 s window
        second = client.query(mini_world["env"],
                              mini_world["resolver_ip"],
                              make_query(WWW, msg_id=2))
        assert second.reused_connection

    def test_session_expires_after_idle_window(self, mini_world, rng,
                                               trust):
        network = mini_world["network"]
        client = DotClient(network, rng.fork("c"), trust["store"])
        first = client.query(mini_world["env"], mini_world["resolver_ip"],
                             make_query(WWW, msg_id=1))
        assert first.ok
        network.clock.advance(60.0)  # beyond the 30 s window
        second = client.query(mini_world["env"],
                              mini_world["resolver_ip"],
                              make_query(WWW, msg_id=2))
        assert second.ok
        assert not second.reused_connection
        # The reconnect resumes the TLS session: cheaper than the
        # original full handshake.
        assert second.latency_ms < first.latency_ms

    def test_each_query_refreshes_the_deadline(self, mini_world, rng,
                                               trust):
        network = mini_world["network"]
        client = DotClient(network, rng.fork("c"), trust["store"])
        client.query(mini_world["env"], mini_world["resolver_ip"],
                     make_query(WWW, msg_id=1))
        for step in range(4):
            network.clock.advance(20.0)  # never idle past 30 s at once
            result = client.query(mini_world["env"],
                                  mini_world["resolver_ip"],
                                  make_query(WWW, msg_id=2 + step))
            assert result.reused_connection, step
