"""Tests for hosts, network routing, transports and latency accounting."""

import pytest

from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    ScenarioError,
    TimeoutError_,
    TlsError,
)
from repro.netsim import (
    ClientEnvironment,
    Host,
    LatencyModel,
    Network,
    SeededRng,
    TcpConnection,
    TlsChannel,
    UdpExchange,
    country,
)
from repro.netsim.host import CallableService, TlsConfig
from repro.netsim.latency import PathProfile
from repro.netsim.middlebox import (
    Censor,
    PortFilter,
    RuleSet,
    TlsInterceptor,
    Verdict,
)
from repro.tlssim import make_chain


@pytest.fixture()
def world(rng):
    network = Network()
    host = Host(address="9.8.7.6", country_code="US",
                point=country("US").point)
    host.bind("tcp", 853, CallableService(lambda p, ctx: b"tcp:" + p))
    host.bind("udp", 53, CallableService(lambda p, ctx: b"udp:" + p))
    network.add_host(host)
    env = ClientEnvironment.in_country("client", "5.5.5.5", "DE",
                                       rng.fork("env"))
    return network, host, env


class TestHost:
    def test_rebinding_port_rejected(self, world):
        _, host, _ = world
        with pytest.raises(ScenarioError):
            host.bind("tcp", 853, CallableService(lambda p, c: p))

    def test_open_tcp_ports_sorted(self, rng):
        host = Host(address="1.2.3.4", country_code="US",
                    point=country("US").point)
        for port in (443, 53, 80):
            host.bind("tcp", port, CallableService(lambda p, c: p))
        assert host.open_tcp_ports() == (53, 80, 443)

    def test_duplicate_host_rejected(self, world):
        network, host, _ = world
        with pytest.raises(ScenarioError):
            network.add_host(Host(address=host.address, country_code="US",
                                  point=country("US").point))

    def test_default_pop_is_own_location(self):
        host = Host(address="4.3.2.1", country_code="JP",
                    point=country("JP").point)
        assert host.pops == (host.point,)


class TestTcp:
    def test_request_response(self, world, rng):
        network, _, env = world
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        assert connection.request(b"ping") == b"tcp:ping"
        assert connection.requests_sent == 1

    def test_latency_accumulates(self, world, rng):
        network, _, env = world
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        after_connect = connection.elapsed_ms
        assert after_connect > 0
        connection.request(b"x")
        assert connection.elapsed_ms > after_connect

    def test_refused_when_no_service(self, world, rng):
        network, _, env = world
        with pytest.raises(ConnectionRefused):
            TcpConnection.open(network, env, "9.8.7.6", 80, rng.fork("c"))

    def test_unreachable_when_no_host(self, world, rng):
        network, _, env = world
        with pytest.raises(HostUnreachable) as excinfo:
            TcpConnection.open(network, env, "100.99.98.97", 853,
                               rng.fork("c"), timeout_s=7.0)
        assert excinfo.value.elapsed_ms == pytest.approx(7000.0)

    def test_closed_connection_rejects_requests(self, world, rng):
        network, _, env = world
        with TcpConnection.open(network, env, "9.8.7.6", 853,
                                rng.fork("c")) as connection:
            pass
        from repro.errors import TransportError
        with pytest.raises(TransportError):
            connection.request(b"late")

    def test_geographically_farther_clients_see_higher_rtt(self, world, rng):
        network, _, _ = world
        near = ClientEnvironment.in_country("near", "6.6.6.1", "US",
                                            rng.fork("n"))
        far = ClientEnvironment.in_country("far", "6.6.6.2", "AU",
                                           rng.fork("f"))
        near.last_mile_ms = far.last_mile_ms = 10.0
        near_conn = TcpConnection.open(network, near, "9.8.7.6", 853,
                                       rng.fork("nc"))
        far_conn = TcpConnection.open(network, far, "9.8.7.6", 853,
                                      rng.fork("fc"))
        assert far_conn.elapsed_ms > near_conn.elapsed_ms


class TestMiddleboxes:
    def test_port_filter_drops(self, world, rng):
        network, _, env = world
        env.middleboxes.append(PortFilter(
            "f", RuleSet(blocked_endpoints={("9.8.7.6", 853)})))
        with pytest.raises(TimeoutError_):
            TcpConnection.open(network, env, "9.8.7.6", 853, rng.fork("c"))

    def test_port_filter_leaves_other_ports(self, world, rng):
        network, _, env = world
        env.middleboxes.append(PortFilter(
            "f", RuleSet(blocked_ports={53})))
        TcpConnection.open(network, env, "9.8.7.6", 853, rng.fork("c"))

    def test_reset_action(self, world, rng):
        network, _, env = world
        env.middleboxes.append(PortFilter(
            "f", RuleSet(blocked_ips={"9.8.7.6"}), action=Verdict.RESET))
        with pytest.raises(ConnectionReset):
            TcpConnection.open(network, env, "9.8.7.6", 853, rng.fork("c"))

    def test_country_policy_applies_to_matching_clients(self, world, rng):
        network, _, env = world
        network.add_country_policy(env.country_code, Censor(
            "censor", RuleSet(blocked_ips={"9.8.7.6"})))
        with pytest.raises(TimeoutError_):
            TcpConnection.open(network, env, "9.8.7.6", 853, rng.fork("c"))

    def test_country_policy_skips_other_countries(self, world, rng):
        network, _, _ = world
        network.add_country_policy("CN", Censor(
            "censor", RuleSet(blocked_ips={"9.8.7.6"})))
        other = ClientEnvironment.in_country("other", "5.5.5.9", "FR",
                                             rng.fork("o"))
        TcpConnection.open(network, other, "9.8.7.6", 853, rng.fork("c"))

    def test_udp_censor_drop(self, world, rng):
        network, _, env = world
        env.middleboxes.append(Censor(
            "censor", RuleSet(blocked_endpoints={("9.8.7.6", 53)})))
        with pytest.raises(TimeoutError_):
            UdpExchange.exchange(network, env, "9.8.7.6", 53, b"q",
                                 rng.fork("u"))

    def test_udp_spoofing(self, world, rng):
        network, _, env = world
        censor = Censor("censor", RuleSet(), spoof_port53=True)
        censor.spoof_handler = lambda payload: b"spoofed"
        env.middleboxes.append(censor)
        response, elapsed = UdpExchange.exchange(
            network, env, "9.8.7.6", 53, b"q", rng.fork("u"))
        assert response == b"spoofed"
        assert elapsed > 0


class TestUdp:
    def test_exchange(self, world, rng):
        network, _, env = world
        response, elapsed = UdpExchange.exchange(
            network, env, "9.8.7.6", 53, b"hello", rng.fork("u"))
        assert response == b"udp:hello"
        assert elapsed > 0

    def test_port_unreachable(self, world, rng):
        network, _, env = world
        with pytest.raises(ConnectionRefused):
            UdpExchange.exchange(network, env, "9.8.7.6", 5353, b"x",
                                 rng.fork("u"))

    def test_timeout_for_absent_host(self, world, rng):
        network, _, env = world
        with pytest.raises(TimeoutError_):
            UdpExchange.exchange(network, env, "100.1.2.3", 53, b"x",
                                 rng.fork("u"), timeout_s=2.0)


class TestTls:
    @pytest.fixture()
    def tls_world(self, rng, trust):
        network = Network()
        chain = make_chain(trust["ca"], "dns.test", "2018-06-01",
                           "2019-12-31")
        host = Host(address="9.8.7.6", country_code="US",
                    point=country("US").point)
        host.bind("tcp", 853, CallableService(
            lambda p, ctx: b"secure:" + p, tls=TlsConfig(cert_chain=chain)))
        host.bind("tcp", 80, CallableService(lambda p, ctx: p))
        network.add_host(host)
        env = ClientEnvironment.in_country("client", "5.5.5.5", "NL",
                                           rng.fork("env"))
        return network, env, chain

    def test_handshake_presents_service_chain(self, tls_world, rng):
        network, env, chain = tls_world
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        channel = TlsChannel(connection, server_name="dns.test").handshake()
        assert channel.presented_chain == chain
        assert channel.request(b"q") == b"secure:q"

    def test_handshake_on_plaintext_port_fails(self, tls_world, rng):
        network, env, _ = tls_world
        connection = TcpConnection.open(network, env, "9.8.7.6", 80,
                                        rng.fork("c"))
        with pytest.raises(TlsError):
            TlsChannel(connection).handshake()

    def test_request_before_handshake_fails(self, tls_world, rng):
        network, env, _ = tls_world
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        with pytest.raises(TlsError):
            TlsChannel(connection).request(b"q")

    def test_resumption_is_cheaper(self, tls_world, rng):
        network, env, _ = tls_world
        full_conn = TcpConnection.open(network, env, "9.8.7.6", 853,
                                       rng.fork("a"))
        TlsChannel(full_conn).handshake(resume=False)
        resumed_conn = TcpConnection.open(network, env, "9.8.7.6", 853,
                                          rng.fork("a"))
        TlsChannel(resumed_conn).handshake(resume=True)
        assert resumed_conn.elapsed_ms < full_conn.elapsed_ms

    def test_interceptor_substitutes_chain(self, tls_world, rng, trust):
        network, env, chain = tls_world
        env.middleboxes.append(TlsInterceptor("dpi", trust["rogue"]))
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        channel = TlsChannel(connection, server_name="dns.test").handshake()
        assert channel.intercepted_by == "dpi"
        assert channel.presented_chain != chain
        assert channel.presented_chain[0].subject_cn == "dns.test"
        # Application data still flows: the interceptor proxies.
        assert channel.request(b"q") == b"secure:q"

    def test_interceptor_respects_port_list(self, tls_world, rng, trust):
        network, env, chain = tls_world
        env.middleboxes.append(TlsInterceptor("dpi", trust["rogue"],
                                              ports=(443,)))
        connection = TcpConnection.open(network, env, "9.8.7.6", 853,
                                        rng.fork("c"))
        channel = TlsChannel(connection, server_name="dns.test").handshake()
        assert channel.intercepted_by is None
        assert channel.presented_chain == chain


class TestLatencyModel:
    def test_profile_uses_nearest_pop(self):
        model = LatencyModel()
        client = country("JP").point
        pops = (country("US").point, country("SG").point)
        multi = model.path(client, 10.0, pops, 1.0)
        single = model.path(client, 10.0, (country("US").point,), 1.0)
        assert multi.propagation_ms < single.propagation_ms

    def test_base_rtt_has_floor(self):
        profile = PathProfile(0.0, 0.0, 0.0)
        assert profile.base_rtt_ms >= 0.5

    def test_penalty_adds_to_rtt(self):
        base = PathProfile(10.0, 5.0, 1.0)
        penalized = PathProfile(10.0, 5.0, 1.0, penalty_ms=95.0)
        assert penalized.base_rtt_ms == pytest.approx(base.base_rtt_ms + 95.0)

    def test_jitter_is_multiplicative_and_positive(self, rng):
        model = LatencyModel()
        profile = PathProfile(50.0, 10.0, 2.0)
        samples = [model.sample_rtt_ms(profile, rng) for _ in range(300)]
        assert all(sample > 0 for sample in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(profile.base_rtt_ms, rel=0.15)
