"""Property-based tests for the network-simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    LatencyModel,
    Netblock,
    SeededRng,
    int_to_ip,
    ip_to_int,
    slash24,
)
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.latency import PathProfile
from repro.tlssim import CaStore, CertificateAuthority, make_chain, validate_chain
from repro.netsim.clock import parse_date

ip_ints = st.integers(0, 0xFFFFFFFF)
lat = st.floats(min_value=-89.0, max_value=89.0)
lon = st.floats(min_value=-179.0, max_value=179.0)
seeds = st.integers(0, 2**31)


@given(value=ip_ints)
def test_ipv4_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(value=ip_ints)
def test_slash24_is_idempotent_prefix(value):
    address = int_to_ip(value)
    prefix = slash24(address)
    base = prefix.split("/")[0]
    assert slash24(base) == prefix
    assert Netblock.from_text(prefix).contains(address)


@given(value=ip_ints, prefix_length=st.integers(0, 32))
def test_netblock_contains_its_base(value, prefix_length):
    block = Netblock.from_text(f"{int_to_ip(value)}/{prefix_length}")
    assert block.contains(int_to_ip(block.base))
    assert block.size == 1 << (32 - prefix_length)


@given(a_lat=lat, a_lon=lon, b_lat=lat, b_lon=lon)
def test_great_circle_symmetry_and_bounds(a_lat, a_lon, b_lat, b_lon):
    a, b = GeoPoint(a_lat, a_lon), GeoPoint(b_lat, b_lon)
    forward = great_circle_km(a, b)
    backward = great_circle_km(b, a)
    assert abs(forward - backward) < 1e-6
    assert 0.0 <= forward <= 20_016  # half the Earth's circumference


@given(seed=seeds, name=st.text(min_size=1, max_size=12))
def test_forked_rng_is_reproducible(seed, name):
    first = SeededRng(seed).fork(name)
    second = SeededRng(seed).fork(name)
    assert [first.random() for _ in range(3)] == [
        second.random() for _ in range(3)]


@given(seed=seeds, trials=st.integers(0, 10_000),
       probability=st.floats(min_value=0.0, max_value=1.0))
def test_binomial_always_in_range(seed, trials, probability):
    draw = SeededRng(seed).binomial(trials, probability)
    assert 0 <= draw <= trials


@given(propagation=st.floats(min_value=0.0, max_value=500.0),
       last_mile=st.floats(min_value=0.0, max_value=100.0),
       processing=st.floats(min_value=0.0, max_value=50.0),
       penalty=st.floats(min_value=0.0, max_value=200.0),
       seed=seeds)
@settings(max_examples=100)
def test_rtt_samples_positive_and_near_base(propagation, last_mile,
                                            processing, penalty, seed):
    profile = PathProfile(propagation, last_mile, processing, penalty)
    model = LatencyModel()
    rng = SeededRng(seed, "latency")
    sample = model.sample_rtt_ms(profile, rng)
    assert sample > 0
    assert sample < profile.base_rtt_ms * 3.0


@given(not_before=st.integers(2014, 2018), lifetime=st.integers(1, 5),
       check_year=st.integers(2014, 2025))
def test_certificate_validity_window(not_before, lifetime, check_year):
    # The root must span the whole property range, or its own window
    # (correctly) breaks the chain.
    ca = CertificateAuthority.root("Prop Root", not_before="2010-01-01",
                                   not_after="2040-01-01")
    store = CaStore()
    store.trust(ca)
    chain = make_chain(ca, "prop.example",
                       f"{not_before}-01-01",
                       f"{not_before + lifetime}-01-01")
    report = validate_chain(chain, store,
                            parse_date(f"{check_year}-06-01"))
    inside = not_before <= check_year < not_before + lifetime
    assert report.valid == inside
