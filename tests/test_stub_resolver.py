"""Tests for the fallback-capable stub resolver."""

import pytest

from repro.dnswire import DnsName
from repro.doe.dot import PrivacyProfile
from repro.errors import ScenarioError
from repro.netsim.middlebox import PortFilter, RuleSet, TlsInterceptor
from repro.resolvers import StubResolver, UpstreamConfig

WWW = DnsName.from_text("www.example.com")


def make_stub(mini_world, rng, trust, profile, transports=("dot", "do53"),
              with_doh=False):
    upstream = UpstreamConfig(
        do53_ip=mini_world["resolver_ip"],
        dot_ip=mini_world["resolver_ip"],
        doh_template=(f"https://{mini_world['hostname']}/dns-query{{?dns}}"
                      if with_doh else None),
    )
    return StubResolver(
        mini_world["network"], mini_world["env"], rng.fork("stub"),
        trust["store"], upstream, profile=profile, transports=transports,
        bootstrap=(mini_world["universe"].resolve_public
                   if with_doh else None))


class TestHappyPath:
    def test_resolves_via_first_transport(self, mini_world, rng, trust):
        stub = make_stub(mini_world, rng, trust,
                         PrivacyProfile.OPPORTUNISTIC)
        answer = stub.resolve(WWW)
        assert answer.ok
        assert answer.result.transport == "dot"
        assert answer.transport_trail == ("dot",)
        assert not answer.fell_back_to_cleartext

    def test_doh_transport(self, mini_world, rng, trust):
        stub = make_stub(mini_world, rng, trust,
                         PrivacyProfile.STRICT,
                         transports=("doh",), with_doh=True)
        answer = stub.resolve(WWW)
        assert answer.ok
        assert answer.result.transport == "doh"


class TestFallback:
    def test_opportunistic_falls_back_to_cleartext(self, mini_world, rng,
                                                   trust):
        mini_world["env"].middleboxes.append(PortFilter(
            "block-dot", RuleSet(blocked_ports={853})))
        stub = make_stub(mini_world, rng, trust,
                         PrivacyProfile.OPPORTUNISTIC)
        answer = stub.resolve(WWW)
        assert answer.ok
        assert answer.result.transport == "do53-tcp"
        assert answer.transport_trail == ("dot", "do53")
        assert answer.fell_back_to_cleartext

    def test_strict_never_uses_cleartext(self, mini_world, rng, trust):
        mini_world["env"].middleboxes.append(PortFilter(
            "block-dot", RuleSet(blocked_ports={853})))
        stub = make_stub(mini_world, rng, trust, PrivacyProfile.STRICT)
        assert stub.effective_transports() == ("dot",)
        answer = stub.resolve(WWW)
        assert not answer.ok
        assert answer.transport_trail == ("dot",)

    def test_strict_fails_closed_under_interception(self, mini_world, rng,
                                                    trust):
        mini_world["env"].middleboxes.append(
            TlsInterceptor("dpi", trust["rogue"]))
        stub = make_stub(mini_world, rng, trust, PrivacyProfile.STRICT)
        answer = stub.resolve(WWW)
        assert not answer.ok

    def test_opportunistic_proceeds_under_interception(self, mini_world,
                                                       rng, trust):
        mini_world["env"].middleboxes.append(
            TlsInterceptor("dpi", trust["rogue"]))
        stub = make_stub(mini_world, rng, trust,
                         PrivacyProfile.OPPORTUNISTIC)
        answer = stub.resolve(WWW)
        assert answer.ok
        assert answer.result.transport == "dot"
        assert answer.result.intercepted_by == "dpi"


class TestConfigValidation:
    def test_unknown_transport_rejected(self, mini_world, rng, trust):
        with pytest.raises(ScenarioError):
            make_stub(mini_world, rng, trust,
                      PrivacyProfile.OPPORTUNISTIC,
                      transports=("carrier-pigeon",))

    def test_doh_without_bootstrap_rejected(self, mini_world, rng, trust):
        upstream = UpstreamConfig(doh_template="https://x/dns-query{?dns}")
        with pytest.raises(ScenarioError):
            StubResolver(mini_world["network"], mini_world["env"],
                         rng.fork("s"), trust["store"], upstream,
                         transports=("doh",))

    def test_close_is_idempotent(self, mini_world, rng, trust):
        stub = make_stub(mini_world, rng, trust,
                         PrivacyProfile.OPPORTUNISTIC)
        stub.resolve(WWW)
        stub.close()
        stub.close()
