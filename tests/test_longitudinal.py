"""Longitudinal campaign engine: queue, checkpoints, dynamics, goldens.

The tier proves four things:

- the two growth-table bugfixes (union ranking with explicit new
  entrants; clear errors instead of bare IndexError on empty campaigns);
- churn/rotation world dynamics are pure functions of (seed, round) —
  any materialisation order, any world mode, any shard plan agrees;
- incremental (fragment-folded) analysis is byte-identical to the batch
  path at workers 1 and 4;
- a killed campaign resumes from its checkpoint with byte-identical
  final artefacts and digest.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import figures, tables
from repro.campaign import (
    CampaignEngine,
    CheckpointStore,
    FragmentAccumulator,
    RoundFragment,
    chain_digest,
)
from repro.core.parallel import ParallelConfig
from repro.core.scan import churn
from repro.core.scan.campaign import (
    CampaignResult,
    ScanCampaign,
    rank_country_growth,
)
from repro.errors import CampaignError
from repro.tlssim.certs import (
    CaStore,
    CertificateAuthority,
    make_chain,
    validate_chain,
)
from repro.world.scenario import ScenarioConfig, build_scenario

from tests.conftest import tiny_config


def longitudinal_config(seed: int = 2019, rounds: int = 4,
                        **overrides) -> ScenarioConfig:
    base = tiny_config(seed)
    return dataclasses.replace(base, scan_rounds=rounds, **overrides)


def artefact_bundle(summary) -> tuple:
    accumulator = summary.accumulator
    return (accumulator.table2_text(),
            accumulator.figure3_series(),
            accumulator.figure4_series(),
            accumulator.churn,
            accumulator.survival)


# -- satellite bugfix regressions -------------------------------------------


@pytest.mark.longitudinal
class TestCountryGrowthRanking:
    """country_growth ranks on the union and flags new entrants."""

    def test_new_entrant_appears_and_is_flagged(self):
        first = Counter({"US": 100, "DE": 50})
        last = Counter({"US": 150, "DE": 40, "BR": 90})
        rows = rank_country_growth(first, last, top_n=3)
        codes = [row[0] for row in rows]
        assert codes == ["US", "BR", "DE"]
        by_code = {row[0]: row for row in rows}
        # BR was absent at round 0: present in the table, growth None.
        assert by_code["BR"][1] == 0 and by_code["BR"][2] == 90
        assert by_code["BR"][3] is None

    def test_departed_country_still_ranked(self):
        first = Counter({"CN": 300, "US": 10})
        last = Counter({"US": 12})
        rows = rank_country_growth(first, last, top_n=2)
        assert rows[0][0] == "CN"
        assert rows[0][2] == 0 and rows[0][3] == -100.0

    def test_ranking_key_prefers_final_count_on_ties(self):
        first = Counter({"AA": 10, "BB": 5})
        last = Counter({"AA": 5, "BB": 10})
        rows = rank_country_growth(first, last, top_n=2)
        # Same max(first,last); BB's larger final count wins.
        assert [row[0] for row in rows] == ["BB", "AA"]

    def test_table2_renders_new_for_new_entrants(self):
        text = tables.table2_text_from(
            "2019-02-01", "2019-05-01",
            [("US", 100, 531, 431.0), ("BR", 0, 90, None)])
        lines = text.splitlines()
        br_line = next(line for line in lines if line.startswith("BR"))
        assert "new" in br_line and "%" not in br_line
        us_line = next(line for line in lines if line.startswith("US"))
        assert "+431%" in us_line


@pytest.mark.longitudinal
class TestEmptyCampaignSafety:
    """Empty campaigns raise CampaignError / return empty, never IndexError."""

    def test_first_last_raise_campaign_error(self):
        empty = CampaignResult(rounds=[])
        with pytest.raises(CampaignError):
            empty.first
        with pytest.raises(CampaignError):
            empty.last

    def test_reports_are_empty_not_crashing(self):
        empty = CampaignResult(rounds=[])
        assert empty.country_growth() == []
        assert empty.resolvers_per_round() == []
        text = tables.table2_text(empty)
        assert "Table 2" in text

    def test_empty_accumulator_renders_empty_artefacts(self):
        accumulator = FragmentAccumulator()
        assert accumulator.country_growth() == []
        assert "Table 2" in accumulator.table2_text()
        dates, series = accumulator.figure3_series()
        assert dates == [] and series == {"others": []}


@pytest.mark.longitudinal
class TestValidationMemoBound:
    """CaStore's validation memo is a bounded LRU with an eviction count."""

    def _store_and_chains(self, size):
        ca = CertificateAuthority.root("Memo Test Root")
        store = CaStore(validation_memo_size=size)
        store.trust(ca)
        chains = [make_chain(ca, f"memo-{index}.example",
                             "2018-01-01", "2020-01-01")
                  for index in range(size + 3)]
        return store, chains

    def test_memo_never_exceeds_bound(self):
        store, chains = self._store_and_chains(size=4)
        now = 1.55e9
        for chain in chains:
            validate_chain(chain, store, now)
        assert len(store._validation_memo) == 4
        assert store.memo_evictions == len(chains) - 4

    def test_lru_order_keeps_hot_entries(self):
        store, chains = self._store_and_chains(size=2)
        now = 1.55e9
        validate_chain(chains[0], store, now)
        validate_chain(chains[1], store, now)
        validate_chain(chains[0], store, now)  # refresh 0
        validate_chain(chains[2], store, now)  # evicts 1, not 0
        before = store.memo_evictions
        validate_chain(chains[0], store, now)  # still memoised: no grow
        assert store.memo_evictions == before
        assert len(store._validation_memo) == 2

    def test_trust_change_clears_memo(self):
        store, chains = self._store_and_chains(size=4)
        validate_chain(chains[0], store, 1.55e9)
        assert len(store._validation_memo) == 1
        store.trust(CertificateAuthority.root("Another Root"))
        assert len(store._validation_memo) == 0


# -- churn / rotation determinism -------------------------------------------


@pytest.mark.longitudinal
class TestDynamicsDeterminism:
    """Same seed => identical round plans, in any materialisation order."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2**30),
           churn_rate=st.floats(min_value=0.05, max_value=0.6),
           order=st.permutations(list(range(4))))
    def test_churned_layouts_ignore_build_order(self, seed, churn_rate,
                                                order):
        config = longitudinal_config(seed=seed, churn_rate=churn_rate,
                                     cert_rotation_rounds=2)
        forward = build_scenario(config)
        shuffled = build_scenario(config)
        plans = {}
        for round_index in range(4):
            layout = forward.round_layout(round_index)
            plans[round_index] = (tuple(layout.addresses),
                                  dict(layout.tcp_ports),
                                  dict(layout.udp_ports))
        for round_index in order:  # arbitrary materialisation order
            layout = shuffled.round_layout(round_index)
            assert tuple(layout.addresses) == plans[round_index][0]
            assert dict(layout.tcp_ports) == plans[round_index][1]
            assert dict(layout.udp_ports) == plans[round_index][2]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2**30))
    def test_rotation_windows_ignore_query_order(self, seed):
        config = longitudinal_config(seed=seed, rounds=8,
                                     cert_rotation_rounds=2)
        forward = build_scenario(config)
        backward = build_scenario(config)
        samples = [spec.address
                   for provider in forward.providers[:6]
                   for spec in provider.addresses[:2]]

        def windows(scenario, round_order):
            seen = {}
            for round_index in round_order:
                layout = scenario.round_layout(round_index)
                for address in samples:
                    entry = layout.builders.get(address)
                    if entry is None or entry[0] != "resolver":
                        continue
                    provider, spec = entry[1]
                    tls = scenario._tls_config_for(provider, spec,
                                                   round_index)
                    leaf = tls.cert_chain[0]
                    seen[(address, round_index)] = (
                        leaf.subject_cn, leaf.not_before, leaf.not_after)
            return seen

        assert (windows(forward, range(8))
                == windows(backward, reversed(range(8))))

    def test_churn_spares_advertised_addresses(self):
        config = longitudinal_config(churn_rate=0.5)
        scenario = build_scenario(config)
        advertised = {spec.address
                      for provider in scenario.providers
                      for spec in provider.addresses
                      if spec.advertised and spec.active_in_round(2)}
        layout = scenario.round_layout(2)
        missing = advertised - set(layout.builders)
        assert not missing

    def test_zero_churn_reproduces_static_population(self):
        static = build_scenario(longitudinal_config())
        dynamic = build_scenario(longitudinal_config(churn_rate=0.0))
        for round_index in range(4):
            assert (static.round_layout(round_index).addresses
                    == dynamic.round_layout(round_index).addresses)

    def test_rotation_expiry_crosses_round_boundaries(self):
        """Laggard chains expire partway through an epoch, then recover."""
        config = longitudinal_config(rounds=12, cert_rotation_rounds=3)
        summary = CampaignEngine(build_scenario(config)).run(
            include_doh=False)
        invalid = summary.accumulator.invalid_provider_series
        baseline = CampaignEngine(
            build_scenario(longitudinal_config(rounds=12))).run(
                include_doh=False).accumulator.invalid_provider_series
        assert invalid != baseline
        # Non-monotone movement: counts rise (expiries) and fall again
        # (rotations land), not a single step at an epoch edge.
        assert any(b > a for a, b in zip(invalid, invalid[1:]))
        assert any(b < a for a, b in zip(invalid, invalid[1:]))

    def test_adoption_curve_densifies_open_plan(self):
        config = longitudinal_config(adoption_curve="linear",
                                     world_scale=4.0, world_mode="lazy")
        scenario = build_scenario(config)
        strides = [scenario.round_layout(r).scaled.stride
                   for r in range(4)]
        assert strides[0] > strides[-1]
        estimates = [scenario.background_open853(r) for r in range(4)]
        assert estimates[-1] > estimates[0]
        flat = build_scenario(longitudinal_config(world_scale=4.0,
                                                  world_mode="lazy"))
        assert (flat.round_layout(0).scaled.stride
                == flat.round_layout(3).scaled.stride)


# -- incremental == batch goldens -------------------------------------------


@pytest.mark.longitudinal
class TestIncrementalEqualsBatch:
    """Fragment-folded artefacts are byte-identical to the batch path."""

    CONFIG_KW = dict(churn_rate=0.15, cert_rotation_rounds=2)

    def _batch_bundle(self, parallel=None):
        campaign = ScanCampaign(
            build_scenario(longitudinal_config(**self.CONFIG_KW)),
            parallel=parallel).run(include_doh=False)
        return (tables.table2_text(campaign),
                figures.figure3_series(campaign),
                figures.figure4_series(campaign),
                churn.round_churn(campaign),
                churn.cohort_survival(campaign))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_incremental_equals_batch(self, workers):
        parallel = ParallelConfig(workers=workers)
        batch = self._batch_bundle()
        engine = CampaignEngine(
            build_scenario(longitudinal_config(**self.CONFIG_KW)),
            parallel=parallel)
        incremental = artefact_bundle(engine.run(include_doh=False))
        assert incremental == batch

    @settings(max_examples=8, deadline=None)
    @given(split=st.integers(min_value=0, max_value=4))
    def test_fold_is_associative_across_wire_roundtrip(self, split):
        """fold(all) == fold(prefix) -> wire roundtrip -> fold(suffix)."""
        campaign = ScanCampaign(build_scenario(
            longitudinal_config(**self.CONFIG_KW))).run(include_doh=False)
        fragments = [RoundFragment.from_round(r) for r in campaign.rounds]
        whole = FragmentAccumulator()
        for fragment in fragments:
            whole.fold(fragment)
        spliced = FragmentAccumulator()
        for fragment in fragments[:split]:
            spliced.fold(fragment)
        for fragment in fragments[split:]:
            spliced.fold(RoundFragment.from_wire(fragment.to_wire()))
        assert whole.table2_text() == spliced.table2_text()
        assert whole.figure3_series() == spliced.figure3_series()
        assert whole.figure4_series() == spliced.figure4_series()
        assert whole.churn == spliced.churn
        assert whole.survival == spliced.survival

    def test_out_of_order_fold_is_rejected(self):
        campaign = ScanCampaign(build_scenario(
            longitudinal_config())).run(rounds=2, include_doh=False)
        fragments = [RoundFragment.from_round(r) for r in campaign.rounds]
        accumulator = FragmentAccumulator()
        accumulator.fold(fragments[1])
        with pytest.raises(CampaignError):
            accumulator.fold(fragments[0])


# -- checkpoint / resume ----------------------------------------------------


@pytest.mark.longitudinal
class TestCheckpointResume:
    CONFIG_KW = dict(rounds=5, churn_rate=0.1)

    def _engine(self, tmp_path=None):
        path = str(tmp_path / "campaign.jsonl") if tmp_path else None
        return CampaignEngine(
            build_scenario(longitudinal_config(**self.CONFIG_KW)),
            checkpoint_path=path)

    def test_kill_then_resume_is_byte_identical(self, tmp_path):
        straight = self._engine().run(include_doh=False)
        partial = self._engine(tmp_path).run(include_doh=False,
                                             stop_after_round=2)
        assert not partial.completed and partial.executed_rounds == 3
        resumed = self._engine(tmp_path).run(include_doh=False,
                                             resume=True)
        assert resumed.completed
        assert resumed.restored_rounds == 3
        assert resumed.executed_rounds == 2
        assert resumed.digest == straight.digest
        assert artefact_bundle(resumed) == artefact_bundle(straight)

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        straight = self._engine().run(include_doh=False)
        self._engine(tmp_path).run(include_doh=False, stop_after_round=1)
        path = tmp_path / "campaign.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"round": 2, "dig')  # kill mid-append
        resumed = self._engine(tmp_path).run(include_doh=False,
                                             resume=True)
        assert resumed.digest == straight.digest

    def test_config_mismatch_is_refused(self, tmp_path):
        self._engine(tmp_path).run(include_doh=False, stop_after_round=1)
        other = CampaignEngine(
            build_scenario(longitudinal_config(seed=7, **self.CONFIG_KW)),
            checkpoint_path=str(tmp_path / "campaign.jsonl"))
        with pytest.raises(CampaignError):
            other.run(include_doh=False, resume=True)

    def test_tampered_digest_chain_is_refused(self, tmp_path):
        self._engine(tmp_path).run(include_doh=False, stop_after_round=2)
        path = tmp_path / "campaign.jsonl"
        lines = path.read_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]  # reorder rounds
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CampaignError):
            self._engine(tmp_path).run(include_doh=False, resume=True)

    def test_resume_without_store_is_an_error(self):
        with pytest.raises(CampaignError):
            self._engine().run(include_doh=False, resume=True)

    def test_wire_version_pin(self):
        with pytest.raises(CampaignError):
            RoundFragment.from_wire(
                ("roundfragment", 999, 0, 0.0, 0, 0, 0, [], [], []))

    def test_digest_chain_orders_fragments(self):
        wire_a = ("roundfragment", 1, 0, 0.0, 1, 1, 1,
                  [["US", 1]], [["p", 1, 0]], ["1.2.3.4"])
        wire_b = ("roundfragment", 1, 1, 1.0, 1, 1, 1,
                  [["US", 1]], [["p", 1, 0]], ["1.2.3.4"])
        ab = chain_digest(chain_digest("", wire_a), wire_b)
        ba = chain_digest(chain_digest("", wire_b), wire_a)
        assert ab != ba


# -- flat memory (cache-eviction contract) ----------------------------------


@pytest.mark.longitudinal
class TestFlatMemoryContract:
    def test_engine_releases_finished_rounds(self):
        engine = CampaignEngine(
            build_scenario(longitudinal_config(rounds=6)))
        engine.run(include_doh=False)
        scenario = engine.scenario
        # Only the final round's caches may remain resident.
        assert set(scenario._networks) <= {5}
        assert set(scenario._layouts) <= {5}
        assert set(scenario._pristine_networks) <= {5}

    def test_release_is_pure_cache_eviction(self):
        scenario = build_scenario(longitudinal_config())
        before = tuple(scenario.round_layout(0).addresses)
        released = scenario.release_rounds_before(4)
        assert released > 0
        assert tuple(scenario.round_layout(0).addresses) == before

    def test_store_checkpoint_roundtrip(self, tmp_path):
        config = longitudinal_config()
        campaign = ScanCampaign(build_scenario(config)).run(
            rounds=2, include_doh=False)
        fragments = [RoundFragment.from_round(r) for r in campaign.rounds]
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        store.start(config, 2)
        digest = ""
        for fragment in fragments:
            digest = chain_digest(digest, fragment.to_wire())
            store.append(fragment, digest)
        loaded, loaded_digest = store.load(config)
        assert loaded == fragments
        assert loaded_digest == digest
