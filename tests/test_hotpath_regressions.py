"""Regression tests for the hot-path performance pass.

Pins the four bug fixes that rode along with the bound-handle /
memo-cache work, plus the determinism contract of the bound handles
themselves: binding a metric once at import must never change a byte
of the exported snapshot relative to the string-keyed
``get_registry().inc(...)`` path.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.analysis.tables import _growth_percent
from repro.core.parallel import ShardPlan
from repro.dnswire import DnsName, Rcode, ResourceRecord, RRType
from repro.resolvers import DnsCache
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundGauge,
    BoundHistogram,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.export import snapshot, to_json, to_prometheus, to_table


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate the process-wide registry these tests write into."""
    telemetry.reset_registry()
    yield
    telemetry.reset_registry()


# -- Table 2 growth formatting ------------------------------------------------


class TestGrowthPercent:
    def test_truncates_toward_zero_for_losses(self):
        # JP in the paper: 34 -> 27 is -20.6%, printed as -20%, not -21%.
        assert _growth_percent(34, 27) == -20

    def test_exact_percentages_survive_float_representation(self):
        # US: 100 -> 531 is exactly +431%, but 431/100*100 in binary
        # floating point is 430.999..., which int() would truncate to
        # 430. The integer path must not lose the exact value.
        assert _growth_percent(100, 531) == 431

    def test_paper_table2_growth_column(self):
        cases = {
            (456, 951): 108, (257, 40): -84, (100, 531): 431,
            (71, 86): 21, (59, 56): -5, (34, 27): -20, (30, 36): 20,
            (25, 21): -16, (22, 49): 122, (17, 40): 135,
        }
        for (first, last), expected in cases.items():
            assert _growth_percent(first, last) == expected

    def test_zero_baseline_reports_zero(self):
        assert _growth_percent(0, 50) == 0

    def test_no_change_is_plus_zero(self):
        assert _growth_percent(42, 42) == 0


# -- empty histograms ---------------------------------------------------------


class TestEmptyHistogram:
    def test_quantile_is_none(self):
        histogram = Histogram("latency_ms")
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.0) is None
        assert histogram.quantile(1.0) is None

    def test_quantile_defined_after_first_observation(self):
        histogram = Histogram("latency_ms")
        histogram.observe(10.0)
        assert histogram.quantile(0.5) is not None

    def test_as_dict_has_no_quantiles(self):
        histogram = Histogram("latency_ms")
        assert histogram.as_dict() == {
            "type": "histogram", "count": 0, "sum": 0.0}

    def test_exporters_omit_empty_histograms(self):
        registry = MetricsRegistry()
        registry.observe("seen.latency_ms", 5.0)
        registry.histogram("never.touched_ms")  # registered, empty
        registry.inc("requests")

        snap = snapshot(registry)
        assert "seen.latency_ms" in snap["metrics"]
        assert "never.touched_ms" not in snap["metrics"]
        assert "never.touched_ms" not in to_json(registry)
        assert "never.touched_ms" not in to_prometheus(registry)
        assert "never.touched_ms" not in to_table(registry)
        assert "requests" in snap["metrics"]


# -- shard-plan edge cases ----------------------------------------------------


class TestShardPlanEdgeCases:
    def test_zero_items_yields_empty_plan(self):
        plan = ShardPlan.for_items(0, 16)
        assert len(plan) == 0
        assert plan.shards == ()
        assert [shard.slice([]) for shard in plan] == []

    def test_shard_total_is_plan_width_not_item_count(self):
        plan = ShardPlan.for_items(10, 4)
        for shard in plan:
            assert shard.shard_total == 4
            assert shard.shard_total == plan.shard_count
        # item counts differ per shard; shard_total never does.
        assert sorted(len(shard) for shard in plan) == [2, 2, 3, 3]


# -- DnsCache eviction policy -------------------------------------------------


WWW = DnsName.from_text("www.example.com")


def _record(name: DnsName, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord.a(name, "192.0.2.1", ttl=ttl)


class TestDnsCacheEviction:
    def test_expired_entries_purged_before_live_eviction(self):
        cache = DnsCache(max_entries=2)
        dead = DnsName.from_text("dead.example.com")
        live = DnsName.from_text("live.example.com")
        cache.put(dead, RRType.A, (_record(dead, ttl=10),),
                  Rcode.NOERROR, now=0.0)
        cache.put(live, RRType.A, (_record(live, ttl=600),),
                  Rcode.NOERROR, now=0.0)
        # At now=100 the first entry is expired. Inserting a third
        # must drop the corpse, not evict the live LRU victim.
        cache.put(WWW, RRType.A, (_record(WWW),), Rcode.NOERROR, now=100.0)
        assert len(cache) == 2
        assert cache.get(live, RRType.A, now=100.0) is not None
        assert cache.get(WWW, RRType.A, now=100.0) is not None
        assert cache.stats.expirations == 1
        assert cache.stats.evictions == 0

    def test_lru_eviction_still_runs_when_all_entries_live(self):
        cache = DnsCache(max_entries=2)
        for index in range(3):
            name = DnsName.from_text(f"h{index}.example.com")
            cache.put(name, RRType.A, (_record(name),),
                      Rcode.NOERROR, now=0.0)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 0

    def test_zero_capacity_cache_stores_nothing(self):
        cache = DnsCache(max_entries=0)
        cache.put(WWW, RRType.A, (_record(WWW),), Rcode.NOERROR, now=0.0)
        assert len(cache) == 0
        assert cache.stats.evictions == 0
        assert cache.get(WWW, RRType.A, now=0.0) is None


# -- bound-handle determinism -------------------------------------------------


class TestBoundHandleDeterminism:
    def test_snapshot_byte_identical_to_string_keyed_path(self):
        """The same op stream through handles and string lookups must
        serialise to the same bytes."""
        bound_registry, _ = telemetry.reset_registry()
        requests = BoundCounterFamily("transport.requests", "protocol")
        opened = BoundCounter("transport.connections_opened")
        depth = BoundGauge("transport.queue_depth")
        rtt = BoundHistogram("transport.rtt_ms")
        for index in range(20):
            requests.get("dot" if index % 2 else "doh").inc()
            opened.inc()
            depth.set(float(index))
            rtt.observe(1.5 * index)
        bound_json = to_json(bound_registry)

        string_registry = MetricsRegistry()
        for index in range(20):
            string_registry.inc("transport.requests",
                               protocol="dot" if index % 2 else "doh")
            string_registry.inc("transport.connections_opened")
            string_registry.set_gauge("transport.queue_depth", float(index))
            string_registry.observe("transport.rtt_ms", 1.5 * index)
        assert to_json(string_registry) == bound_json

    def test_handles_rebind_across_registry_swaps(self):
        """reset_registry()/install() swap the active registry out from
        under import-time handles; writes must follow the swap, exactly
        as the per-shard telemetry sandbox requires."""
        counter = BoundCounter("swap.test_counter")
        first_registry, _ = telemetry.reset_registry()
        counter.inc()
        second_registry, second_tracer = telemetry.reset_registry()
        counter.inc(2.0)
        assert first_registry.get("swap.test_counter").value == 1.0
        assert second_registry.get("swap.test_counter").value == 2.0
        # install() restores a captured pair; the handle must follow back.
        telemetry.install(first_registry, second_tracer)
        counter.inc(5.0)
        assert first_registry.get("swap.test_counter").value == 6.0
        assert second_registry.get("swap.test_counter").value == 2.0

    def test_family_cache_cleared_on_registry_swap(self):
        family = BoundCounterFamily("swap.family_counter", "op")
        first_registry, _ = telemetry.reset_registry()
        family.get("a").inc()
        second_registry, _ = telemetry.reset_registry()
        family.get("a").inc(3.0)
        assert first_registry.get("swap.family_counter",
                                  op="a").value == 1.0
        assert second_registry.get("swap.family_counter",
                                   op="a").value == 3.0

    def test_bound_cache_metrics_land_in_default_registry(self):
        """The migrated DnsCache counters keep writing the same series
        names the string-keyed implementation used."""
        registry, _ = telemetry.reset_registry()
        cache = DnsCache()
        cache.get(WWW, RRType.A, now=0.0)
        cache.put(WWW, RRType.A, (_record(WWW),), Rcode.NOERROR, now=0.0)
        cache.get(WWW, RRType.A, now=0.0)
        assert registry.get("resolver.cache.miss").value == 1.0
        assert registry.get("resolver.cache.hit").value == 1.0
