"""Unit tests for the usage-figure builders (11-13) on crafted inputs."""

import pytest

from repro.analysis import figures
from repro.core.usage.netflow_study import DotTrafficReport, NetblockActivity
from repro.core.usage.passive_dns_study import DohUsageReport


@pytest.fixture()
def traffic_report():
    return DotTrafficReport(
        monthly_flows={
            "cloudflare": {"2018-07": 4674, "2018-12": 7318},
            "quad9": {"2018-07": 1500, "2018-12": 1200},
        },
        do53_monthly={"cloudflare": {"2018-07": 2_000_000,
                                     "2018-12": 3_000_000}},
        netblocks=[
            NetblockActivity("115.48.1.0/24", 5000, 120, 0.0, 1e7),
            NetblockActivity("115.48.2.0/24", 3000, 90, 0.0, 1e7),
            NetblockActivity("115.48.3.0/24", 500, 3, 0.0, 1e5),
            NetblockActivity("115.48.4.0/24", 10, 1, 0.0, 1e4),
        ],
        matched_records=8510,
        excluded_single_syn=600,
        unmatched_port853=40,
    )


class TestFigure11:
    def test_series_sorted_by_month(self, traffic_report):
        series = figures.figure11_series(traffic_report)
        assert series["cloudflare"] == [("2018-07", 4674),
                                        ("2018-12", 7318)]

    def test_growth_matches_paper_number(self, traffic_report):
        growth = traffic_report.growth("cloudflare", "2018-07", "2018-12")
        assert growth == pytest.approx(0.5657, abs=0.001)

    def test_ratio(self, traffic_report):
        ratio = traffic_report.dot_to_do53_ratio("cloudflare")
        assert ratio == pytest.approx(5_000_000 / 11_992, rel=0.01)


class TestFigure12:
    def test_points_share_and_days(self, traffic_report):
        points = figures.figure12_points(traffic_report)
        assert len(points) == 4
        shares = [share for share, _, _ in points]
        assert sum(shares) == pytest.approx(1.0)
        biggest = max(points, key=lambda point: point[0])
        assert biggest[1] == 120  # the most active block is long-lived

    def test_top_share(self, traffic_report):
        assert traffic_report.top_share(1) == pytest.approx(5000 / 8510)
        assert traffic_report.top_share(10) == pytest.approx(1.0)

    def test_short_lived_stats(self, traffic_report):
        blocks, traffic = traffic_report.short_lived_stats()
        assert blocks == pytest.approx(0.5)
        assert traffic == pytest.approx(510 / 8510)


class TestFigure13:
    def test_series_passthrough(self):
        report = DohUsageReport(
            candidates=["a.example", "b.example"],
            popular=["a.example"],
            monthly_series={"a.example": {"2018-09": 200,
                                          "2019-03": 1915}},
            totals={"a.example": 12_000, "b.example": 50},
        )
        series = figures.figure13_series(report)
        assert series["a.example"][0] == ("2018-09", 200)
        assert report.growth("a.example", "2018-09", "2019-03") == (
            pytest.approx(9.575))
        assert report.growth("b.example", "2018-09", "2019-03") == 0.0
        assert report.dominant_domain() == "a.example"
