"""Tests for the table/figure builders and text rendering."""

import pytest

from repro.analysis import figures, tables
from repro.analysis.textfmt import format_percent, render_table
from repro.core.scan import ScanCampaign


@pytest.fixture(scope="module")
def world():
    from tests.conftest import tiny_config
    from repro.world.scenario import build_scenario
    return build_scenario(tiny_config(seed=31))


@pytest.fixture(scope="module")
def campaign(world):
    return ScanCampaign(world).run(rounds=3)


class TestTextFmt:
    def test_render_alignment(self):
        text = render_table(["A", "Long header"],
                            [["x", 1], ["longer", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "2.50" in lines[4]

    def test_format_percent(self):
        assert format_percent(0.1646) == "16.46%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_extra_columns_tolerated(self):
        text = render_table(["A"], [["x", "extra"]])
        assert "extra" in text


class TestTableBuilders:
    def test_table1_rows(self):
        rows = tables.table1_rows()
        assert len(rows) == 10
        categories = {category for category, _, _ in rows}
        assert "Maturity" in categories

    def test_table1_text_contains_symbols(self):
        text = tables.table1_text()
        assert "●" in text and "○" in text

    def test_table2(self, campaign):
        rows = tables.table2_rows(campaign)
        assert len(rows) == 10
        codes = [code for code, _, _, _ in rows]
        assert "IE" in codes and "CN" in codes
        text = tables.table2_text(campaign)
        assert "Growth" in text

    def test_table8_covers_all_categories(self):
        rows = tables.table8_rows()
        categories = {row[0] for row in rows}
        assert len(categories) == 5
        text = tables.table8_text()
        assert "Cloudflare" in text

    def test_table7_formats_overheads(self):
        from repro.core.client.performance import NoReuseResult
        results = [NoReuseResult("controlled-US", 272.0, 349.0, 361.0)]
        rows = tables.table7_rows(results)
        assert rows[0][0] == "US"
        assert "(77ms)" in rows[0][2]


class TestFigureBuilders:
    def test_figure1_sorted(self):
        events = figures.figure1_timeline()
        years = [year for year, _, _ in events]
        assert years == sorted(years)
        assert any("RFC 7858" in text for _, _, text in events)

    def test_figure2_requests(self):
        rendered = figures.figure2_requests()
        assert rendered["GET"].startswith("GET /dns-query?dns=")
        assert "POST /dns-query" in rendered["POST"]

    def test_figure3_series(self, campaign):
        dates, series = figures.figure3_series(campaign, top_providers=4)
        assert len(dates) == 3
        assert "others" in series
        for values in series.values():
            assert len(values) == len(dates)
        totals = [sum(series[key][index] for key in series)
                  for index in range(len(dates))]
        assert totals == [len(r.resolvers) for r in campaign.rounds]

    def test_figure4_series(self, campaign):
        dates, providers, invalid, cdf = figures.figure4_series(campaign)
        assert len(dates) == len(providers) == len(invalid) == 3
        assert all(inv <= prov for inv, prov in zip(invalid, providers))
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_figure6(self, world):
        from repro.core.client import ProxyNetwork
        network = ProxyNetwork("ProxyRack", world.proxyrack())
        distribution = figures.figure6_distribution(network, top_n=5)
        assert len(distribution) == 5
        counts = [count for _, count in distribution]
        assert counts == sorted(counts, reverse=True)

    def test_series_text(self):
        text = figures.series_text("T", {"a": [("2018-07", 1),
                                               ("2018-08", 2)]})
        assert "2018-07" in text and "2018-08" in text
