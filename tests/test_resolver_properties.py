"""Property-based tests for resolver components."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dnswire import DnsName, Rcode, ResourceRecord, RRType, make_query
from repro.dnswire.zone import Zone
from repro.resolvers import DnsCache

tokens = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                 min_size=1, max_size=24)
ttls = st.integers(1, 86_400)
times = st.floats(min_value=0.0, max_value=1e6)


def make_wildcard_zone() -> Zone:
    origin = DnsName.from_text("probe.prop.example.")
    zone = Zone(origin)
    zone.add(ResourceRecord.a(origin.child("*"), "198.51.100.53"))
    return zone


@given(token=tokens)
def test_wildcard_answers_any_single_label(token):
    zone = make_wildcard_zone()
    name = zone.origin.child(token)
    result = zone.lookup(name, RRType.A)
    assert result.rcode == Rcode.NOERROR
    assert result.records[0].name == name
    assert result.records[0].rdata.address == "198.51.100.53"


@given(token=tokens, ttl=ttls, put_at=times,
       delta=st.floats(min_value=0.0, max_value=86_400.0))
@settings(suppress_health_check=[HealthCheck.filter_too_much])
def test_cache_hit_iff_within_ttl(token, ttl, put_at, delta):
    cache = DnsCache()
    name = DnsName.from_text(f"{token}.cache.example.")
    record = ResourceRecord.a(name, "192.0.2.1", ttl=ttl)
    cache.put(name, RRType.A, (record,), Rcode.NOERROR, now=put_at)
    hit = cache.get(name, RRType.A, now=put_at + delta)
    if delta < ttl:
        assert hit is not None
    else:
        assert hit is None


@given(token=tokens)
@settings(max_examples=30,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_doh_get_post_equivalence(token, mini_world, rng, trust):
    """GET and POST DoH encodings must yield identical answers."""
    from repro.doe import DohClient, DohMethod
    from repro.httpsim.uri import UriTemplate

    template = UriTemplate(
        f"https://{mini_world['hostname']}/dns-query{{?dns}}")
    name = DnsName.from_text(f"{token}.example.com")
    mini_world["universe"].host_a(name.to_display(), "192.0.2.200")
    answers = {}
    for method in (DohMethod.GET, DohMethod.POST):
        client = DohClient(mini_world["network"],
                           rng.fork(f"{method.value}-{token}"),
                           trust["store"],
                           bootstrap=mini_world["universe"].resolve_public,
                           method=method)
        result = client.query(mini_world["env"], template,
                              make_query(name, msg_id=7))
        assert result.ok
        answers[method] = result.addresses()
    assert answers[DohMethod.GET] == answers[DohMethod.POST]
