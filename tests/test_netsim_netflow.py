"""Tests for NetFlow collection with packet sampling."""

import pytest

from repro.netsim import FlowRecord, NetFlowCollector, SeededRng, TcpFlags
from repro.netsim.netflow import PacketizedFlow


def flow(packets: int = 1000, handshake: bool = True) -> PacketizedFlow:
    return PacketizedFlow(
        src_ip="115.48.3.77", dst_ip="1.1.1.1", src_port=40000,
        dst_port=853, protocol="tcp", data_packets=packets,
        avg_packet_octets=120, start_ts=1000.0, duration_s=5.0,
        completed_handshake=handshake)


class TestSampling:
    def test_full_sampling_records_every_flow(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(1, "nf"))
        record = collector.observe(flow(10))
        assert record is not None
        # 1 SYN + 3 control + 10 data packets.
        assert record.packets == 14

    def test_sparse_sampling_misses_small_flows(self):
        collector = NetFlowCollector(sampling_rate=1 / 3000.0,
                                     rng=SeededRng(2, "nf"))
        emitted = collector.observe_all(flow(3) for _ in range(300))
        # E[record] = 300 * 7/3000 = 0.7; seeing >20 would mean sampling
        # is broken.
        assert emitted < 20

    def test_sampling_rate_statistics(self):
        collector = NetFlowCollector(sampling_rate=0.001,
                                     rng=SeededRng(3, "nf"))
        record = collector.observe(flow(1_000_000))
        assert record is not None
        assert record.packets == pytest.approx(1000, rel=0.3)

    def test_bad_sampling_rate_rejected(self):
        with pytest.raises(ValueError):
            NetFlowCollector(sampling_rate=0.0)
        with pytest.raises(ValueError):
            NetFlowCollector(sampling_rate=1.5)

    def test_flag_union_includes_data_flags(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(4, "nf"))
        record = collector.observe(flow(5))
        assert record.tcp_flags & TcpFlags.SYN
        assert record.tcp_flags & TcpFlags.PSH

    def test_incomplete_handshake_can_be_single_syn(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(5, "nf"))
        record = collector.observe(flow(0, handshake=False))
        assert record is not None
        assert record.is_single_syn()

    def test_octets_proportional_to_packets(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(6, "nf"))
        record = collector.observe(flow(10))
        assert record.octets == record.packets * 120


class TestRecords:
    def test_anonymization_truncates_to_slash24(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(7, "nf"))
        collector.observe(flow(10))
        exported = collector.export(anonymize=True)
        assert exported[0].src_ip == "115.48.3.0"

    def test_raw_export_keeps_address(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(8, "nf"))
        collector.observe(flow(10))
        assert collector.export(anonymize=False)[0].src_ip == "115.48.3.77"

    def test_src_slash24(self):
        record = FlowRecord("10.20.30.40", "1.1.1.1", 1, 853, "tcp",
                            1, 100, TcpFlags.SYN, 0.0, 1.0)
        assert record.src_slash24() == "10.20.30.0/24"

    def test_single_syn_detection(self):
        syn_only = FlowRecord("1.2.3.4", "1.1.1.1", 1, 853, "tcp", 1, 60,
                              TcpFlags.SYN, 0.0, 0.0)
        with_ack = FlowRecord("1.2.3.4", "1.1.1.1", 1, 853, "tcp", 2, 200,
                              TcpFlags.SYN | TcpFlags.ACK, 0.0, 0.0)
        assert syn_only.is_single_syn()
        assert not with_ack.is_single_syn()

    def test_flag_text(self):
        assert TcpFlags.to_text(TcpFlags.SYN | TcpFlags.ACK) == "SYN+ACK"
        assert TcpFlags.to_text(0) == "none"

    def test_clear(self):
        collector = NetFlowCollector(sampling_rate=1.0,
                                     rng=SeededRng(9, "nf"))
        collector.observe(flow(10))
        collector.clear()
        assert len(collector) == 0
