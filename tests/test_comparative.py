"""Tests for the Table 1 grading engine and protocol metadata."""

import pytest

from repro.core.comparative import (
    CRITERIA,
    Grade,
    PROTOCOL_ORDER,
    build_comparison_table,
    maturity_score,
)
from repro.doe.metadata import (
    IMPLEMENTATIONS,
    PROTOCOLS,
    implementations_by_category,
    support_count,
)


class TestGrading:
    @pytest.fixture(scope="class")
    def table(self):
        return {(row.category, row.criterion): row.grades
                for row in build_comparison_table()}

    def test_ten_criteria_five_categories(self):
        rows = build_comparison_table()
        assert len(rows) == 10
        assert len({row.category for row in rows}) == 5

    def test_every_protocol_graded_everywhere(self, table):
        for grades in table.values():
            assert set(grades) == set(PROTOCOL_ORDER)

    def test_dot_doh_standardized(self, table):
        grades = table[("Maturity", "Standardized by IETF")]
        assert grades["dot"] is Grade.SATISFYING
        assert grades["doh"] is Grade.SATISFYING
        assert grades["dnscrypt"] is Grade.NOT_SATISFYING
        assert grades["doq"] is Grade.NOT_SATISFYING

    def test_doh_hides_in_https_traffic(self, table):
        grades = table[("Security", "Resists DNS traffic analysis")]
        assert grades["doh"] is Grade.SATISFYING
        assert grades["dot"] is Grade.PARTIAL  # dedicated port, padded

    def test_doh_has_no_fallback(self, table):
        grades = table[("Protocol Design", "Provides fallback mechanism")]
        assert grades["doh"] is Grade.NOT_SATISFYING
        assert grades["dot"] is Grade.SATISFYING

    def test_doh_uses_second_app_layer(self, table):
        grades = table[("Protocol Design",
                        "Stays on the DNS application layer")]
        assert grades["doh"] is Grade.NOT_SATISFYING
        assert grades["dot"] is Grade.SATISFYING

    def test_dnscrypt_not_standard_tls(self, table):
        grades = table[("Security", "Uses standard TLS")]
        assert grades["dnscrypt"] is Grade.NOT_SATISFYING
        assert grades["dot"] is Grade.SATISFYING

    def test_unimplemented_protocols_lack_support(self, table):
        grades = table[("Maturity", "Extensively supported by resolvers")]
        assert grades["dodtls"] is Grade.NOT_SATISFYING
        assert grades["doq"] is Grade.NOT_SATISFYING
        assert grades["dnscrypt"] is Grade.PARTIAL

    def test_amortizable_latency_is_partial(self, table):
        grades = table[("Usability", "Minor latency above DNS-over-UDP")]
        assert grades["dot"] is Grade.PARTIAL
        assert grades["doq"] is Grade.SATISFYING

    def test_dot_and_doh_most_mature(self):
        scores = {key: maturity_score(key) for key in PROTOCOL_ORDER}
        ranked = sorted(scores, key=lambda key: -scores[key])
        assert set(ranked[:2]) == {"dot", "doh"}

    def test_grade_symbols(self):
        assert Grade.SATISFYING.symbol == "●"
        assert Grade.PARTIAL.symbol == "◐"
        assert Grade.NOT_SATISFYING.symbol == "○"


class TestMetadata:
    def test_five_protocols(self):
        assert set(PROTOCOLS) == {"dot", "doh", "dodtls", "doq", "dnscrypt"}

    def test_ports_match_standards(self):
        assert PROTOCOLS["dot"].port == 853
        assert PROTOCOLS["doh"].port == 443
        assert PROTOCOLS["doq"].port == 784
        assert PROTOCOLS["dnscrypt"].port == 443

    def test_rfc_numbers(self):
        assert PROTOCOLS["dot"].rfc == "RFC 7858"
        assert PROTOCOLS["doh"].rfc == "RFC 8484"
        assert PROTOCOLS["dnscrypt"].rfc is None

    def test_survey_categories(self):
        assert len(implementations_by_category("public-dns")) >= 15
        assert len(implementations_by_category("browser")) >= 4
        assert len(implementations_by_category("os")) == 4

    def test_dot_support_wider_than_doh_in_survey(self):
        # DoT is the server-software favourite; DoH needs extra stacks.
        assert support_count("dot") >= support_count("doh")

    def test_big_three_support_both(self):
        for name in ("Google", "Cloudflare", "Quad9"):
            impl = next(impl for impl in IMPLEMENTATIONS
                        if impl.name == name)
            assert impl.dot and impl.doh

    def test_firefox_supports_doh_since_62(self):
        firefox = next(impl for impl in IMPLEMENTATIONS
                       if impl.name == "Firefox")
        assert firefox.doh and not firefox.dot
        assert "62" in firefox.since

    def test_android_dot_since_9(self):
        android = next(impl for impl in IMPLEMENTATIONS
                       if impl.name == "Android")
        assert android.dot
        assert "9" in android.since
