"""Hypothesis properties pinning the shard-plan and merge laws.

Two algebraic facts make sharded execution equivalent to serial
execution (see DESIGN.md):

* :class:`ShardPlan` partitions losslessly — shards are disjoint,
  covering, contiguous, balanced, and a pure function of
  (item_count, shard_count);
* :meth:`MetricsRegistry.merge` is associative and commutative with
  the empty registry as identity, so fragments can be folded in any
  grouping without changing a byte of the snapshot.

Strategies draw integer-valued observations: the laws are about merge
order, and float addition is only exactly associative on integers.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import (
    DEFAULT_SHARDS,
    ParallelConfig,
    ShardPlan,
)
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.parallel


# -- shard plans -------------------------------------------------------------


ITEM_COUNTS = st.integers(min_value=0, max_value=400)
SHARD_COUNTS = st.integers(min_value=1, max_value=64)


class TestShardPlan:
    @settings(deadline=None)
    @given(ITEM_COUNTS, SHARD_COUNTS)
    def test_partition_is_lossless(self, item_count, shard_count):
        """Disjoint, covering, order-preserving, balanced."""
        plan = ShardPlan.for_items(item_count, shard_count)
        items = list(range(item_count))
        pieces = [list(shard.slice(items)) for shard in plan]
        # Concatenating the slices in shard order reproduces the input
        # exactly — which implies disjointness and full coverage.
        assert sum(pieces, []) == items
        sizes = [len(piece) for piece in pieces]
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    @settings(deadline=None)
    @given(ITEM_COUNTS, SHARD_COUNTS)
    def test_plan_is_stable(self, item_count, shard_count):
        """The same (items, shards) pair always yields the same plan."""
        first = ShardPlan.for_items(item_count, shard_count)
        second = ShardPlan.for_items(item_count, shard_count)
        assert first == second
        assert [shard.rng_path for shard in first] == [
            f"shard/{index}" for index in range(len(first))]

    @settings(deadline=None)
    @given(ITEM_COUNTS, SHARD_COUNTS)
    def test_shard_count_clamped(self, item_count, shard_count):
        plan = ShardPlan.for_items(item_count, shard_count)
        if item_count == 0:
            assert len(plan) == 0
        else:
            assert len(plan) == max(1, min(shard_count, item_count))
        assert [shard.index for shard in plan] == list(range(len(plan)))
        assert all(shard.shard_total == plan.shard_count for shard in plan)

    @settings(deadline=None)
    @given(ITEM_COUNTS, SHARD_COUNTS,
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=32))
    def test_plan_independent_of_workers(self, item_count, shard_count,
                                         workers_a, workers_b):
        """Workers are scheduling only — they never reshape the plan."""
        plan_a = ParallelConfig(workers=workers_a, shards=shard_count)
        plan_b = ParallelConfig(workers=workers_b, shards=shard_count)
        assert plan_a.plan(item_count) == plan_b.plan(item_count)

    @settings(deadline=None)
    @given(st.integers(min_value=DEFAULT_SHARDS, max_value=400))
    def test_default_shard_count(self, item_count):
        assert len(ShardPlan.for_items(item_count)) == DEFAULT_SHARDS

    def test_empty_input_yields_empty_plan(self):
        plan = ShardPlan.for_items(0, 16)
        assert len(plan) == 0
        assert plan.shards == ()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(item_count=-1, shard_count=2)
        with pytest.raises(ValueError):
            ShardPlan(item_count=4, shard_count=0)


# -- registry merge laws ------------------------------------------------------


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("counter"), st.sampled_from("abc"),
                  st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("gauge"), st.sampled_from("abc"),
                  st.integers(min_value=-40, max_value=40)),
        st.tuples(st.just("histogram"), st.sampled_from("abc"),
                  st.integers(min_value=-40, max_value=40)),
    ),
    max_size=24,
)

_FRAGMENT = st.tuples(_OPS, st.integers(min_value=0, max_value=7))


def _build(fragment) -> MetricsRegistry:
    """Replay an op list into a registry stamped with a shard origin."""
    ops, origin = fragment
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "counter":
            registry.inc(f"{kind}.{name}", value, shard="x")
        elif kind == "gauge":
            registry.set_gauge(f"{kind}.{name}", value)
        else:
            registry.observe(f"{kind}.{name}", value)
    registry.stamp_origin(origin)
    return registry


def _state(registry: MetricsRegistry):
    """Full observable state, including gauge merge origins."""
    state = []
    for metric in registry:
        entry = [metric.name, metric.labels, metric.kind]
        if metric.kind == "counter":
            entry.append(metric.value)
        elif metric.kind == "gauge":
            entry.extend((metric.value, metric.origin))
        else:
            entry.extend((metric.count, metric.sum, metric.min, metric.max,
                          tuple(metric.buckets())))
        state.append(tuple(entry))
    return state


def _merged(*fragments) -> MetricsRegistry:
    registries = [copy.deepcopy(fragment) for fragment in fragments]
    target = registries[0]
    for other in registries[1:]:
        target.merge(other)
    return target


class TestMergeLaws:
    @settings(deadline=None)
    @given(_FRAGMENT, _FRAGMENT)
    def test_commutative(self, fragment_a, fragment_b):
        a, b = _build(fragment_a), _build(fragment_b)
        assert _state(_merged(a, b)) == _state(_merged(b, a))

    @settings(deadline=None)
    @given(_FRAGMENT, _FRAGMENT, _FRAGMENT)
    def test_associative(self, fragment_a, fragment_b, fragment_c):
        a, b, c = (_build(fragment_a), _build(fragment_b),
                   _build(fragment_c))
        left = _merged(_merged(a, b), c)
        right = _merged(a, _merged(b, c))
        assert _state(left) == _state(right)

    @settings(deadline=None)
    @given(_FRAGMENT)
    def test_empty_registry_is_identity(self, fragment):
        registry = _build(fragment)
        assert _state(_merged(registry, MetricsRegistry())) == \
            _state(registry)
        assert _state(_merged(MetricsRegistry(), registry)) == \
            _state(registry)

    def test_kind_mismatch_rejected(self):
        counters = MetricsRegistry()
        counters.inc("series.a")
        gauges = MetricsRegistry()
        gauges.set_gauge("series.a", 1.0)
        with pytest.raises(TypeError):
            counters.merge(gauges)

    def test_gauge_last_write_by_shard_index(self):
        """The highest shard index wins, not the latest merge call."""
        low = MetricsRegistry()
        low.set_gauge("g", 111.0)
        low.stamp_origin(0)
        high = MetricsRegistry()
        high.set_gauge("g", 5.0)
        high.stamp_origin(3)
        merged = _merged(high, low)
        assert merged.get("g").value == 5.0
        assert merged.get("g").origin == 3
