"""The telemetry subsystem: metrics, spans, exporters, manifests."""

import json
import math

import pytest

from repro import telemetry
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunManifest,
    Tracer,
)
from repro.telemetry.export import (
    snapshot,
    span_tree_text,
    to_json,
    to_prometheus,
    to_table,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("scan.probes_sent")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.inc("dot.handshake.fail", kind="tls")
        registry.inc("dot.handshake.fail", 2, kind="timeout")
        assert registry.value("dot.handshake.fail", kind="tls") == 1
        assert registry.value("dot.handshake.fail", kind="timeout") == 2
        assert registry.total("dot.handshake.fail") == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("m", a="1", b="2")
        registry.inc("m", b="2", a="1")
        assert registry.value("m", b="2", a="1") == 2
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("resolver.cache.size")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (5.0, 1.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 15.0
        assert histogram.min == 1.0
        assert histogram.max == 9.0
        assert histogram.mean == 5.0

    def test_quantiles_on_uniform_distribution(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in range(1, 1001):
            histogram.observe(float(value))
        # Log buckets bound the relative error by sqrt(growth) - 1
        # (~4.4%); allow 8% for bucket-edge effects.
        for q in (0.50, 0.90, 0.95, 0.99):
            expected = q * 1000
            estimate = histogram.quantile(q)
            assert abs(estimate - expected) / expected < 0.08, (q, estimate)

    def test_quantiles_on_lognormal_distribution(self):
        from repro.netsim.rand import SeededRng
        rng = SeededRng(7, "telemetry-test")
        samples = sorted(rng.lognormal(3.0, 0.8) for _ in range(5000))
        histogram = MetricsRegistry().histogram("latency")
        for value in samples:
            histogram.observe(value)
        for q in (0.5, 0.95, 0.99):
            expected = samples[int(q * len(samples)) - 1]
            estimate = histogram.quantile(q)
            assert abs(estimate - expected) / expected < 0.10, (q, estimate)

    def test_extreme_quantiles_are_exact(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (2.0, 50.0, 400.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 2.0
        assert histogram.quantile(1.0) == 400.0

    def test_zero_and_negative_observations(self):
        histogram = MetricsRegistry().histogram("overhead_ms")
        for value in (-30.0, -5.0, 0.0, 5.0, 30.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == -30.0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.1) < 0.0

    def test_empty_histogram_has_no_quantiles(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.quantile(0.5) is None
        assert histogram.as_dict() == {"type": "histogram", "count": 0,
                                       "sum": 0.0}

    def test_quantile_range_validated(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_state_independent_of_arrival_order(self):
        values = [float(v) for v in range(1, 200)]
        forward = MetricsRegistry().histogram("latency")
        backward = MetricsRegistry().histogram("latency")
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.as_dict() == backward.as_dict()
        assert forward.buckets() == backward.buckets()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("campaign"):
            with tracer.span("round", round=0):
                with tracer.span("sweep"):
                    pass
            with tracer.span("round", round=1):
                pass
        assert len(tracer.roots) == 1
        campaign = tracer.roots[0]
        assert [child.name for child in campaign.children] == ["round",
                                                               "round"]
        assert campaign.children[0].children[0].name == "sweep"
        assert tracer.find("sweep") is campaign.children[0].children[0]
        assert tracer.active is None

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner = tracer.find("inner")
        assert inner.status == "error"
        assert "boom" in inner.error
        assert tracer.find("outer").status == "error"
        # The stack unwound fully: new spans are roots again.
        with tracer.span("next"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "next"]

    def test_durations_recorded_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("campaign"):
            pass
        histogram = registry.get("span.campaign", status="ok")
        assert histogram is not None
        assert histogram.count == 1

    def test_sim_clock_durations(self):
        from repro.netsim.clock import SimClock
        clock = SimClock(100.0)
        tracer = Tracer(sim_clock=clock.now)
        with tracer.span("work") as span:
            clock.advance(2.5)
        assert span.sim_started_at == 100.0
        assert span.sim_ms == pytest.approx(2.5)

    def test_deterministic_export_omits_wall_clock(self):
        tracer = Tracer()
        with tracer.span("work", round=3):
            pass
        deterministic = tracer.as_dict(deterministic=True)[0]
        assert "wall_ms" not in deterministic
        assert deterministic["attrs"] == {"round": "3"}
        full = tracer.as_dict(deterministic=False)[0]
        assert "wall_ms" in full

    def test_span_tree_text(self):
        tracer = Tracer()
        with tracer.span("campaign"):
            with tracer.span("sweep", port=853):
                pass
        text = span_tree_text(tracer)
        assert "campaign" in text
        assert "  sweep (port=853)" in text


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.inc("scan.probes_sent", 100)
        registry.inc("dot.handshake.ok", 90)
        registry.inc("dot.handshake.fail", 10, kind="tls")
        registry.set_gauge("scan.round.dot_resolvers", 1532, round="0")
        for value in range(1, 101):
            registry.observe("client.query.latency", float(value),
                             protocol="dot")
        return registry

    def test_json_round_trip(self):
        registry = self._populated()
        document = json.loads(to_json(registry))
        metrics = document["metrics"]
        assert metrics["scan.probes_sent"]["value"] == 100
        assert metrics["dot.handshake.fail{kind=tls}"]["value"] == 10
        histogram = metrics["client.query.latency{protocol=dot}"]
        assert histogram["count"] == 100
        for key in ("p50", "p90", "p95", "p99", "p999"):
            assert key in histogram
        # The tail ordering must hold: p99 <= p99.9 <= max.
        assert histogram["p99"] <= histogram["p999"] <= histogram["max"]

    def test_json_is_byte_identical_for_equal_state(self):
        first, second = self._populated(), self._populated()
        assert to_json(first) == to_json(second)

    def test_json_identical_across_label_insertion_order(self):
        first = MetricsRegistry()
        first.inc("m", a="1", b="2")
        second = MetricsRegistry()
        second.inc("m", b="2", a="1")
        assert to_json(first) == to_json(second)

    def test_prometheus_format(self):
        text = to_prometheus(self._populated())
        assert "# TYPE scan_probes_sent counter" in text
        assert "scan_probes_sent 100" in text
        assert 'dot_handshake_fail{kind="tls"} 10' in text
        assert "# TYPE client_query_latency summary" in text
        assert 'client_query_latency{protocol="dot",quantile="0.95"}' in text
        assert 'client_query_latency{protocol="dot",quantile="0.999"}' in text
        assert 'client_query_latency_count{protocol="dot"} 100' in text

    def test_table_contains_every_series(self):
        text = to_table(self._populated(), title="Telemetry")
        assert "Telemetry" in text
        assert "scan.probes_sent" in text
        assert "client.query.latency{protocol=dot}" in text
        assert "p95=" in text
        assert "p999=" in text

    def test_snapshot_includes_spans_and_manifest(self):
        registry = self._populated()
        tracer = Tracer(registry)
        with tracer.span("campaign"):
            pass
        document = snapshot(registry, tracer, {"seed": 7})
        assert document["manifest"] == {"seed": 7}
        assert document["spans"][0]["name"] == "campaign"


class TestDefaultRegistry:
    def test_reset_isolation(self):
        registry = telemetry.get_registry()
        registry.inc("test.leak")
        new_registry, new_tracer = telemetry.reset_registry()
        assert telemetry.get_registry() is new_registry
        assert telemetry.get_tracer() is new_tracer
        assert new_registry is not registry
        assert new_registry.value("test.leak") == 0.0
        assert new_tracer.registry is new_registry

    def test_set_sim_clock(self):
        from repro.netsim.clock import SimClock
        telemetry.reset_registry()
        clock = SimClock(5.0)
        telemetry.set_sim_clock(clock.now)
        with telemetry.get_tracer().span("work") as span:
            clock.advance(1.0)
        assert span.sim_ms == pytest.approx(1.0)
        telemetry.reset_registry()


class TestRunManifest:
    def test_collect_from_scenario_config(self):
        from repro.world.scenario import ScenarioConfig
        registry = MetricsRegistry()
        registry.inc("scan.probes_sent", 5, port="853")
        registry.inc("scan.probes_sent", 7, port="443")
        manifest = RunManifest.collect(ScenarioConfig(seed=99), registry,
                                       include_git=False)
        assert manifest.seed == 99
        assert manifest.scenario["scan_rounds"] == 10
        assert manifest.totals["scan.probes_sent"] == 12
        document = manifest.as_dict()
        assert document["seed"] == 99
        assert document["code_version"] == "unknown"

    def test_collect_from_dict(self):
        manifest = RunManifest.collect({"seed": 3, "scale": 0.01},
                                       include_git=False)
        assert manifest.seed == 3
        assert manifest.scenario["scale"] == 0.01

    def test_git_describe_never_raises(self):
        version = telemetry.git_describe()
        assert isinstance(version, str) and version


class TestCliTelemetry:
    """The `repro telemetry` command and --metrics-out plumbing."""

    def test_telemetry_command_prints_table_and_spans(self, capsys):
        from repro.cli import main
        assert main(["--scale", "0.004", "--seed", "7", "telemetry",
                     "--rounds", "1", "--endpoints", "2"]) == 0
        output = capsys.readouterr().out
        assert "scan.probes_sent" in output
        assert "dot.handshake.ok" in output
        assert "Span tree:" in output
        assert "campaign" in output
        assert "scan.sweep" in output
        assert "scan.probe" in output

    def test_metrics_out_snapshot_is_deterministic(self, tmp_path, capsys):
        from repro.cli import main
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        argv = ["--scale", "0.004", "--seed", "7", "telemetry",
                "--rounds", "1", "--endpoints", "2", "--format", "json"]
        main(["--metrics-out", str(first)] + argv)
        capsys.readouterr()
        main(["--metrics-out", str(second)] + argv)
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["manifest"]["seed"] == 7
        histograms = [m for m in document["metrics"].values()
                      if m["type"] == "histogram"]
        assert histograms and all("p99" in h for h in histograms)
        campaign = next(s for s in document["spans"]
                        if s["name"] == "campaign")
        names = {child["name"] for round_span in campaign["children"]
                 for child in round_span["children"]}
        assert "scan.sweep" in names
        assert "scan.probe" in names
