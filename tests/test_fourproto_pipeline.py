"""Differential pin for the four-protocol pipeline (ISSUE 9).

The contract: the four-protocol performance/reachability tables — DoQ
and DNSCrypt alongside Do53/DoT/DoH — are a pure function of the
scenario seed. World materialisation (eager vs lazy) and execution plan
(serial, workers 1 or 4 over the same shard plan) must never change a
byte of the rendered tables or a field of a single timing series.

``scripts/check.sh`` runs this module twice under different
``PYTHONHASHSEED`` values (like the chaos/parallel/procedural suites)
to prove none of it leans on hash ordering.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.analysis import tables
from repro.core.client.fourproto import (
    FOURPROTO_PROTOCOLS,
    FourProtoStudy,
    fourproto_targets,
)
from repro.core.client.reachability import platform_points
from repro.core.parallel import ParallelConfig
from repro.core.scan.dnscrypt_scan import DnscryptScanner
from repro.core.scan.doh_scan import DohDiscovery
from repro.core.scan.doq_scan import DoqScanner
from repro.doe.dnscrypt import (
    DNSCRYPT_PORT,
    CERT_QUERY_PREFIX,
    DnsCryptClient,
    ProviderKey,
    seal,
    unseal,
)
from repro.doe.doq import DOQ_PORT, DoqClient
from repro.dnswire.builder import make_query
from repro.dnswire.rdtypes import RRType
from repro.errors import WireFormatError
from repro.netsim.network import ClientEnvironment
from repro.netsim.rand import SeededRng
from repro.world.scenario import (
    SELF_BUILT_HOSTNAME,
    SELF_BUILT_IP,
    ScenarioConfig,
    build_scenario,
    dnscrypt_provider_key,
)
from tests.conftest import tiny_config

pytestmark = pytest.mark.fourproto

SEED = 977
SHARDS = 4
#: Down-sample the vantage population — enough endpoints to fill every
#: table cell, small enough to run five full batteries in the suite.
SAMPLE = 0.4


def fourproto_config(world_mode: str = "eager") -> ScenarioConfig:
    config = tiny_config(SEED)
    config.world_mode = world_mode
    return config


# -- golden artefacts ---------------------------------------------------------

#: name -> (world_mode, workers); workers None = the serial path.
_RUNS: Dict[str, Tuple[str, int]] = {
    "eager-serial": ("eager", None),
    "lazy-serial": ("lazy", None),
    "eager-w1": ("eager", 1),
    "lazy-w1": ("lazy", 1),
    "lazy-w4": ("lazy", 4),
}

_SNAPSHOTS: Dict[str, tuple] = {}


def snapshot(name: str) -> tuple:
    """Tables + every timing field + the fallback tally of one run."""
    if name in _SNAPSHOTS:
        return _SNAPSHOTS[name]
    world_mode, workers = _RUNS[name]
    telemetry.reset_registry()
    try:
        scenario = build_scenario(fourproto_config(world_mode))
        study = FourProtoStudy(scenario)
        if workers is None:
            report = study.run(
                platform_points(scenario, "proxyrack", SAMPLE))
        else:
            report = study.run_sharded(
                ParallelConfig(workers=workers, shards=SHARDS),
                platform="proxyrack", sample=SAMPLE)
        _SNAPSHOTS[name] = (
            tables.fourproto_table_text(report).encode(),
            tables.handshake_table_text(report).encode(),
            tuple(map(repr, report.timings)),
            report.fallbacks,
        )
    finally:
        telemetry.reset_registry()
    return _SNAPSHOTS[name]


class TestGoldenFourProto:
    def test_serial_tables_identical_across_eager_and_lazy(self):
        assert snapshot("eager-serial") == snapshot("lazy-serial")

    @pytest.mark.parametrize("name", ["lazy-w1", "lazy-w4"])
    def test_sharded_tables_identical_across_modes_and_workers(self, name):
        assert snapshot(name) == snapshot("eager-w1")

    def test_all_five_protocols_measured(self):
        timings = snapshot("eager-serial")[2]
        for protocol in FOURPROTO_PROTOCOLS:
            assert any(f"protocol='{protocol}'" in timing
                       for timing in timings), protocol

    def test_tables_carry_doq_and_dnscrypt_cells(self):
        table = snapshot("eager-serial")[0].decode()
        assert "doq" in table and "dnscrypt" in table
        quad9_doq = [line for line in table.splitlines()
                     if line.startswith("Quad9") and " doq " in line]
        assert quad9_doq and "n/a" not in quad9_doq[0]

    def test_handshake_breakdown_shows_cheap_resumption(self):
        """0-RTT reconnects skip the handshake exchange entirely, so the
        resumption penalty must be far below the cold 1-RTT cost."""
        handshake = snapshot("eager-serial")[1].decode()
        for line in handshake.splitlines():
            if not line.startswith(("Cloudflare", "Quad9", "Self-built")):
                continue
            fields = line.split()
            one_rtt, zero_rtt = float(fields[-3]), float(fields[-2])
            assert zero_rtt < one_rtt / 2.0, line


# -- fixtures for the property tests ------------------------------------------

@pytest.fixture(scope="module")
def fp_scenario():
    return build_scenario(fourproto_config())


@pytest.fixture(scope="module")
def fp_network(fp_scenario):
    return fp_scenario.client_network()


def _client_env(label: str, index: int) -> ClientEnvironment:
    return ClientEnvironment.in_country(
        f"{label}-{index}", f"203.0.113.{index % 200 + 1}", "US",
        SeededRng(4000 + index).fork(label))


# -- DoQ 0-RTT properties ------------------------------------------------------

class TestDoqZeroRtt:
    @settings(max_examples=12, deadline=None)
    @given(index=st.integers(0, 60),
           resolver=st.sampled_from(["1.1.1.1", "9.9.9.9", SELF_BUILT_IP]))
    def test_second_contact_resumes_at_zero_rtt(self, fp_scenario,
                                                fp_network, index,
                                                resolver):
        """First contact pays the 1-RTT handshake; any reconnect to a
        known resolver resumes with *no* handshake exchange at all."""
        env = _client_env("zrtt", index)
        client = DoqClient(fp_network, SeededRng(index).fork("doq"),
                           fp_scenario.trust_store)
        query = make_query(fp_scenario.probe_name(f"zrtt{index}"),
                           RRType.A, msg_id=index + 1)
        cold = client.query(env, resolver, query, reuse=True)
        assert cold.ok, cold.error
        assert not cold.reused_connection
        # Reconnect: the session is gone, the ticket is not.
        client.close_all()
        assert client._handshake(env, resolver, DOQ_PORT, 5.0) == 0.0
        warm = client.query(env, resolver, query, reuse=True)
        assert warm.ok, warm.error

    def test_fresh_client_always_pays_the_handshake(self, fp_scenario,
                                                    fp_network):
        env = _client_env("cold", 7)
        client = DoqClient(fp_network, SeededRng(7).fork("doq"),
                           fp_scenario.trust_store)
        assert client._handshake(env, "9.9.9.9", DOQ_PORT, 5.0) > 0.0


# -- DNSCrypt bootstrap properties ---------------------------------------------

provider_names = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789.-"),
    min_size=1, max_size=24)
key_texts = st.text(
    alphabet=st.sampled_from("ABCDEFabcdef0123456789"),
    min_size=1, max_size=32)


class TestDnscryptBootstrap:
    @given(name=provider_names, key=key_texts,
           wire=st.binary(min_size=0, max_size=128))
    def test_seal_unseal_round_trip(self, name, key, wire):
        provider = ProviderKey(name, key)
        assert unseal(provider, seal(provider, wire)) == wire

    @given(name=provider_names, key=key_texts, other=key_texts,
           wire=st.binary(min_size=1, max_size=64))
    def test_wrong_key_is_rejected(self, name, key, other, wire):
        if key == other:
            return
        sealed = seal(ProviderKey(name, key), wire)
        with pytest.raises(WireFormatError):
            unseal(ProviderKey(name, other), sealed)

    @given(name=provider_names, key=key_texts)
    def test_certificate_txt_round_trip(self, name, key):
        provider = ProviderKey(name, key)
        assert ProviderKey.from_txt(provider.to_txt()) == provider

    @given(cn=provider_names)
    def test_provider_key_derivation_is_pure(self, cn):
        """Layout-time key placement must never consume randomness."""
        first = dnscrypt_provider_key(cn)
        assert first == dnscrypt_provider_key(cn)
        assert first.provider_name == f"{CERT_QUERY_PREFIX}.{cn}"

    @settings(max_examples=8, deadline=None)
    @given(index=st.integers(0, 40))
    def test_bootstrap_fetches_the_placed_key(self, fp_scenario,
                                              fp_network, index):
        """The TXT bootstrap returns exactly the key the layout derived
        for the self-built resolver, and it unlocks real service."""
        env = _client_env("dcboot", index)
        client = DnsCryptClient(fp_network, SeededRng(index).fork("dc"))
        fetched = client.fetch_certificate(env, SELF_BUILT_IP)
        assert isinstance(fetched, tuple), getattr(fetched, "error", "")
        key, elapsed = fetched
        assert key == dnscrypt_provider_key(SELF_BUILT_HOSTNAME)
        assert elapsed > 0.0
        query = make_query(fp_scenario.probe_name(f"dc{index}"),
                           RRType.A, msg_id=index + 1)
        result = client.query(env, SELF_BUILT_IP, key, query)
        assert result.ok, result.error
        assert fp_scenario.expected_probe_answer()[0] in \
            result.addresses()


# -- scanners (tentpole: discovery legs) ---------------------------------------

class TestProtocolScanners:
    def test_doq_sweep_finds_exactly_the_placed_services(self, fp_scenario,
                                                         fp_network):
        scanner = DoqScanner(
            fp_network, SeededRng(SEED).fork("doq-scan"),
            fp_scenario.trust_store, fp_scenario.probe_origin,
            fp_scenario.expected_probe_answer())
        records, stats = scanner.discover()
        assert {record.address for record in records} == \
            fp_scenario.doq_addresses()
        assert stats.doq_resolvers == stats.swept == len(records)
        assert all(record.is_doq and record.answer_correct
                   for record in records)

    def test_dnscrypt_sweep_bootstraps_every_placed_service(
            self, fp_scenario, fp_network):
        scanner = DnscryptScanner(
            fp_network, SeededRng(SEED).fork("dnscrypt-scan"),
            fp_scenario.probe_origin,
            fp_scenario.expected_probe_answer())
        records, stats = scanner.discover()
        assert {record.address for record in records} == \
            fp_scenario.dnscrypt_addresses()
        assert stats.dnscrypt_resolvers == len(records)
        assert all(record.is_dnscrypt and record.provider_name.startswith(
            CERT_QUERY_PREFIX) for record in records)

    def test_doq_udp_sweep_is_disjoint_from_dot_tcp(self, fp_scenario,
                                                    fp_network):
        """Port 784 is UDP-only: the TCP view must not leak DoQ hosts."""
        assert not any(True for _ in fp_network.open_tcp_addresses(
            DOQ_PORT, 0, None))
        assert fp_scenario.doq_addresses()


# -- E-DoH probe efficiency (satellite 4) --------------------------------------

def _doh_discovery(scenario):
    return DohDiscovery(
        scenario.client_network(),
        scenario.rng.fork("campaign").fork("doh"),
        scenario.trust_store, scenario.bootstrap, scenario.probe_origin,
        scenario.expected_probe_answer(),
        public_list=scenario.public_doh_list(),
        retry_policy=scenario.retry_policy(op="doh.probe"))


class TestEdohEfficiency:
    @pytest.fixture(scope="class")
    def both_modes(self):
        """Naive and E-DoH runs over identical corpora, isolated
        scenario instances (probing fewer URLs shifts rng streams)."""
        naive_scenario = build_scenario(fourproto_config())
        efficient_scenario = build_scenario(fourproto_config())
        naive = _doh_discovery(naive_scenario)
        efficient = _doh_discovery(efficient_scenario)
        naive_records = naive.discover(naive_scenario.url_dataset())
        efficient_records, stats = efficient.discover_efficient(
            efficient_scenario.url_dataset())
        return naive_records, efficient_records, stats

    def test_confirmed_endpoint_sets_identical(self, both_modes):
        naive_records, efficient_records, _ = both_modes
        naive_hosts = {record.hostname for record in naive_records
                       if record.is_doh}
        efficient_hosts = {record.hostname for record in efficient_records
                           if record.is_doh}
        assert naive_hosts and efficient_hosts == naive_hosts

    def test_strictly_fewer_probes_than_naive(self, both_modes):
        naive_records, _, stats = both_modes
        assert stats.probed < len(naive_records)
        assert stats.candidates == len(naive_records)
        assert stats.skipped_unresolvable + stats.skipped_early_abort > 0

    def test_probes_per_confirmed_beats_naive(self, both_modes):
        naive_records, _, stats = both_modes
        confirmed = sum(1 for record in naive_records if record.is_doh)
        assert stats.confirmed == confirmed > 0
        assert stats.probes_per_confirmed < len(naive_records) / confirmed

    def test_accounting_adds_up(self, both_modes):
        _, efficient_records, stats = both_modes
        assert stats.probed == len(efficient_records)
        assert (stats.probed + stats.skipped_unresolvable
                + stats.skipped_early_abort) == stats.candidates


# -- target plumbing -----------------------------------------------------------

class TestFourProtoTargets:
    def test_targets_follow_provider_placement(self, fp_scenario):
        targets = {spec.name: spec for spec in
                   fourproto_targets(fp_scenario)}
        assert targets["Cloudflare"].doq_ip == "1.1.1.1"
        assert targets["Cloudflare"].dnscrypt_ip is None
        assert targets["Google"].doq_ip is None
        assert targets["Quad9"].doq_ip == "9.9.9.9"
        assert targets["Quad9"].dnscrypt_ip == "9.9.9.9"
        assert targets["Self-built"].doq_ip == SELF_BUILT_IP
        assert targets["Self-built"].dnscrypt_ip == SELF_BUILT_IP
        for spec in targets.values():
            if spec.doq_ip is not None:
                assert spec.doq_ip in fp_scenario.doq_addresses()
            if spec.dnscrypt_ip is not None:
                assert spec.dnscrypt_ip in \
                    fp_scenario.dnscrypt_addresses()

    def test_dnscrypt_port_is_udp_443(self):
        assert DNSCRYPT_PORT == 443
        assert DOQ_PORT == 784
