"""Tests for the error hierarchy and small shared utilities."""

import pytest

from repro import ExperimentSuite, ScenarioConfig, build_scenario
from repro.errors import (
    CertificateError,
    ConnectionRefused,
    DnsLookupError,
    HttpError,
    NameError_,
    ReproError,
    TimeoutError_,
    TlsError,
    TransportError,
    WireFormatError,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for error_type in (WireFormatError, NameError_, TransportError,
                           ConnectionRefused, TimeoutError_, TlsError,
                           CertificateError, HttpError, DnsLookupError):
            assert issubclass(error_type, ReproError), error_type

    def test_name_error_is_wire_format_error(self):
        assert issubclass(NameError_, WireFormatError)

    def test_transport_subtypes(self):
        assert issubclass(ConnectionRefused, TransportError)
        assert issubclass(TimeoutError_, TransportError)

    def test_certificate_error_carries_reasons(self):
        error = CertificateError("bad", reasons=("expired",))
        assert error.reasons == ("expired",)

    def test_http_error_carries_status(self):
        assert HttpError("nope", status=404).status == 404

    def test_dns_lookup_error_carries_rcode(self):
        assert DnsLookupError("servfail", rcode=2).rcode == 2

    def test_builtin_names_not_shadowed(self):
        # The trailing-underscore convention must keep Python's built-ins
        # reachable.
        assert TimeoutError_ is not TimeoutError
        assert NameError_ is not NameError


class TestTopLevelApi:
    def test_package_exports(self):
        import repro
        assert set(repro.__all__) >= {"ExperimentSuite", "Scenario",
                                      "ScenarioConfig", "build_scenario"}

    def test_version_is_semver(self):
        import repro
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_suite_client_sample(self):
        from tests.conftest import tiny_config
        suite = ExperimentSuite(scenario=build_scenario(tiny_config()),
                                client_sample=0.5)
        full = len(suite.scenario.proxyrack())
        assert len(suite.proxyrack_network()) == round(full * 0.5)

    def test_scenario_config_scaled(self):
        config = ScenarioConfig(vantage_scale=0.1)
        assert config.scaled(100) == 10
        assert config.scaled(3) == 1  # never drops to zero

    def test_small_config_is_small(self):
        small = ScenarioConfig.small()
        assert small.scaled(29_622) < 1_000
