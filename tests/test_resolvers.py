"""Tests for the resolver stack: cache, universe, backends, frontends."""

import pytest

from repro.dnswire import DnsName, Rcode, ResourceRecord, RRType, make_query
from repro.doe import DnsCryptClient, DoqClient
from repro.doe.dnscrypt import DnsCryptService, ProviderKey, seal, unseal
from repro.doe.doq import DoqService
from repro.errors import WireFormatError
from repro.netsim import country
from repro.netsim.host import Host, TlsConfig
from repro.resolvers import (
    DnsCache,
    DnsUniverse,
    FixedAnswerBackend,
    FlakyForwardingBackend,
    RecursiveBackend,
    ResolutionContext,
    SpoofingBackend,
)
from repro.tlssim import make_chain

WWW = DnsName.from_text("www.example.com")


def ctx(timestamp=0.0, country_code=None):
    return ResolutionContext(client_address="5.5.5.5",
                             resolver_address="7.7.7.7",
                             timestamp=timestamp,
                             client_country=country_code)


class TestDnsCache:
    def test_miss_then_hit(self):
        cache = DnsCache()
        record = ResourceRecord.a(WWW, "192.0.2.1", ttl=300)
        assert cache.get(WWW, RRType.A, now=0.0) is None
        cache.put(WWW, RRType.A, (record,), Rcode.NOERROR, now=0.0)
        hit = cache.get(WWW, RRType.A, now=10.0)
        assert hit is not None
        assert hit[0][0].rdata.address == "192.0.2.1"

    def test_ttl_expiry(self):
        cache = DnsCache()
        record = ResourceRecord.a(WWW, "192.0.2.1", ttl=60)
        cache.put(WWW, RRType.A, (record,), Rcode.NOERROR, now=0.0)
        assert cache.get(WWW, RRType.A, now=59.0) is not None
        assert cache.get(WWW, RRType.A, now=61.0) is None
        assert cache.stats.expirations == 1

    def test_negative_caching(self):
        cache = DnsCache(negative_ttl=30.0)
        cache.put(WWW, RRType.A, (), Rcode.NXDOMAIN, now=0.0)
        hit = cache.get(WWW, RRType.A, now=10.0)
        assert hit == ((), Rcode.NXDOMAIN)
        assert cache.get(WWW, RRType.A, now=40.0) is None

    def test_lru_eviction(self):
        cache = DnsCache(max_entries=2)
        for index in range(3):
            name = DnsName.from_text(f"h{index}.example.com")
            cache.put(name, RRType.A,
                      (ResourceRecord.a(name, "192.0.2.1"),),
                      Rcode.NOERROR, now=0.0)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(DnsName.from_text("h0.example.com"),
                         RRType.A, now=0.0) is None

    def test_hit_refreshes_lru_position(self):
        cache = DnsCache(max_entries=2)
        first = DnsName.from_text("h0.example.com")
        second = DnsName.from_text("h1.example.com")
        for name in (first, second):
            cache.put(name, RRType.A,
                      (ResourceRecord.a(name, "192.0.2.1"),),
                      Rcode.NOERROR, now=0.0)
        cache.get(first, RRType.A, now=0.0)  # refresh h0
        third = DnsName.from_text("h2.example.com")
        cache.put(third, RRType.A,
                  (ResourceRecord.a(third, "192.0.2.1"),),
                  Rcode.NOERROR, now=0.0)
        assert cache.get(first, RRType.A, now=0.0) is not None

    def test_zero_ttl_not_cached(self):
        cache = DnsCache()
        cache.put(WWW, RRType.A,
                  (ResourceRecord.a(WWW, "192.0.2.1", ttl=0),),
                  Rcode.NOERROR, now=0.0)
        assert len(cache) == 0

    def test_hit_ratio(self):
        cache = DnsCache()
        cache.get(WWW, RRType.A, now=0.0)
        cache.put(WWW, RRType.A, (ResourceRecord.a(WWW, "1.2.3.4"),),
                  Rcode.NOERROR, now=0.0)
        cache.get(WWW, RRType.A, now=0.0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def _fill(self, cache, count, ttl=300, now=0.0, prefix="h"):
        for index in range(count):
            name = DnsName.from_text(f"{prefix}{index}.example.com")
            cache.put(name, RRType.A,
                      (ResourceRecord.a(name, "192.0.2.1", ttl=ttl),),
                      Rcode.NOERROR, now=now)

    def test_pressure_lru_counts_live_victims(self):
        cache = DnsCache(max_entries=4)
        self._fill(cache, 6)
        assert cache.stats.pressure_lru == 2
        assert cache.stats.pressure_expired == 0
        assert cache.stats.evictions == 2

    def test_pressure_prefers_purging_expired_entries(self):
        cache = DnsCache(max_entries=4)
        self._fill(cache, 4, ttl=10, now=0.0)
        # All four residents are dead by now=100: the overflow purge
        # must claim them as expired, never as LRU sacrifices.
        self._fill(cache, 2, ttl=300, now=100.0, prefix="fresh")
        assert cache.stats.pressure_expired >= 1
        assert cache.stats.pressure_lru == 0
        assert cache.stats.evictions == 0

    def test_pressure_counters_reach_the_registry(self):
        from repro import telemetry
        registry, _ = telemetry.reset_registry()
        cache = DnsCache(max_entries=2)
        self._fill(cache, 4)
        assert registry.value("resolver.cache.pressure", reason="lru") == 2


class TestCacheStats:
    def test_merge_from_sums_every_field(self):
        from repro.resolvers.cache import CacheStats
        left = CacheStats(hits=5, misses=3, evictions=1, expirations=2,
                          pressure_lru=1, pressure_expired=2)
        right = CacheStats(hits=1, misses=1, evictions=1, expirations=1,
                          pressure_lru=1, pressure_expired=1)
        merged = left.merge_from(right)
        assert merged is left
        assert (left.hits, left.misses) == (6, 4)
        assert (left.evictions, left.expirations) == (2, 3)
        assert (left.pressure_lru, left.pressure_expired) == (2, 3)
        assert left.hit_ratio == pytest.approx(0.6)

    def test_from_registry_survives_shard_merge(self):
        # The regression this guards: sharded runs keep only merged
        # telemetry, and CacheStats must be reconstructible from it.
        from repro import telemetry
        from repro.resolvers.cache import CacheStats
        from repro.telemetry import MetricsRegistry

        fragments = []
        for _ in range(2):
            registry, _ = telemetry.reset_registry()
            cache = DnsCache(max_entries=2)
            cache.get(WWW, RRType.A, now=0.0)  # miss
            cache.put(WWW, RRType.A,
                      (ResourceRecord.a(WWW, "1.2.3.4"),),
                      Rcode.NOERROR, now=0.0)
            cache.get(WWW, RRType.A, now=0.0)  # hit
            for index in range(3):
                name = DnsName.from_text(f"h{index}.example.com")
                cache.put(name, RRType.A,
                          (ResourceRecord.a(name, "192.0.2.1"),),
                          Rcode.NOERROR, now=0.0)
            fragments.append(registry)
        telemetry.reset_registry()
        merged = MetricsRegistry()
        for fragment in fragments:
            merged.merge(fragment)
        stats = CacheStats.from_registry(merged)
        assert stats.hits == 2
        assert stats.misses == 2
        assert stats.evictions == 4
        assert stats.pressure_lru == 4
        assert stats.hit_ratio == pytest.approx(0.5)


class TestUniverse:
    def test_host_a_and_resolve_public(self):
        universe = DnsUniverse()
        universe.host_a("doh.crypto.sx", "185.2.24.10")
        assert universe.resolve_public("doh.crypto.sx") == ("185.2.24.10",)

    def test_resolve_public_unknown(self):
        assert DnsUniverse().resolve_public("nope.example") == ()

    def test_longest_suffix_zone_match(self):
        universe = DnsUniverse()
        universe.host_a("a.example.com", "192.0.2.1")
        zone = universe.zone_for(DnsName.from_text("deep.a.example.com"))
        assert zone is not None
        assert zone.origin == DnsName.from_text("example.com")

    def test_authoritative_log(self):
        from repro.dnswire.zone import Zone
        universe = DnsUniverse()
        origin = DnsName.from_text("probe.test.")
        zone = Zone(origin)
        zone.add(ResourceRecord.a(origin.child("*"), "198.51.100.53"))
        universe.add_zone(zone, logged=True)
        universe.authoritative_lookup(origin.child("tok1"), RRType.A,
                                      timestamp=5.0, via_resolver="1.1.1.1")
        log = universe.log_for(origin)
        assert len(log) == 1
        assert log.queries_for(origin.child("tok1")) == [(5.0, "1.1.1.1")]

    def test_unlogged_zone_has_no_log(self):
        universe = DnsUniverse()
        universe.host_a("x.example.org", "192.0.2.1")
        from repro.errors import ScenarioError
        with pytest.raises(ScenarioError):
            universe.log_for(DnsName.from_text("example.org"))

    def test_nxdomain_for_unknown_zone(self):
        universe = DnsUniverse()
        rcode, records = universe.authoritative_lookup(
            WWW, RRType.A, 0.0, "r")
        assert rcode == Rcode.NXDOMAIN
        assert records == ()


class TestBackends:
    @pytest.fixture()
    def universe(self):
        universe = DnsUniverse()
        universe.host_a("www.example.com", "93.184.216.34")
        return universe

    def test_recursive_resolves(self, universe, rng):
        backend = RecursiveBackend(universe, rng)
        resolution = backend.resolve(make_query(WWW), ctx())
        assert resolution.response.answer_addresses() == ("93.184.216.34",)
        assert resolution.extra_ms > 0  # upstream cost on a cache miss

    def test_recursive_cache_hit_is_cheap(self, universe, rng):
        backend = RecursiveBackend(universe, rng)
        backend.resolve(make_query(WWW), ctx(timestamp=0.0))
        second = backend.resolve(make_query(WWW), ctx(timestamp=1.0))
        assert second.extra_ms < 1.0

    def test_recursive_nxdomain(self, universe, rng):
        backend = RecursiveBackend(universe, rng)
        resolution = backend.resolve(
            make_query(DnsName.from_text("missing.test.")), ctx())
        assert resolution.response.rcode() == Rcode.NXDOMAIN

    def test_fixed_answer_rewrites(self, universe, rng):
        backend = FixedAnswerBackend(RecursiveBackend(universe, rng),
                                     "198.51.100.7")
        resolution = backend.resolve(make_query(WWW), ctx())
        assert resolution.response.answer_addresses() == ("198.51.100.7",)

    def test_fixed_answer_spares_subscribers(self, universe, rng):
        backend = FixedAnswerBackend(RecursiveBackend(universe, rng),
                                     "198.51.100.7",
                                     subscribers=("5.5.5.5",))
        resolution = backend.resolve(make_query(WWW), ctx())
        assert resolution.response.answer_addresses() == ("93.184.216.34",)

    def test_fixed_answer_forces_nxdomain_to_answer(self, universe, rng):
        backend = FixedAnswerBackend(RecursiveBackend(universe, rng),
                                     "198.51.100.7")
        resolution = backend.resolve(
            make_query(DnsName.from_text("whatever.unknown.")), ctx())
        assert resolution.response.answer_addresses() == ("198.51.100.7",)

    def test_flaky_forwarding_servfails_sometimes(self, universe, rng):
        backend = FlakyForwardingBackend(
            RecursiveBackend(universe, rng.fork("inner")),
            rng.fork("flaky"), slow_upstream_probability=0.5)
        outcomes = [backend.resolve(make_query(WWW, msg_id=index),
                                    ctx()).response.rcode()
                    for index in range(200)]
        servfails = sum(1 for rcode in outcomes if rcode == Rcode.SERVFAIL)
        assert 60 < servfails < 140
        assert backend.timeouts_hit == servfails

    def test_flaky_timeout_costs_the_full_deadline(self, universe, rng):
        backend = FlakyForwardingBackend(
            RecursiveBackend(universe, rng.fork("inner")),
            rng.fork("flaky"), slow_upstream_probability=1.0,
            forward_timeout_ms=2000.0)
        resolution = backend.resolve(make_query(WWW), ctx())
        assert resolution.extra_ms == 2000.0

    def test_flaky_regional_override(self, universe, rng):
        backend = FlakyForwardingBackend(
            RecursiveBackend(universe, rng.fork("inner")),
            rng.fork("flaky"), slow_upstream_probability=1.0,
            regional_probabilities={"AP": 0.0})
        # Chinese clients sit in region AP: never flaky here.
        resolution = backend.resolve(make_query(WWW),
                                     ctx(country_code="CN"))
        assert resolution.response.rcode() == Rcode.NOERROR
        # Default probability applies elsewhere.
        resolution = backend.resolve(make_query(WWW),
                                     ctx(country_code="DE"))
        assert resolution.response.rcode() == Rcode.SERVFAIL

    def test_spoofing_backend(self, rng):
        backend = SpoofingBackend("192.0.2.66")
        resolution = backend.resolve(make_query(WWW), ctx())
        assert resolution.response.answer_addresses() == ("192.0.2.66",)


class TestAlternativeProtocols:
    @pytest.fixture()
    def dnscrypt_world(self, rng):
        from repro.netsim import Network
        network = Network()
        universe = DnsUniverse()
        universe.host_a("www.example.com", "93.184.216.34")
        key = ProviderKey("2.dnscrypt-cert.resolver.test", "pubkey123")
        host = Host(address="6.6.6.6", country_code="US",
                    point=country("US").point)
        host.bind("udp", 443, DnsCryptService(
            RecursiveBackend(universe, rng.fork("b")), key))
        network.add_host(host)
        from repro.netsim import ClientEnvironment
        env = ClientEnvironment.in_country("c", "5.4.3.2", "FR",
                                           rng.fork("e"))
        return network, env, key

    def test_seal_unseal_roundtrip(self):
        key = ProviderKey("p", "k1")
        assert unseal(key, seal(key, b"payload")) == b"payload"

    def test_unseal_rejects_wrong_key(self):
        sealed = seal(ProviderKey("p", "k1"), b"payload")
        with pytest.raises(WireFormatError):
            unseal(ProviderKey("p", "k2"), sealed)

    def test_unseal_rejects_plain_bytes(self):
        with pytest.raises(WireFormatError):
            unseal(ProviderKey("p", "k1"), b"not an envelope")

    def test_dnscrypt_query(self, dnscrypt_world, rng):
        network, env, key = dnscrypt_world
        client = DnsCryptClient(network, rng.fork("c"))
        result = client.query(env, "6.6.6.6", key, make_query(WWW))
        assert result.ok
        assert result.addresses() == ("93.184.216.34",)

    def test_doq_query_and_reuse(self, rng, trust):
        from repro.netsim import ClientEnvironment, Network
        network = Network()
        universe = DnsUniverse()
        universe.host_a("www.example.com", "93.184.216.34")
        chain = make_chain(trust["ca"], "doq.test", "2018-06-01",
                           "2019-12-01")
        host = Host(address="6.6.6.7", country_code="US",
                    point=country("US").point)
        host.bind("udp", 784, DoqService(
            RecursiveBackend(universe, rng.fork("b")),
            TlsConfig(cert_chain=chain)))
        network.add_host(host)
        env = ClientEnvironment.in_country("c", "5.4.3.3", "GB",
                                           rng.fork("e"))
        client = DoqClient(network, rng.fork("c"), trust["store"])
        first = client.query(env, "6.6.6.7", make_query(WWW, msg_id=1))
        second = client.query(env, "6.6.6.7", make_query(WWW, msg_id=2))
        assert first.ok and second.ok
        assert second.reused_connection
        assert second.latency_ms < first.latency_ms

    def test_doq_rejects_invalid_certificate(self, rng, trust):
        from repro.netsim import ClientEnvironment, Network
        from repro.tlssim import self_signed
        network = Network()
        universe = DnsUniverse()
        host = Host(address="6.6.6.8", country_code="US",
                    point=country("US").point)
        host.bind("udp", 784, DoqService(
            RecursiveBackend(universe, rng.fork("b")),
            TlsConfig(cert_chain=self_signed("doq.bad", "2018-01-01",
                                             "2028-01-01"))))
        network.add_host(host)
        env = ClientEnvironment.in_country("c", "5.4.3.4", "GB",
                                           rng.fork("e"))
        client = DoqClient(network, rng.fork("c"), trust["store"])
        result = client.query(env, "6.6.6.8", make_query(WWW))
        assert not result.ok
        from repro.doe import FailureKind
        assert result.failure is FailureKind.CERTIFICATE
