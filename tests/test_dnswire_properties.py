"""Property-based tests for the DNS wire codec (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnswire import (
    DnsName,
    Message,
    ResourceRecord,
    RRType,
    make_query,
    make_response,
)
from repro.dnswire.edns import PaddingOption
from repro.errors import WireFormatError

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=20)
names = st.lists(label, min_size=1, max_size=5).map(
    lambda labels: DnsName.from_text(".".join(labels)))
ipv4 = st.tuples(*([st.integers(0, 255)] * 4)).map(
    lambda octets: ".".join(str(o) for o in octets))
msg_ids = st.integers(0, 0xFFFF)


@given(name=names, msg_id=msg_ids,
       rrtype=st.sampled_from([RRType.A, RRType.AAAA, RRType.TXT,
                               RRType.NS, RRType.MX]))
def test_query_roundtrip(name, msg_id, rrtype):
    message = make_query(name, rrtype, msg_id=msg_id)
    decoded = Message.decode(message.encode())
    assert decoded.question.name == name
    assert decoded.question.rrtype == rrtype
    assert decoded.header.msg_id == msg_id


@given(name=names, addresses=st.lists(ipv4, min_size=0, max_size=8),
       msg_id=msg_ids)
def test_response_roundtrip(name, addresses, msg_id):
    query = make_query(name, msg_id=msg_id)
    response = make_response(query, answers=[
        ResourceRecord.a(name, address) for address in addresses])
    decoded = Message.decode(response.encode())
    assert decoded.answer_addresses() == tuple(addresses)


@given(name=names, addresses=st.lists(ipv4, min_size=1, max_size=6))
def test_compression_is_lossless(name, addresses):
    query = make_query(name)
    response = make_response(query, answers=[
        ResourceRecord.a(name, address) for address in addresses])
    compressed = Message.decode(response.encode(compress=True))
    plain = Message.decode(response.encode(compress=False))
    assert compressed.answers == plain.answers
    assert compressed.questions == plain.questions


@given(name=names, block=st.sampled_from([32, 64, 128, 256, 468]))
def test_padding_always_reaches_block_multiple(name, block):
    message = make_query(name, pad_block=block)
    assert len(message.encode()) % block == 0


@given(length=st.integers(0, 1024), block=st.integers(1, 512))
def test_padding_option_maths(length, block):
    option = PaddingOption.pad_to_block(length, block)
    assert (length + option.wire_length()) % block == 0


@given(data=st.binary(min_size=0, max_size=64))
@settings(max_examples=200)
def test_decoder_never_crashes_on_garbage(data):
    # Arbitrary bytes must either decode or raise WireFormatError —
    # never any other exception type.
    try:
        Message.decode(data)
    except WireFormatError:
        pass


@given(name=names)
def test_names_survive_wire(name):
    from repro.dnswire.wire import WireReader, WireWriter
    writer = WireWriter()
    writer.write_name(name)
    assert WireReader(writer.getvalue()).read_name() == name


@given(parts=st.lists(label, min_size=2, max_size=5))
def test_subdomain_relation_is_consistent(parts):
    full = DnsName.from_text(".".join(parts))
    parent = full.parent()
    assert full.is_subdomain_of(parent)
    assert not parent.is_subdomain_of(full) or len(parts) == 0
