"""Tests for the findings checklist."""

import pytest

from repro.analysis.report import ExperimentSuite
from repro.analysis.validate import (
    FindingCheck,
    render_checklist,
    validate_findings,
)


@pytest.fixture(scope="module")
def findings():
    from tests.conftest import tiny_config
    suite = ExperimentSuite(
        scenario=__import__("repro.world.scenario",
                            fromlist=["build_scenario"]).build_scenario(
                                tiny_config(seed=13)),
        netflow_scale=0.2)
    return validate_findings(suite)


class TestValidation:
    def test_all_findings_pass_at_test_scale(self, findings):
        failing = [check for check in findings if not check.passed]
        assert not failing, render_checklist(failing)

    def test_every_section_covered(self, findings):
        sections = {check.finding.split(".")[0] for check in findings}
        assert sections == {"1", "2", "3", "4"}

    def test_measured_values_are_recorded(self, findings):
        assert all(check.measured for check in findings)

    def test_render_checklist(self, findings):
        text = render_checklist(findings)
        assert "PASS" in text
        assert f"{len(findings)}/{len(findings)} findings" in text

    def test_render_marks_failures(self):
        text = render_checklist([FindingCheck("9.9", "impossible claim",
                                              False, "nope")])
        assert "[FAIL]" in text
        assert "0/1 findings" in text
