"""repro — an end-to-end DNS-over-Encryption measurement platform.

A faithful, fully self-contained reproduction of *"An End-to-End,
Large-Scale Measurement of DNS-over-Encryption: How Far Have We Come?"*
(Lu et al., IMC 2019): the DNS wire protocol, DoT/DoH/Do53 client and
server implementations, a deterministic simulated Internet standing in
for the real one, and the paper's three measurement legs — Internet-wide
service discovery, client-side usability studies through residential
proxy networks, and passive traffic analysis.

Quick start::

    from repro import ExperimentSuite, ScenarioConfig

    suite = ExperimentSuite.build(ScenarioConfig.small())
    print(suite.render_all())
"""

from repro.analysis.report import ExperimentSuite
from repro.world.scenario import Scenario, ScenarioConfig, build_scenario

__version__ = "1.0.0"

__all__ = [
    "ExperimentSuite",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "__version__",
]
