"""The URL corpus scanned for DoH services.

The paper inspects "a large-scale URL dataset provided by our industrial
partner ... from their web crawlers, sandbox and VirusTotal data feed"
(billions of URLs over time). The synthetic corpus reproduces what the
discovery logic depends on: an overwhelming majority of irrelevant URLs,
a small set of URLs whose *paths* look like DoH templates but whose hosts
serve no DoH, and the genuine DoH endpoints (including two that public
resolver lists miss). URL parameters and user data are excluded, matching
the paper's ethics note.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.httpsim.uri import looks_like_doh_path, parse_url

_NOISE_HOST_POOL = (
    "www.shop-{}.example", "cdn{}.media.example", "blog-{}.example",
    "mail{}.corp.example", "api{}.service.example", "img{}.photos.example",
    "news{}.daily.example", "files{}.storage.example",
)

_NOISE_PATH_POOL = (
    "/", "/index.html", "/login", "/search", "/static/app.js",
    "/images/logo.png", "/api/v1/items", "/feed.xml", "/about",
    "/cart/checkout", "/category/electronics", "/video/watch",
)

#: Paths that *look* DoH-ish and occur on ordinary web hosts too.
_LOOKALIKE_PATHS = ("/dns-query", "/resolve", "/query", "/doh")


@dataclass
class UrlDataset:
    """An iterable corpus of URL strings with provenance counters."""

    urls: List[str]
    sources: Tuple[str, ...] = ("web-crawler", "sandbox", "virustotal")

    def __iter__(self) -> Iterator[str]:
        return iter(self.urls)

    def __len__(self) -> int:
        return len(self.urls)

    def doh_candidates(self) -> List[str]:
        """URLs whose path matches a well-known DoH template path."""
        candidates = []
        for url in self.urls:
            try:
                parsed = parse_url(url)
            except Exception:
                continue
            if parsed.scheme != "https":
                continue
            if looks_like_doh_path(parsed.path):
                candidates.append(url)
        return candidates


def build_url_dataset(scenario) -> UrlDataset:
    """Build the corpus for a scenario.

    The corpus contains every real DoH endpoint of the world (as URLs
    observed in the wild), 44 lookalikes, and configured noise volume —
    61 DoH-path candidates in total at paper scale, of which 17 probe
    successfully (Section 3.2).
    """
    rng = scenario.rng.fork("url-dataset")
    urls: List[str] = []
    for template in scenario.all_doh_templates():
        base = template.split("{")[0]
        urls.append(base)
    lookalike_budget = 61 - len(set(urls))
    for index in range(max(0, lookalike_budget)):
        host = _NOISE_HOST_POOL[index % len(_NOISE_HOST_POOL)].format(index)
        path = _LOOKALIKE_PATHS[index % len(_LOOKALIKE_PATHS)]
        urls.append(f"https://{host}{path}")
    for index in range(scenario.config.url_dataset_noise):
        host = rng.choice(_NOISE_HOST_POOL).format(rng.randint(0, 99_999))
        path = rng.choice(_NOISE_PATH_POOL)
        scheme = "https" if rng.chance(0.7) else "http"
        urls.append(f"{scheme}://{host}{path}")
    rng.shuffle(urls)
    return UrlDataset(urls)
