"""Large-scale datasets the usage and discovery studies consume.

* :mod:`repro.datasets.urldataset` — the industrial-partner URL corpus
  scanned for DoH URI templates (Section 3.1);
* :mod:`repro.datasets.netflow` — 18 months of sampled NetFlow from a
  large ISP's backbone (Section 5.1);
* :mod:`repro.datasets.passive_dns` — DNSDB-style aggregates and
  360-PassiveDNS-style daily volumes for DoH bootstrap domains
  (Section 5.3).
"""

from repro.datasets.urldataset import UrlDataset, build_url_dataset
from repro.datasets.netflow import NetFlowDataset, generate_netflow_dataset
from repro.datasets.passive_dns import (
    PassiveDnsAggregate,
    PassiveDnsStores,
    build_passive_dns_stores,
)

__all__ = [
    "UrlDataset",
    "build_url_dataset",
    "NetFlowDataset",
    "generate_netflow_dataset",
    "PassiveDnsAggregate",
    "PassiveDnsStores",
    "build_passive_dns_stores",
]
