"""Passive DNS stores for the DoH usage study (Section 5.3).

Two stores mirror the paper's sources:

* a DNSDB-style aggregate store (first seen / last seen / total lookup
  count per domain) with wide resolver coverage, used to find which DoH
  bootstrap domains see real traffic at all;
* a 360-PassiveDNS-style store with monthly query volumes, used to plot
  the trend of the popular domains (Figure 13).

Calibration: only 4 of the 17 DoH bootstrap domains exceed 10K lifetime
lookups (Google, Cloudflare's Mozilla endpoint, CleanBrowsing and
crypto.sx); Google is orders of magnitude above the rest (DoH since
2016); CleanBrowsing grows ~10x from Sep 2018 (≈200 monthly queries) to
Mar 2019 (≈1,915).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.clock import iter_months, month_key, parse_date
from repro.netsim.rand import SeededRng

WINDOW_START = "2018-01-01"
WINDOW_END = "2019-04-30"

#: (domain, first_seen, lifetime total) for the popular four.
POPULAR_PROFILES: Tuple[Tuple[str, str, int], ...] = (
    ("dns.google.com", "2016-04-01", 8_400_000),
    ("mozilla.cloudflare-dns.com", "2018-06-01", 145_000),
    ("doh.cleanbrowsing.org", "2018-07-15", 13_200),
    ("doh.crypto.sx", "2018-03-01", 18_500),
)

#: Anchors for the CleanBrowsing monthly trend (Finding 4.2).
CLEANBROWSING_ANCHORS = {"2018-09": 200, "2019-03": 1915}


@dataclass(frozen=True)
class PassiveDnsAggregate:
    """One DNSDB-style aggregate row."""

    domain: str
    first_seen: float
    last_seen: float
    total_count: int


@dataclass
class PassiveDnsStores:
    """Both stores, queried by the usage study."""

    dnsdb: Dict[str, PassiveDnsAggregate] = field(default_factory=dict)
    #: 360-style monthly volumes: domain -> {"YYYY-MM": count}.
    monthly: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def aggregate_for(self, domain: str) -> Optional[PassiveDnsAggregate]:
        return self.dnsdb.get(domain.lower().rstrip("."))

    def monthly_series(self, domain: str) -> Dict[str, int]:
        return dict(self.monthly.get(domain.lower().rstrip("."), {}))

    def domains_over(self, threshold: int,
                     candidates: Optional[List[str]] = None) -> List[str]:
        pool = (candidates if candidates is not None
                else list(self.dnsdb))
        result = []
        for domain in pool:
            aggregate = self.aggregate_for(domain)
            if aggregate is not None and aggregate.total_count > threshold:
                result.append(domain.lower().rstrip("."))
        return result


def _growth_series(rng: SeededRng, months: List[str], first_seen: str,
                   total: int, growth: float = 0.18) -> Dict[str, int]:
    """A jittered exponential-growth monthly series summing to ~total."""
    first_month = first_seen[:7]
    active = [month for month in months if month >= first_month]
    if not active:
        active = months[-1:]
    raw = [math.exp(growth * index) * rng.uniform(0.8, 1.25)
           for index in range(len(active))]
    scale = total / sum(raw)
    return {month: max(1, round(value * scale))
            for month, value in zip(active, raw)}


def _cleanbrowsing_series(rng: SeededRng, months: List[str]) -> Dict[str, int]:
    """Hit the paper's two anchors, interpolating geometrically between."""
    first, last = "2018-09", "2019-03"
    first_value = CLEANBROWSING_ANCHORS[first]
    last_value = CLEANBROWSING_ANCHORS[last]
    active = [month for month in months if first <= month]
    series = {}
    span = sum(1 for month in active if month <= last) - 1
    ratio = (last_value / first_value) ** (1.0 / max(1, span))
    value = float(first_value)
    for month in active:
        if month <= last:
            series[month] = round(value)
            value *= ratio
        else:
            series[month] = round(value * rng.uniform(0.95, 1.15))
    # The anchors themselves must be exact.
    series[first] = first_value
    series[last] = last_value
    return series


def build_passive_dns_stores(doh_domains: List[str],
                             rng: SeededRng) -> PassiveDnsStores:
    """Build both stores for a set of discovered DoH bootstrap domains."""
    months = [month_key(ts) for ts in iter_months(parse_date(WINDOW_START),
                                                  parse_date(WINDOW_END))]
    stores = PassiveDnsStores()
    popular = {domain for domain, _, _ in POPULAR_PROFILES}
    for domain, first_seen, total in POPULAR_PROFILES:
        series_rng = rng.fork(f"series-{domain}")
        if domain == "doh.cleanbrowsing.org":
            series = _cleanbrowsing_series(series_rng, months)
        else:
            series = _growth_series(series_rng, months, first_seen, total)
        stores.monthly[domain] = series
        stores.dnsdb[domain] = PassiveDnsAggregate(
            domain=domain,
            first_seen=parse_date(first_seen),
            last_seen=parse_date(WINDOW_END),
            total_count=total,
        )
    # The remaining DoH domains stay under the 10K threshold.
    for domain in doh_domains:
        normalized = domain.lower().rstrip(".")
        if normalized in popular or normalized in stores.dnsdb:
            continue
        quiet_rng = rng.fork(f"quiet-{normalized}")
        total = quiet_rng.randint(30, 8_500)
        stores.dnsdb[normalized] = PassiveDnsAggregate(
            domain=normalized,
            first_seen=parse_date("2018-06-01"),
            last_seen=parse_date(WINDOW_END),
            total_count=total,
        )
        stores.monthly[normalized] = _growth_series(
            quiet_rng, months, "2018-06-01", total, growth=0.05)
    # Ordinary popular web domains, so the stores are not DoH-only.
    for domain, total in (("www.example.com", 120_000_000),
                          ("www.wikipedia.org", 450_000_000)):
        noise_rng = rng.fork(f"noise-{domain}")
        stores.dnsdb[domain] = PassiveDnsAggregate(
            domain=domain, first_seen=parse_date("2016-01-01"),
            last_seen=parse_date(WINDOW_END), total_count=total)
        stores.monthly[domain] = _growth_series(
            noise_rng, months, "2018-01-01", total, growth=0.01)
    return stores
