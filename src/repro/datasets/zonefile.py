"""Public DNS zone files, as used in the paper's first DoH-discovery try.

Zone files enumerate registered second-level domains (SLDs) only — the
reason the paper's zone-file approach "turns out to be unsatisfying, as
many resolvers are hosted on the subdomains of second-level domains of
the providers". The builder derives the SLD universe visible to that
method from a scenario: the SLDs of every DoH bootstrap hostname, plus
registration noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dnswire.names import DnsName


@dataclass
class ZoneFileDataset:
    """A flat list of registered SLDs (no subdomains, as in real zone files)."""

    slds: List[str]

    def __iter__(self):
        return iter(self.slds)

    def __len__(self) -> int:
        return len(self.slds)


def build_zone_file(scenario) -> ZoneFileDataset:
    """The zone-file view of a scenario's world."""
    slds = set()
    for template in scenario.all_doh_templates():
        hostname = template.split("//")[1].split("/")[0]
        sld = DnsName.from_text(hostname).second_level_domain()
        slds.add(sld.to_display())
    rng = scenario.rng.fork("zone-file")
    for index in range(max(200, scenario.config.url_dataset_noise // 20)):
        slds.add(f"registered-{rng.token(8)}.example")
    return ZoneFileDataset(sorted(slds))
