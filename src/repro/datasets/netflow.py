"""18 months of sampled NetFlow from a large ISP backbone (Section 5.1).

The generator produces the *sampled* flow records a 1/3,000
packet-sampling NetFlow deployment would export, calibrated to the
paper's observations:

* Cloudflare DoT traffic appears when the 1.1.1.1 service launches
  (April 2018) and grows 56% between July and December 2018
  (4,674 → 7,318 monthly flows at the paper's collection scale);
* Quad9 DoT traffic fluctuates rather than growing monotonically;
* 5,623 client /24 netblocks in total: the top 5 carry 44% of the DoT
  traffic and the top 20 carry 60%, while 96% of netblocks are active
  for less than one week and jointly produce 25%;
* clear-text DNS to the same resolvers is 2-3 orders of magnitude
  larger (kept as monthly aggregate counts — materialising millions of
  Do53 records would add nothing to the analysis);
* a small share of records union only a ``SYN`` flag (incomplete
  handshakes) and must be excluded by the analysis;
* port-853 scanner sources (fan-out across thousands of destinations)
  are present so the scanner-vetting step has something to find.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netsim.clock import DAY_SECONDS, iter_months, month_key, parse_date
from repro.netsim.ipv4 import int_to_ip
from repro.netsim.netflow import FlowRecord, TcpFlags
from repro.netsim.rand import SeededRng, keyed_offset

COLLECTION_START = "2017-07-01"
COLLECTION_END = "2019-01-31"

CLOUDFLARE_DOT_ADDRESSES = ("1.1.1.1", "1.0.0.1")
QUAD9_DOT_ADDRESSES = ("9.9.9.9", "149.112.112.112")

#: Calibration anchors (monthly sampled DoT flow records).
CLOUDFLARE_ANCHORS: Tuple[Tuple[str, int], ...] = (
    ("2018-04", 1150), ("2018-05", 2300), ("2018-06", 3600),
    ("2018-07", 4674), ("2018-08", 5100), ("2018-09", 5550),
    ("2018-10", 6050), ("2018-11", 6650), ("2018-12", 7318),
    ("2019-01", 7610),
)
QUAD9_BASE_MONTHLY = 1500
QUAD9_FLUCTUATION = 0.45
QUAD9_START = "2017-11"

#: Ratio of Do53 to DoT flow volume ("2-3 orders of magnitude").
DO53_TO_DOT_RATIO = 420.0

SINGLE_SYN_FRACTION = 0.07

NETBLOCK_CLASSES = (
    # (name, count, share of total DoT traffic, active-day range)
    ("giant", 5, 0.49, (45, 240)),
    ("major", 15, 0.18, (25, 120)),
    ("regular", 205, 0.12, (8, 60)),
    ("temporary", 5398, 0.21, (1, 6)),
)

TEMPORARY_FRACTION = 5398 / 5623


@dataclass
class NetFlowDataset:
    """The generated collection."""

    records: List[FlowRecord]
    #: Monthly clear-text DNS record counts per resolver family
    #: ("cloudflare"/"quad9"), kept as aggregates.
    do53_monthly: Dict[str, Dict[str, int]]
    sampling_rate: float = 1.0 / 3000.0
    start_ts: float = field(default_factory=lambda: parse_date(COLLECTION_START))
    end_ts: float = field(default_factory=lambda: parse_date(COLLECTION_END))
    #: Source /24s that belong to synthetic scanners (ground truth for
    #: evaluating the scan detector, never used by the analysis).
    scanner_netblocks: Tuple[str, ...] = ()

    def port853_records(self) -> List[FlowRecord]:
        return [record for record in self.records if record.dst_port == 853]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class _Netblock:
    prefix: str  # "a.b.c" form; last octet filled per record
    klass: str
    weight: float
    first_month: int
    active_months: int
    active_day_range: Tuple[int, int]


def _cloudflare_monthly(month: str) -> int:
    table = dict(CLOUDFLARE_ANCHORS)
    return table.get(month, 0)


def _quad9_monthly(month: str, rng: SeededRng) -> int:
    if month < QUAD9_START:
        return 0
    # keyed_offset, not hash(): str hashes vary per process with
    # PYTHONHASHSEED, which made this row differ between identical runs.
    swing = 1.0 + QUAD9_FLUCTUATION * math.sin(
        keyed_offset(f"quad9-swing:{month}", 0, 7) - 3)
    return max(50, round(QUAD9_BASE_MONTHLY * swing
                         * rng.uniform(0.85, 1.15)))


def _build_netblocks(rng: SeededRng, months: List[str],
                     scale: float) -> List[_Netblock]:
    """Build the client netblock population.

    Temporary netblocks (96% of the population) are placed in months
    where the Cloudflare service actually carries traffic, weighted by
    that month's volume — they model the one-off experimenters the paper
    observes. Their per-block weight is expressed per *active month*, so
    each month's cohort of temporaries jointly carries its class share.
    """
    busy_months = [(index, _cloudflare_monthly(month))
                   for index, month in enumerate(months)
                   if _cloudflare_monthly(month) > 0]
    netblocks: List[_Netblock] = []
    serial = 0
    for klass, count, share, day_range in NETBLOCK_CLASSES:
        scaled_count = max(1, round(count * scale))
        cohort_months = max(1, len(busy_months))
        for index in range(scaled_count):
            serial += 1
            prefix = f"115.{48 + serial // 250}.{serial % 250}"
            if klass == "temporary":
                if busy_months:
                    first_month = rng.weighted_choice(
                        [m for m, _ in busy_months],
                        [volume for _, volume in busy_months])
                else:
                    first_month = rng.randint(0, len(months) - 1)
                active_months = 1
                # Share is carried by that month's cohort alone.
                weight = (share / (scaled_count / cohort_months)
                          * rng.uniform(0.6, 1.5))
            else:
                first_month = rng.randint(0, max(0, len(months) // 3))
                active_months = len(months) - first_month
                weight = share / scaled_count * rng.uniform(0.6, 1.5)
            netblocks.append(_Netblock(prefix, klass, weight, first_month,
                                       active_months, day_range))
    return netblocks


def _record_for(rng: SeededRng, prefix: str, dst: str, ts: float,
                port: int = 853) -> FlowRecord:
    single_syn = rng.chance(SINGLE_SYN_FRACTION)
    if single_syn:
        packets, flags = 1, TcpFlags.SYN
    else:
        packets = 1 + rng.binomial(4, 0.25)
        flags = TcpFlags.PSH | TcpFlags.ACK
        if rng.chance(0.5):
            flags |= TcpFlags.SYN
        if rng.chance(0.4):
            flags |= TcpFlags.FIN
    return FlowRecord(
        src_ip=f"{prefix}.0",
        dst_ip=dst,
        src_port=rng.randint(1025, 65000),
        dst_port=port,
        protocol="tcp",
        packets=packets,
        octets=packets * rng.randint(90, 260),
        tcp_flags=flags,
        start_ts=ts,
        end_ts=ts + rng.uniform(0.05, 30.0),
    )


def generate_netflow_dataset(rng: SeededRng,
                             scale: float = 1.0,
                             include_scanners: bool = True,
                             include_noise: bool = True) -> NetFlowDataset:
    """Generate the full collection; ``scale`` shrinks it for tests."""
    start = parse_date(COLLECTION_START)
    end = parse_date(COLLECTION_END)
    months = [month_key(ts) for ts in iter_months(start, end)]
    month_starts = {month_key(ts): ts for ts in iter_months(start, end)}
    netblocks = _build_netblocks(rng.fork("netblocks"), months, scale)
    records: List[FlowRecord] = []
    do53_monthly: Dict[str, Dict[str, int]] = {"cloudflare": {}, "quad9": {}}

    for month_index, month in enumerate(months):
        month_rng = rng.fork(f"month-{month}")
        month_start = month_starts[month]
        targets = (
            ("cloudflare", CLOUDFLARE_DOT_ADDRESSES,
             round(_cloudflare_monthly(month) * scale)),
            ("quad9", QUAD9_DOT_ADDRESSES,
             round(_quad9_monthly(month, month_rng) * scale)),
        )
        active = [block for block in netblocks
                  if block.first_month <= month_index
                  < block.first_month + block.active_months]
        weights = [block.weight for block in active]
        total_weight = sum(weights) or 1.0
        for family, addresses, monthly_count in targets:
            do53_monthly[family][month] = round(
                monthly_count * DO53_TO_DOT_RATIO)
            if monthly_count <= 0 or not active:
                continue
            for block in active:
                expected = monthly_count * block.weight / total_weight
                block_count = int(expected)
                # Probabilistic rounding keeps small expectations alive
                # (a temporary netblock with E=0.8 flows must usually
                # appear, not be rounded away).
                if month_rng.chance(expected - block_count):
                    block_count += 1
                if block_count <= 0:
                    continue
                low_day, high_day = block.active_day_range
                span_days = month_rng.randint(low_day,
                                              max(low_day, high_day))
                start_day = month_rng.randint(0, max(0, 27 - min(span_days,
                                                                 27)))
                for _ in range(block_count):
                    day = start_day + month_rng.randint(
                        0, max(0, min(span_days, 27) - 1))
                    ts = (month_start + day * DAY_SECONDS
                          + month_rng.uniform(0, DAY_SECONDS))
                    records.append(_record_for(
                        month_rng, block.prefix,
                        month_rng.choice(addresses), ts))

    scanner_netblocks: Tuple[str, ...] = ()
    if include_scanners:
        records_extra, scanner_netblocks = _scanner_records(
            rng.fork("scanners"), month_starts, scale)
        records.extend(records_extra)
    if include_noise:
        records.extend(_noise_records(rng.fork("noise"), month_starts,
                                      scale))
    records.sort(key=lambda record: record.start_ts)
    return NetFlowDataset(records=records, do53_monthly=do53_monthly,
                          scanner_netblocks=scanner_netblocks)


def _scanner_records(rng: SeededRng, month_starts: Dict[str, float],
                     scale: float) -> Tuple[List[FlowRecord], Tuple[str, ...]]:
    """Port-853 research scanners: huge destination fan-out, SYN-heavy."""
    records = []
    prefixes = ("141.212.120", "74.120.14", "167.94.138")
    fanout = max(200, round(2500 * scale))
    for prefix in prefixes:
        for month, month_start in list(month_starts.items())[::2]:
            scan_rng = rng.fork(f"{prefix}-{month}")
            base_ts = month_start + scan_rng.uniform(0, 20 * DAY_SECONDS)
            for index in range(fanout):
                dst = int_to_ip(scan_rng.randint(0x0B000000, 0xDF000000))
                records.append(FlowRecord(
                    src_ip=f"{prefix}.0", dst_ip=dst,
                    src_port=scan_rng.randint(30000, 60000), dst_port=853,
                    protocol="tcp", packets=1, octets=60,
                    tcp_flags=TcpFlags.SYN,
                    start_ts=base_ts + index * 0.02,
                    end_ts=base_ts + index * 0.02))
    return records, tuple(f"{prefix}.0/24" for prefix in prefixes)


def _noise_records(rng: SeededRng, month_starts: Dict[str, float],
                   scale: float) -> List[FlowRecord]:
    """Port-853 flows to hosts that are not DoT resolvers (mail etc.)."""
    records = []
    count = max(50, round(1200 * scale))
    for index in range(count):
        month_start = rng.choice(list(month_starts.values()))
        prefix = f"116.{rng.randint(10, 60)}.{rng.randint(0, 250)}"
        dst = int_to_ip(rng.randint(0x0B000000, 0xDF000000))
        records.append(_record_for(rng, prefix, dst,
                                   month_start + rng.uniform(
                                       0, 27 * DAY_SECONDS)))
    return records
