"""Exception hierarchy shared across the measurement platform.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
The protocol-level exceptions mirror the failure modes the paper observes
in the wild: unreachable services, TLS authentication failures, malformed
wire data and lookup timeouts.

The transient/permanent split lives here, in :data:`TRANSIENT_ERRORS`:
both :class:`repro.core.retry.RetryPolicy` (which errors are worth
retrying) and the client-side failure diagnosis (how Table 5/6 attribute
failure causes) import the same tuple, so the classification cannot
drift between the two consumers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class WireFormatError(ReproError):
    """A DNS message (or a part of one) could not be encoded or decoded."""


class NameError_(WireFormatError):
    """A domain name is malformed (label too long, name too long, ...).

    The trailing underscore avoids shadowing the Python built-in
    :class:`NameError` while keeping the DNS-centric meaning obvious.
    """


class TransportError(ReproError):
    """A simulated transport operation failed (connect, send, receive)."""


class ConnectionRefused(TransportError):
    """The destination host does not listen on the requested port."""


class ConnectionReset(TransportError):
    """An in-path device or the peer reset the connection."""


class HostUnreachable(TransportError):
    """No host exists at the destination address, or routing blackholed it."""


class TimeoutError_(TransportError):
    """An operation exceeded its deadline.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`TimeoutError`.
    """


class TlsError(ReproError):
    """TLS handshake or record-layer failure."""


class CertificateError(TlsError):
    """Server certificate failed validation under the strict profile."""

    def __init__(self, message: str, reasons: tuple = ()):
        super().__init__(message)
        #: Machine-readable validation failures (``repro.tlssim`` reasons).
        self.reasons = tuple(reasons)


class HttpError(ReproError):
    """An HTTP exchange failed or returned an unusable response."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        #: HTTP status code when one was received, otherwise 0.
        self.status = status


class DnsLookupError(ReproError):
    """A DNS lookup completed but did not produce a usable answer."""

    def __init__(self, message: str, rcode: int | None = None):
        super().__init__(message)
        #: DNS RCODE of the response when one was received.
        self.rcode = rcode


class ScanError(ReproError):
    """Internet-wide scanning failed for a reason other than per-host churn."""


class CampaignError(ReproError):
    """A scan campaign is empty, inconsistent, or cannot be resumed."""


class ProxyError(ReproError):
    """A proxy network endpoint failed (expired, dropped, rate limited)."""


class ScenarioError(ReproError):
    """The world scenario is internally inconsistent or misconfigured."""


#: Transport failures a retry may plausibly cure: the path dropped or
#: reset the attempt, or routing momentarily blackholed it. A refused
#: connection (nothing listens) and TLS/certificate failures are
#: *permanent* — repeating the attempt observes the same world state.
TRANSIENT_ERRORS = (TimeoutError_, ConnectionReset, HostUnreachable)
