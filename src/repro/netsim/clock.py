"""Explicit simulated time.

All timestamps in the simulation are Unix-epoch seconds handled through
:class:`SimClock`; the library never reads the wall clock inside a
simulation, which keeps campaigns reproducible.
"""

from __future__ import annotations

import calendar
import datetime as _dt

DAY_SECONDS = 86_400.0
#: Average month length; used only for coarse bucketing helpers.
MONTH_SECONDS = 30.44 * DAY_SECONDS


def parse_date(text: str) -> float:
    """Parse ``YYYY-MM-DD`` into Unix seconds at midnight UTC."""
    parsed = _dt.datetime.strptime(text, "%Y-%m-%d")
    return float(calendar.timegm(parsed.timetuple()))


def format_date(timestamp: float) -> str:
    """Render Unix seconds as ``YYYY-MM-DD`` (UTC)."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m-%d")


def month_key(timestamp: float) -> str:
    """Render Unix seconds as a calendar month key ``YYYY-MM`` (UTC)."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m")


def iter_months(start: float, end: float):
    """Yield the first instant of every calendar month in ``[start, end)``."""
    moment = _dt.datetime.fromtimestamp(start, tz=_dt.timezone.utc)
    moment = moment.replace(day=1, hour=0, minute=0, second=0, microsecond=0)
    while moment.timestamp() < end:
        yield moment.timestamp()
        if moment.month == 12:
            moment = moment.replace(year=moment.year + 1, month=1)
        else:
            moment = moment.replace(month=moment.month + 1)


class SimClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @classmethod
    def at_date(cls, text: str) -> "SimClock":
        return cls(parse_date(text))

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative steps are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        self._now += seconds
        return self._now

    def advance_ms(self, milliseconds: float) -> float:
        return self.advance(milliseconds / 1000.0)

    def set_to(self, timestamp: float) -> None:
        """Jump forward to an absolute instant (never backwards)."""
        if timestamp < self._now:
            raise ValueError("cannot set the clock backwards")
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock({format_date(self._now)}, {self._now:.3f})"
