"""In-path devices: censors, TLS interceptors, port filters, IP conflicts.

These model the disruption sources the paper measures:

* **Censor** — country-level blocking by destination IP/port (Finding 2.2:
  Google DoH blocked in China) and clear-text DNS manipulation.
* **TlsInterceptor** — middleboxes that re-sign server certificates with
  their own CA and proxy the session (Finding 2.3: SonicWall/Fortinet
  DPI boxes acting as DoT proxies).
* **PortFilter** — devices that drop a specific port, e.g. port-53-only
  filtering that leaves 853/443 alone (Finding 2.1).
* **IpConflictDevice** — LAN equipment squatting on a resolver address
  such as 1.1.1.1 (Table 5: routers, modems, captive portals).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.netsim.host import Host, TlsConfig


class Verdict(enum.Enum):
    """What an in-path device does to a connection attempt."""

    ALLOW = "allow"
    #: Silently discard packets; the client times out.
    DROP = "drop"
    #: Send TCP RST; the client sees a reset immediately.
    RESET = "reset"


class Middlebox:
    """Base class; default behaviour is fully transparent."""

    name: str = "middlebox"

    def tcp_verdict(self, dst_ip: str, port: int) -> Verdict:
        return Verdict.ALLOW

    def udp_verdict(self, dst_ip: str, port: int) -> Verdict:
        return Verdict.ALLOW

    def intercept_tls(self, dst_ip: str, port: int,
                      server_name: Optional[str]) -> Optional[TlsConfig]:
        """Return a substitute TLS config to man-in-the-middle the session."""
        return None

    def spoof_dns(self, dst_ip: str, port: int) -> bool:
        """True when the device answers clear-text DNS itself."""
        return False


@dataclass
class RuleSet:
    """IP/port match rules shared by filter-style devices."""

    blocked_ips: Set[str] = field(default_factory=set)
    blocked_ports: Set[int] = field(default_factory=set)
    #: (ip, port) pairs blocked together.
    blocked_endpoints: Set[Tuple[str, int]] = field(default_factory=set)

    def matches(self, dst_ip: str, port: int) -> bool:
        return (dst_ip in self.blocked_ips
                or port in self.blocked_ports
                or (dst_ip, port) in self.blocked_endpoints)


class Censor(Middlebox):
    """Country-level censorship device.

    Blocks listed destination IPs (all ports — the paper notes the blocked
    Google DoH addresses "also carry other Google services"), optionally
    spoofs clear-text DNS, and can reset instead of dropping.
    """

    def __init__(self, name: str, rules: RuleSet,
                 action: Verdict = Verdict.DROP,
                 spoof_port53: bool = False):
        self.name = name
        self.rules = rules
        self.action = action
        self._spoof_port53 = spoof_port53

    def tcp_verdict(self, dst_ip: str, port: int) -> Verdict:
        if self.rules.matches(dst_ip, port):
            return self.action
        return Verdict.ALLOW

    def udp_verdict(self, dst_ip: str, port: int) -> Verdict:
        if self.rules.matches(dst_ip, port):
            return self.action
        return Verdict.ALLOW

    def spoof_dns(self, dst_ip: str, port: int) -> bool:
        return self._spoof_port53 and port == 53


class PortFilter(Middlebox):
    """Drops or resets traffic to specific ports or endpoints."""

    def __init__(self, name: str, rules: RuleSet,
                 action: Verdict = Verdict.DROP):
        self.name = name
        self.rules = rules
        self.action = action

    def tcp_verdict(self, dst_ip: str, port: int) -> Verdict:
        if self.rules.matches(dst_ip, port):
            return self.action
        return Verdict.ALLOW

    def udp_verdict(self, dst_ip: str, port: int) -> Verdict:
        if self.rules.matches(dst_ip, port):
            return self.action
        return Verdict.ALLOW


class TlsInterceptor(Middlebox):
    """A TLS-inspecting proxy that re-signs server certificates.

    ``resign(original_chain)`` must be wired by the scenario to a
    certificate authority owned by the device (see
    :func:`repro.tlssim.certs.resign_chain`). ``ports`` limits which
    destination ports are inspected; the paper found 3 devices that only
    intercept 443 while most intercept both 443 and 853.
    """

    def __init__(self, name: str, ca, ports: Tuple[int, ...] = (443, 853),
                 vendor: str = "generic-dpi"):
        self.name = name
        self.ca = ca
        self.ports = ports
        self.vendor = vendor
        self._config_cache: Dict[Tuple[str, int, Optional[str]], TlsConfig] = {}

    def intercept_tls(self, dst_ip: str, port: int,
                      server_name: Optional[str]) -> Optional[TlsConfig]:
        if port not in self.ports:
            return None
        key = (dst_ip, port, server_name)
        config = self._config_cache.get(key)
        if config is None:
            from repro.tlssim.certs import resign_for
            chain = resign_for(self.ca, server_name or dst_ip)
            config = TlsConfig(cert_chain=chain, supports_resumption=True)
            self._config_cache[key] = config
        return config


class IpConflictDevice:
    """A LAN device that answers on a public resolver's address.

    Not a :class:`Middlebox`: it does not sit on the path, it *replaces*
    the destination inside the client's network. Holds the local
    :class:`Host` standing in for the squatted address.
    """

    def __init__(self, claimed_ip: str, device: Host, kind: str):
        self.claimed_ip = claimed_ip
        self.device = device
        #: Device category for Table 5 analysis, e.g. ``"router"``,
        #: ``"modem"``, ``"blackhole"``, ``"hijacked-router"``.
        self.kind = kind
