"""Geography: countries, coordinates and great-circle distances.

The table below drives three things: the latency model (propagation
delay between client and resolver points of presence), the vantage-point
population (``proxy_weight`` approximates the ProxyRack endpoint
distribution of Figure 6), and per-country access quality (``last_mile_ms``
models the residential last hop, which dominates latency variance in
countries the paper highlights, e.g. Indonesia).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ScenarioError


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe."""

    lat: float
    lon: float


@dataclass(frozen=True)
class Country:
    """A country participating in the simulation."""

    code: str
    name: str
    point: GeoPoint
    #: Median residential last-mile RTT contribution in milliseconds.
    last_mile_ms: float
    #: Relative share of residential proxy endpoints located here.
    proxy_weight: float
    #: Wider region label used for PoP selection.
    region: str


def _country(code: str, name: str, lat: float, lon: float,
             last_mile_ms: float, proxy_weight: float,
             region: str) -> Country:
    return Country(code, name, GeoPoint(lat, lon), last_mile_ms,
                   proxy_weight, region)


#: All countries known to the simulation, keyed by ISO-3166 alpha-2 code.
COUNTRIES: Dict[str, Country] = {
    entry.code: entry for entry in [
        # Americas
        _country("US", "United States", 39.8, -98.6, 12.0, 9.0, "NA"),
        _country("CA", "Canada", 56.1, -106.3, 13.0, 1.6, "NA"),
        _country("MX", "Mexico", 23.6, -102.5, 22.0, 1.2, "NA"),
        _country("BR", "Brazil", -14.2, -51.9, 24.0, 6.5, "SA"),
        _country("AR", "Argentina", -38.4, -63.6, 26.0, 1.4, "SA"),
        _country("CL", "Chile", -35.7, -71.5, 22.0, 0.7, "SA"),
        _country("CO", "Colombia", 4.6, -74.1, 25.0, 1.1, "SA"),
        _country("PE", "Peru", -9.2, -75.0, 27.0, 0.6, "SA"),
        _country("VE", "Venezuela", 6.4, -66.6, 30.0, 0.6, "SA"),
        _country("EC", "Ecuador", -1.8, -78.2, 26.0, 0.4, "SA"),
        # Europe
        _country("GB", "United Kingdom", 55.4, -3.4, 10.0, 3.2, "EU"),
        _country("DE", "Germany", 51.2, 10.5, 10.0, 3.6, "EU"),
        _country("FR", "France", 46.2, 2.2, 10.0, 2.8, "EU"),
        _country("NL", "Netherlands", 52.1, 5.3, 8.0, 1.5, "EU"),
        _country("IE", "Ireland", 53.4, -8.2, 10.0, 0.6, "EU"),
        _country("ES", "Spain", 40.5, -3.7, 12.0, 1.8, "EU"),
        _country("IT", "Italy", 41.9, 12.6, 13.0, 2.2, "EU"),
        _country("PT", "Portugal", 39.4, -8.2, 12.0, 0.6, "EU"),
        _country("PL", "Poland", 51.9, 19.1, 12.0, 1.8, "EU"),
        _country("CZ", "Czechia", 49.8, 15.5, 11.0, 0.8, "EU"),
        _country("AT", "Austria", 47.5, 14.6, 10.0, 0.6, "EU"),
        _country("CH", "Switzerland", 46.8, 8.2, 9.0, 0.5, "EU"),
        _country("SE", "Sweden", 60.1, 18.6, 9.0, 0.8, "EU"),
        _country("NO", "Norway", 60.5, 8.5, 9.0, 0.4, "EU"),
        _country("DK", "Denmark", 56.3, 9.5, 9.0, 0.4, "EU"),
        _country("FI", "Finland", 61.9, 25.7, 10.0, 0.4, "EU"),
        _country("BE", "Belgium", 50.5, 4.5, 9.0, 0.6, "EU"),
        _country("GR", "Greece", 39.1, 21.8, 14.0, 0.6, "EU"),
        _country("RO", "Romania", 45.9, 25.0, 12.0, 1.0, "EU"),
        _country("HU", "Hungary", 47.2, 19.5, 11.0, 0.6, "EU"),
        _country("BG", "Bulgaria", 42.7, 25.5, 12.0, 0.6, "EU"),
        _country("RS", "Serbia", 44.0, 21.0, 13.0, 0.5, "EU"),
        _country("UA", "Ukraine", 48.4, 31.2, 14.0, 1.6, "EU"),
        _country("RU", "Russia", 61.5, 105.3, 16.0, 4.5, "EU"),
        _country("TR", "Turkey", 39.0, 35.2, 16.0, 1.6, "EU"),
        # Asia-Pacific
        _country("CN", "China", 35.9, 104.2, 18.0, 0.25, "AP"),
        _country("HK", "Hong Kong", 22.3, 114.2, 10.0, 0.7, "AP"),
        _country("TW", "Taiwan", 23.7, 121.0, 11.0, 0.8, "AP"),
        _country("JP", "Japan", 36.2, 138.3, 9.0, 1.6, "AP"),
        _country("KR", "South Korea", 35.9, 127.8, 8.0, 0.9, "AP"),
        _country("SG", "Singapore", 1.35, 103.8, 8.0, 0.5, "AP"),
        _country("MY", "Malaysia", 4.2, 102.0, 18.0, 1.0, "AP"),
        _country("TH", "Thailand", 15.9, 100.99, 17.0, 1.4, "AP"),
        _country("VN", "Vietnam", 14.1, 108.3, 24.0, 2.6, "AP"),
        _country("ID", "Indonesia", -0.8, 113.9, 30.0, 4.2, "AP"),
        _country("PH", "Philippines", 12.9, 121.8, 26.0, 1.8, "AP"),
        _country("IN", "India", 20.6, 79.0, 28.0, 5.5, "AP"),
        _country("PK", "Pakistan", 30.4, 69.3, 30.0, 1.2, "AP"),
        _country("BD", "Bangladesh", 23.7, 90.4, 30.0, 1.0, "AP"),
        _country("LK", "Sri Lanka", 7.9, 80.8, 26.0, 0.4, "AP"),
        _country("AU", "Australia", -25.3, 133.8, 12.0, 1.4, "AP"),
        _country("NZ", "New Zealand", -40.9, 174.9, 12.0, 0.4, "AP"),
        _country("LA", "Laos", 19.9, 102.5, 32.0, 0.2, "AP"),
        _country("KH", "Cambodia", 12.6, 105.0, 30.0, 0.3, "AP"),
        _country("MM", "Myanmar", 21.9, 95.96, 34.0, 0.3, "AP"),
        _country("NP", "Nepal", 28.4, 84.1, 32.0, 0.3, "AP"),
        _country("KZ", "Kazakhstan", 48.0, 66.9, 22.0, 0.5, "AP"),
        # Middle East & Africa
        _country("IL", "Israel", 31.0, 34.9, 12.0, 0.6, "ME"),
        _country("SA", "Saudi Arabia", 23.9, 45.1, 18.0, 0.7, "ME"),
        _country("AE", "United Arab Emirates", 23.4, 53.8, 14.0, 0.6, "ME"),
        _country("IR", "Iran", 32.4, 53.7, 24.0, 0.8, "ME"),
        _country("IQ", "Iraq", 33.2, 43.7, 28.0, 0.5, "ME"),
        _country("EG", "Egypt", 26.8, 30.8, 24.0, 1.2, "AF"),
        _country("ZA", "South Africa", -30.6, 22.9, 20.0, 1.0, "AF"),
        _country("NG", "Nigeria", 9.1, 8.7, 34.0, 0.9, "AF"),
        _country("KE", "Kenya", -0.02, 37.9, 28.0, 0.5, "AF"),
        _country("MA", "Morocco", 31.8, -7.1, 22.0, 0.6, "AF"),
        _country("TN", "Tunisia", 33.9, 9.5, 22.0, 0.4, "AF"),
        _country("DZ", "Algeria", 28.0, 1.7, 26.0, 0.5, "AF"),
        _country("GH", "Ghana", 7.9, -1.0, 32.0, 0.3, "AF"),
    ]
}

EARTH_RADIUS_KM = 6371.0


def country(code: str) -> Country:
    """Look up a country by ISO code, raising a clear error when unknown."""
    try:
        return COUNTRIES[code]
    except KeyError:
        raise ScenarioError(f"unknown country code {code!r}") from None


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    sin_dlat = math.sin((lat2 - lat1) / 2.0)
    sin_dlon = math.sin((lon2 - lon1) / 2.0)
    h = (sin_dlat * sin_dlat
         + math.cos(lat1) * math.cos(lat2) * sin_dlon * sin_dlon)
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def nearest(point: GeoPoint,
            candidates: Tuple[GeoPoint, ...]) -> Tuple[int, float]:
    """Index and distance of the candidate closest to ``point``."""
    if not candidates:
        raise ScenarioError("nearest() needs at least one candidate")
    best_index, best_km = 0, float("inf")
    for index, candidate in enumerate(candidates):
        km = great_circle_km(point, candidate)
        if km < best_km:
            best_index, best_km = index, km
    return best_index, best_km
