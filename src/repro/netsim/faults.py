"""Deterministic fault injection for the simulated transports.

The paper's client-side study (Section 4, Tables 5-6) is a study of
*failure*: timeouts, resets, interception and unreachable resolvers are
the data. This module makes those failures first-class and schedulable:
a :class:`FaultPlan` describes which faults to inject where, and a
seeded :class:`FaultInjector` executes the plan from inside
:mod:`repro.netsim.transport`, raising the same :mod:`repro.errors`
classes real network conditions produce.

Determinism contract: an injector's decisions are a pure function of
``(seed, plan, sequence of consults)``. An injector holding an *empty*
plan draws no randomness at all, so installing one perturbs nothing —
the no-regression guard the chaos suite relies on.

Plan specs are compact strings, one rule per ``;``-separated clause::

    reset host=1.1.1.1 port=853 p=0.5 max=3
    slow host=* port=443 ms=250
    tls host=9.9.9.9 p=1.0
    drop-after host=* bytes=512

The first token is the fault kind; the rest are ``key=value`` matchers
and parameters. ``host`` accepts ``fnmatch`` globs (``1.1.*``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    ReproError,
    ScenarioError,
    TimeoutError_,
    TlsError,
)
from repro.netsim.rand import SeededRng
from repro.telemetry import BoundCounterFamily

_FAULTS_INJECTED = BoundCounterFamily("faults.injected",
                                      "kind", "op", "protocol")


class FaultKind(enum.Enum):
    """What kind of failure a rule injects.

    The kinds mirror the paper's observed failure causes: ``refuse``
    (nothing listens — Table 5's closed ports), ``timeout`` (silent
    drop — the GFW-style blackhole), ``reset`` (in-path RST injection),
    ``slow`` (congested last mile, latency spike only), ``tls``
    (handshake interference) and ``drop-after`` (a middlebox that kills
    long-lived connections once they carry real traffic).
    """

    REFUSE = "refuse"
    TIMEOUT = "timeout"
    RESET = "reset"
    SLOW = "slow"
    TLS = "tls"
    DROP_AFTER = "drop-after"


#: Which injection points each kind participates in. ``connect`` and
#: ``request`` are TCP phases, ``tls`` the handshake, ``udp`` a datagram
#: exchange, ``probe`` a ZMap SYN probe.
_OPS_BY_KIND: Dict[FaultKind, frozenset] = {
    FaultKind.REFUSE: frozenset({"connect", "udp", "probe"}),
    FaultKind.TIMEOUT: frozenset({"connect", "request", "udp", "probe"}),
    FaultKind.RESET: frozenset({"connect", "request"}),
    FaultKind.SLOW: frozenset({"connect", "request", "udp", "tls"}),
    FaultKind.TLS: frozenset({"tls"}),
    FaultKind.DROP_AFTER: frozenset({"request"}),
}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: what to inject, where, how often."""

    kind: FaultKind
    host: str = "*"
    port: Optional[int] = None
    protocol: str = "*"
    #: Probability each matching consult triggers the fault.
    probability: float = 1.0
    #: Stop triggering after this many injections (None = unlimited).
    max_hits: Optional[int] = None
    #: Extra latency for ``slow`` faults (and the simulated time an
    #: injected reset/refusal consumes before surfacing).
    latency_ms: float = 250.0
    #: ``drop-after`` threshold: trigger once a connection has carried
    #: more than this many payload bytes.
    after_bytes: int = 0

    def matches(self, op: str, host: str, port: int, protocol: str) -> bool:
        if op not in _OPS_BY_KIND[self.kind]:
            return False
        if self.port is not None and self.port != port:
            return False
        if self.protocol != "*" and self.protocol != protocol:
            return False
        return self.host == "*" or fnmatchcase(host, self.host)

    def describe(self) -> str:
        """Canonical one-line spec clause (parse/describe round-trips)."""
        parts = [self.kind.value, f"host={self.host}"]
        if self.port is not None:
            parts.append(f"port={self.port}")
        if self.protocol != "*":
            parts.append(f"proto={self.protocol}")
        parts.append(f"p={self.probability:g}")
        if self.max_hits is not None:
            parts.append(f"max={self.max_hits}")
        if self.kind is FaultKind.SLOW:
            parts.append(f"ms={self.latency_ms:g}")
        if self.kind is FaultKind.DROP_AFTER:
            parts.append(f"bytes={self.after_bytes}")
        return " ".join(parts)


_KINDS_BY_NAME = {kind.value: kind for kind in FaultKind}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules plus the spec they parsed from."""

    rules: Tuple[FaultRule, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.rules

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``;``-separated rule spec (see module docstring)."""
        rules: List[FaultRule] = []
        for clause in (spec or "").split(";"):
            clause = clause.strip()
            if not clause:
                continue
            rules.append(cls._parse_clause(clause))
        return cls(rules=tuple(rules))

    @staticmethod
    def _parse_clause(clause: str) -> FaultRule:
        tokens = clause.split()
        kind = _KINDS_BY_NAME.get(tokens[0])
        if kind is None:
            raise ScenarioError(
                f"unknown fault kind {tokens[0]!r} "
                f"(expected one of {sorted(_KINDS_BY_NAME)})")
        params: Dict[str, object] = {"kind": kind}
        for token in tokens[1:]:
            if "=" not in token:
                raise ScenarioError(
                    f"malformed fault parameter {token!r} in {clause!r}")
            key, value = token.split("=", 1)
            try:
                if key == "host":
                    params["host"] = value
                elif key == "port":
                    params["port"] = int(value)
                elif key == "proto":
                    params["protocol"] = value
                elif key == "p":
                    params["probability"] = float(value)
                elif key == "max":
                    params["max_hits"] = int(value)
                elif key == "ms":
                    params["latency_ms"] = float(value)
                elif key == "bytes":
                    params["after_bytes"] = int(value)
                else:
                    raise ScenarioError(
                        f"unknown fault parameter {key!r} in {clause!r}")
            except ValueError as error:
                raise ScenarioError(
                    f"bad value for {key!r} in {clause!r}: {error}")
        rule = FaultRule(**params)  # type: ignore[arg-type]
        if not 0.0 <= rule.probability <= 1.0:
            raise ScenarioError(
                f"probability {rule.probability} outside [0, 1] "
                f"in {clause!r}")
        return rule

    def describe(self) -> str:
        """Canonical spec string — what the :class:`RunManifest` records."""
        return "; ".join(rule.describe() for rule in self.rules)


@dataclass
class InjectedFault:
    """What one consult decided (telemetry + caller bookkeeping)."""

    rule: FaultRule
    #: TransportError subclass, or TlsError for handshake faults.
    error: Optional[ReproError]
    latency_ms: float


class FaultInjector:
    """Executes a :class:`FaultPlan` with seeded, per-rule randomness.

    One injector instance belongs to one :class:`~repro.netsim.network.
    Network`; the transports consult it at every connect, request, TLS
    handshake and UDP exchange. Rules are evaluated in plan order; the
    first triggering *error* rule wins, while ``slow`` rules accumulate
    latency and let the operation proceed.
    """

    def __init__(self, plan: FaultPlan, rng: SeededRng):
        self.plan = plan
        #: Per-rule independent streams: consulting one rule more often
        #: (because a retry policy re-drives it) never perturbs another.
        self._rule_rngs = [rng.fork(f"rule-{index}")
                           for index in range(len(plan.rules))]
        self._hits = [0] * len(plan.rules)

    # -- decision core -----------------------------------------------------

    def decide(self, op: str, host: str, port: int, protocol: str,
               total_bytes: int = 0) -> Optional[InjectedFault]:
        """First triggering rule for this consult, or None.

        Matching happens *before* any randomness is drawn, so consults
        that no rule matches (in particular: every consult under an
        empty plan) consume nothing and stay invisible to determinism.
        """
        slow_ms = 0.0
        slow_rule: Optional[FaultRule] = None
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(op, host, port, protocol):
                continue
            if rule.max_hits is not None and self._hits[index] >= rule.max_hits:
                continue
            if (rule.kind is FaultKind.DROP_AFTER
                    and total_bytes <= rule.after_bytes):
                continue
            if not self._rule_rngs[index].chance(rule.probability):
                continue
            self._hits[index] += 1
            if rule.kind is FaultKind.SLOW:
                slow_ms += rule.latency_ms
                slow_rule = rule
                self._record(rule, op, protocol)
                continue
            error = self._make_error(rule, op, host, port, protocol)
            self._record(rule, op, protocol)
            return InjectedFault(rule=rule, error=error,
                                 latency_ms=slow_ms + rule.latency_ms)
        if slow_rule is not None:
            return InjectedFault(rule=slow_rule, error=None,
                                 latency_ms=slow_ms)
        return None

    def inject(self, op: str, host: str, port: int, protocol: str,
               timeout_s: float = 30.0, total_bytes: int = 0) -> float:
        """Transport-side entry point.

        Raises the scheduled error (with ``elapsed_ms`` attached, like
        every organic transport failure) or returns extra latency in
        milliseconds to add to the operation (0.0 when nothing fired).
        """
        fault = self.decide(op, host, port, protocol,
                            total_bytes=total_bytes)
        if fault is None:
            return 0.0
        if fault.error is None:
            return fault.latency_ms
        elapsed = (timeout_s * 1000.0
                   if isinstance(fault.error, TimeoutError_)
                   else fault.latency_ms)
        fault.error.elapsed_ms = elapsed  # type: ignore[attr-defined]
        raise fault.error

    def probe_lost(self, host: str, port: int,
                   protocol: str = "tcp") -> bool:
        """Whether a sweep probe to ``host:port`` goes unanswered.

        TCP SYN probes by default; the UDP discovery sweeps (DoQ 784,
        DNSCrypt 443) consult with ``protocol="udp"`` so ``proto=udp``
        rules reach them without touching the TCP sweeps.
        """
        fault = self.decide("probe", host, port, protocol)
        return fault is not None and fault.error is not None

    def hits(self, rule_index: int) -> int:
        """How many times one rule has triggered so far."""
        return self._hits[rule_index]

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _make_error(rule: FaultRule, op: str, host: str, port: int,
                    protocol: str) -> ReproError:
        where = f"{host}:{port} ({protocol})"
        if rule.kind is FaultKind.REFUSE:
            return ConnectionRefused(f"injected refusal at {where}")
        if rule.kind is FaultKind.RESET:
            return ConnectionReset(f"injected reset at {where} during {op}")
        if rule.kind is FaultKind.TLS:
            return TlsError(f"injected TLS handshake failure at {where}")
        if rule.kind is FaultKind.DROP_AFTER:
            return TimeoutError_(
                f"injected drop after {rule.after_bytes} bytes at {where}")
        return TimeoutError_(f"injected timeout at {where} during {op}")

    @staticmethod
    def _record(rule: FaultRule, op: str, protocol: str) -> None:
        _FAULTS_INJECTED.get(rule.kind.value, op, protocol).inc()


#: Per-protocol censored-network presets (Section 4's blocked-network
#: conditions, extended to the four-protocol pipeline). Each spec kills
#: exactly one encrypted transport: the DoQ preset blackholes UDP 784
#: (clients fall back per their plan, typically to DoT), the DNSCrypt
#: preset blackholes UDP 443 *without* touching DoH's TCP 443 — the
#: ``proto=`` matcher is what keeps the two port-443 protocols
#: independently censorable.
CENSORSHIP_PRESETS: Dict[str, str] = {
    "doq-blocked": "timeout host=* port=784 proto=udp p=1",
    "dot-blocked": "timeout host=* port=853 proto=tcp p=1",
    "doh-blocked": "timeout host=* port=443 proto=tcp p=1",
    "dnscrypt-blocked": "timeout host=* port=443 proto=udp p=1",
}


def censorship_plan(preset: str) -> FaultPlan:
    """The parsed :class:`FaultPlan` for one censorship preset."""
    spec = CENSORSHIP_PRESETS.get(preset)
    if spec is None:
        raise ScenarioError(
            f"unknown censorship preset {preset!r} "
            f"(expected one of {sorted(CENSORSHIP_PRESETS)})")
    return FaultPlan.parse(spec)
