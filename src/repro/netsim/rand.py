"""Seeded, forkable randomness.

A single scenario seed fans out into independent named streams via
:meth:`SeededRng.fork`, so adding randomness to one subsystem never
perturbs another — the property that keeps large simulated campaigns
stable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


def keyed_offset(key: str, index: int, modulus: int) -> int:
    """A stateless hash draw: ``hash(key, index) % modulus``.

    Procedural world segments use this to decide *which* address in a
    block is open without materialising (or even enumerating) the block:
    the answer is a pure function of ``(key, index)``, so membership
    checks, streaming sweeps and eager materialisation all agree no
    matter what order they ask in. blake2b rather than ``random`` so a
    single probe costs one short hash and no generator state.
    """
    if modulus <= 1:
        return 0
    digest = hashlib.blake2b(f"{key}:{index}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % modulus


class SeededRng:
    """A deterministic random stream derived from a seed and a path."""

    __slots__ = ("seed", "path", "_random")

    def __init__(self, seed: int, path: str = ""):
        self.seed = int(seed)
        self.path = path
        # ``_random`` is built lazily (see __getattr__): forks are cheap
        # to create and many are never drawn from (per-host streams for
        # hosts a shard skips), so deferring the sha256 + Random
        # construction to first use keeps fork fan-out nearly free. The
        # derivation — sha256(f"{seed}:{path}") truncated to 8 bytes —
        # must never change: every recorded artefact depends on it.

    def __getattr__(self, name: str):
        if name == "_random":
            digest = hashlib.sha256(
                f"{self.seed}:{self.path}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            object.__setattr__(self, "_random", rng)
            return rng
        raise AttributeError(name)

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent stream for a named subsystem."""
        child_path = f"{self.path}/{name}" if self.path else name
        return SeededRng(self.seed, child_path)

    # -- thin wrappers ----------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, population: Sequence[T]) -> T:
        return self._random.choice(population)

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        return self._random.sample(population, count)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def gauss(self, mean: float, stddev: float) -> float:
        return self._random.gauss(mean, stddev)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormal(self, mean: float, sigma: float) -> float:
        return self._random.lognormvariate(mean, sigma)

    def pareto(self, alpha: float) -> float:
        return self._random.paretovariate(alpha)

    # -- composite helpers -------------------------------------------------

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def binomial(self, trials: int, probability: float) -> int:
        """Number of successes in ``trials`` Bernoulli draws.

        Uses a normal approximation for large ``trials`` so that sampling
        millions of packets per flow stays O(1).
        """
        if trials <= 0 or probability <= 0.0:
            return 0
        if probability >= 1.0:
            return trials
        mean = trials * probability
        if trials > 300:
            variance = mean * (1.0 - probability)
            draw = round(self._random.gauss(mean, variance ** 0.5))
            return max(0, min(trials, draw))
        return sum(1 for _ in range(trials)
                   if self._random.random() < probability)

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        return self._random.choices(list(items), weights=list(weights))[0]

    def clipped_gauss(self, mean: float, stddev: float,
                      low: float, high: Optional[float] = None) -> float:
        value = self._random.gauss(mean, stddev)
        if high is not None:
            value = min(value, high)
        return max(low, value)

    def token(self, length: int = 12) -> str:
        """A lowercase alphanumeric token, e.g. for unique probe prefixes."""
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(self._random.choice(alphabet) for _ in range(length))

    def __repr__(self) -> str:
        return f"SeededRng(seed={self.seed}, path={self.path!r})"
