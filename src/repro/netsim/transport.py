"""Simulated transports: TCP connections, TLS channels, UDP exchanges.

Latency accounting follows the cost model the paper discusses in
Section 4.3:

* TCP connect: 1 RTT,
* full TLS handshake: 2 RTTs plus cryptographic CPU time,
* resumed TLS handshake: 1 RTT,
* each request/response on an established connection: 1 RTT,

so connection reuse amortises the TLS setup exactly as RFC 7858 intends.
Every operation accumulates into :attr:`TcpConnection.elapsed_ms` and the
last operation's cost is kept in :attr:`last_op_ms`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    TimeoutError_,
    TlsError,
    TransportError,
)
from repro.netsim.host import Host, Service, ServiceContext, TlsConfig
from repro.netsim.latency import PathProfile
from repro.netsim.middlebox import Verdict
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundHistogram,
)

DEFAULT_TIMEOUT_S = 30.0

# Transport metrics fire on every simulated exchange — bound handles
# keep the per-operation cost to one attribute check + method call.
_CONNECTIONS_OPENED = BoundCounter("netsim.transport.connections_opened")
_RTT_MS = BoundHistogram("netsim.transport.rtt_ms")
_REQUESTS = BoundCounterFamily("netsim.transport.requests", "protocol")
_BYTES_SENT = BoundCounterFamily("netsim.transport.bytes_sent", "protocol")
_TLS_HANDSHAKES = BoundCounterFamily("netsim.tls.handshakes", "resumed")


def _attach_elapsed(error: TransportError, elapsed_ms: float) -> TransportError:
    error.elapsed_ms = elapsed_ms  # type: ignore[attr-defined]
    return error


def _apply_verdicts(devices, check, elapsed_on_drop_ms: float):
    """Run middlebox verdicts; raise on DROP/RESET."""
    for device in devices:
        verdict = check(device)
        if verdict is Verdict.ALLOW:
            continue
        if verdict is Verdict.DROP:
            raise _attach_elapsed(
                TimeoutError_(f"dropped by {device.name}"),
                elapsed_on_drop_ms)
        raise _attach_elapsed(
            ConnectionReset(f"reset by {device.name}"), 2.0)


class TcpConnection:
    """An established TCP connection to one service."""

    def __init__(self, network: Network, env: ClientEnvironment,
                 host: Host, service: Service, port: int,
                 profile: PathProfile, rng: SeededRng, is_local: bool):
        self.network = network
        self.env = env
        self.host = host
        self.service = service
        self.port = port
        self.profile = profile
        self.rng = rng
        self.is_local = is_local
        self.elapsed_ms = 0.0
        self.last_op_ms = 0.0
        self.closed = False
        self.requests_sent = 0
        #: Payload bytes carried so far (drives drop-after-N-bytes faults).
        self.bytes_sent = 0

    # -- establishment ------------------------------------------------------

    @classmethod
    def open(cls, network: Network, env: ClientEnvironment, dst_ip: str,
             port: int, rng: SeededRng,
             timeout_s: float = DEFAULT_TIMEOUT_S) -> "TcpConnection":
        """TCP three-way handshake, 1 RTT on success."""
        injected_ms = 0.0
        if network.fault_injector is not None:
            # Scheduled faults fire before path devices: they model
            # conditions between the client and everything else.
            injected_ms = network.fault_injector.inject(
                "connect", dst_ip, port, "tcp", timeout_s=timeout_s)
        devices = network.path_devices(env)
        where, host = network.resolve_destination(env, dst_ip)
        if where != "local":
            # Local conflicts short-circuit the path before any middlebox.
            _apply_verdicts(devices,
                            lambda d: d.tcp_verdict(dst_ip, port),
                            timeout_s * 1000.0)
        if host is None:
            raise _attach_elapsed(
                HostUnreachable(f"no host at {dst_ip}"),
                timeout_s * 1000.0)
        service = host.service_on("tcp", port)
        if service is None:
            refusal_rtt = (network.latency.lan_rtt_ms(rng) if where == "local"
                           else cls._profile_for(network, env, host,
                                                 dst_ip, port).base_rtt_ms)
            raise _attach_elapsed(
                ConnectionRefused(f"{dst_ip}:{port} (tcp) refused"),
                refusal_rtt)
        if where == "local":
            profile = PathProfile(propagation_ms=0.0,
                                  last_mile_ms=network.latency.lan_rtt_ms(rng),
                                  processing_ms=host.processing_ms)
        else:
            profile = cls._profile_for(network, env, host, dst_ip, port)
        connection = cls(network, env, host, service, port, profile, rng,
                         is_local=(where == "local"))
        rtt_ms = network.latency.sample_rtt_ms(profile, rng) + injected_ms
        connection._spend(rtt_ms)
        _CONNECTIONS_OPENED.inc()
        _RTT_MS.observe(rtt_ms)
        return connection

    @staticmethod
    def _profile_for(network: Network, env: ClientEnvironment, host: Host,
                     dst_ip: str, port: int) -> PathProfile:
        return network.latency.path(
            env.point, env.last_mile_ms, host.pops, host.processing_ms,
            penalty_ms=env.route_penalty_ms(dst_ip, port))

    # -- data transfer --------------------------------------------------------

    def request(self, payload: Any, encrypted: bool = False,
                server_name: Optional[str] = None,
                intercepted_by: Optional[str] = None,
                extra_server_ms: float = 0.0) -> Any:
        """One request/response exchange: 1 RTT plus server-side cost."""
        if self.closed:
            raise TransportError("connection already closed")
        injected_ms = 0.0
        if self.network.fault_injector is not None:
            size = (len(payload)
                    if isinstance(payload, (bytes, bytearray)) else 256)
            try:
                injected_ms = self.network.fault_injector.inject(
                    "request", self.host.address, self.port, "tcp",
                    timeout_s=DEFAULT_TIMEOUT_S,
                    total_bytes=self.bytes_sent + size)
            except TransportError:
                # A mid-stream reset or drop kills the connection.
                self.close()
                raise
        ctx = ServiceContext(
            client_address=self.env.address,
            server_address=self.host.address,
            port=self.port,
            protocol="tcp",
            timestamp=self.network.clock.now(),
            client_country=self.env.country_code,
            encrypted=encrypted,
            server_name=server_name,
            intercepted_by=intercepted_by,
        )
        response = self.service.handle(payload, ctx)
        cost = (self.network.latency.sample_rtt_ms(self.profile, self.rng)
                + self.service.extra_latency_ms(self.rng, ctx)
                + extra_server_ms + injected_ms)
        self._spend(cost)
        self.requests_sent += 1
        size = len(payload) if isinstance(payload, (bytes, bytearray)) else 256
        self.bytes_sent += size
        _REQUESTS.get("tcp").inc()
        _BYTES_SENT.get("tcp").inc(size)
        self.network.notify_taps(self.env, self.host, self.port, "tcp", size)
        return response

    def spend_rtts(self, count: float, crypto_ms: float = 0.0) -> None:
        """Account for protocol phases that consume round trips."""
        total = 0.0
        whole = int(count)
        for _ in range(whole):
            total += self.network.latency.sample_rtt_ms(self.profile, self.rng)
        fraction = count - whole
        if fraction:
            total += fraction * self.network.latency.sample_rtt_ms(
                self.profile, self.rng)
        self._spend(total + crypto_ms)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "TcpConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spend(self, milliseconds: float) -> None:
        self.last_op_ms = milliseconds
        self.elapsed_ms += milliseconds


class TlsChannel:
    """TLS on top of an established :class:`TcpConnection`.

    The channel resolves which certificate chain the client actually sees:
    the service's own, or a re-signed chain presented by an intercepting
    middlebox (which then proxies the session to the origin, so
    application data still flows — exactly the DoT-proxy behaviour of
    Finding 2.3).
    """

    #: CPU cost of a full handshake (both sides), milliseconds.
    HANDSHAKE_CRYPTO_MS = 2.2
    #: Per-record encryption cost, milliseconds.
    RECORD_CRYPTO_MS = 0.25

    def __init__(self, connection: TcpConnection,
                 server_name: Optional[str] = None):
        self.connection = connection
        self.server_name = server_name
        self.established = False
        self.resumed = False
        self.intercepted_by: Optional[str] = None
        self.presented_config: Optional[TlsConfig] = None

    @property
    def presented_chain(self) -> tuple:
        if self.presented_config is None:
            raise TlsError("handshake has not completed")
        return self.presented_config.cert_chain

    def handshake(self, resume: bool = False) -> "TlsChannel":
        """Perform the TLS handshake; 2 RTTs full, 1 RTT resumed."""
        connection = self.connection
        injected_ms = 0.0
        if connection.network.fault_injector is not None:
            injected_ms = connection.network.fault_injector.inject(
                "tls", connection.host.address, connection.port, "tcp")
        interceptor = self._find_interceptor()
        if interceptor is not None:
            device, config = interceptor
            self.intercepted_by = device.name
            self.presented_config = config
        else:
            config = connection.service.tls
            if config is None:
                raise _attach_elapsed(
                    TlsError(f"{connection.host.address}:{connection.port} "
                             "does not speak TLS"),
                    connection.network.latency.sample_rtt_ms(
                        connection.profile, connection.rng))
            self.presented_config = config
        can_resume = resume and self.presented_config.supports_resumption
        rtts = 1 if can_resume else 2
        crypto = (self.HANDSHAKE_CRYPTO_MS / 2.0 if can_resume
                  else self.HANDSHAKE_CRYPTO_MS)
        connection.spend_rtts(rtts, crypto_ms=crypto + injected_ms)
        self.established = True
        self.resumed = can_resume
        _TLS_HANDSHAKES.get("true" if can_resume else "false").inc()
        return self

    def request(self, payload: Any, extra_server_ms: float = 0.0) -> Any:
        """One encrypted request/response exchange."""
        if not self.established:
            raise TlsError("request on a channel before handshake")
        return self.connection.request(
            payload,
            encrypted=True,
            server_name=self.server_name,
            intercepted_by=self.intercepted_by,
            extra_server_ms=extra_server_ms + self.RECORD_CRYPTO_MS,
        )

    def _find_interceptor(self):
        connection = self.connection
        if connection.is_local:
            # A LAN device already terminates the connection; nothing on
            # the wider path sees it.
            return None
        devices = connection.network.path_devices(connection.env)
        for device in devices:
            config = device.intercept_tls(connection.host.address,
                                          connection.port, self.server_name)
            if config is not None:
                return device, config
        return None


class UdpExchange:
    """Single-datagram request/response semantics (clear-text DNS)."""

    @staticmethod
    def exchange(network: Network, env: ClientEnvironment, dst_ip: str,
                 port: int, payload: Any, rng: SeededRng,
                 timeout_s: float = 5.0):
        """Send one datagram and wait for one response.

        Returns ``(response, elapsed_ms)``. Raises transport errors with
        ``elapsed_ms`` attached.
        """
        injected_ms = 0.0
        if network.fault_injector is not None:
            injected_ms = network.fault_injector.inject(
                "udp", dst_ip, port, "udp", timeout_s=timeout_s)
        devices = network.path_devices(env)
        where, host = network.resolve_destination(env, dst_ip)
        if where != "local":
            for device in devices:
                if device.spoof_dns(dst_ip, port):
                    spoofer = getattr(device, "spoof_handler", None)
                    if spoofer is not None:
                        response = spoofer(payload)
                        # The spoofing device is closer than the real
                        # destination; answer arrives fast.
                        elapsed = max(2.0, env.last_mile_ms
                                      * rng.lognormal(0.0, 0.1))
                        return response, elapsed
            _apply_verdicts(devices,
                            lambda d: d.udp_verdict(dst_ip, port),
                            timeout_s * 1000.0)
        if host is None:
            raise _attach_elapsed(
                TimeoutError_(f"no response from {dst_ip}"),
                timeout_s * 1000.0)
        service = host.service_on("udp", port)
        if service is None:
            # ICMP port unreachable comes back after one RTT.
            raise _attach_elapsed(
                ConnectionRefused(f"{dst_ip}:{port} (udp) unreachable"),
                2.0)
        if where == "local":
            elapsed = network.latency.lan_rtt_ms(rng) + host.processing_ms
        else:
            profile = network.latency.path(
                env.point, env.last_mile_ms, host.pops, host.processing_ms,
                penalty_ms=env.route_penalty_ms(dst_ip, port))
            elapsed = network.latency.sample_rtt_ms(profile, rng)
        ctx = ServiceContext(
            client_address=env.address,
            server_address=host.address,
            port=port,
            protocol="udp",
            timestamp=network.clock.now(),
            client_country=env.country_code,
        )
        response = service.handle(payload, ctx)
        elapsed += service.extra_latency_ms(rng, ctx) + injected_ms
        size = len(payload) if isinstance(payload, (bytes, bytearray)) else 128
        _REQUESTS.get("udp").inc()
        _BYTES_SENT.get("udp").inc(size)
        _RTT_MS.observe(elapsed)
        network.notify_taps(env, host, port, "udp", size)
        return response, elapsed
