"""Round-trip-time model.

RTT between a client and a service is composed of:

* propagation over the great-circle distance (with a path-stretch factor
  for real routing detours),
* the client's residential last-mile contribution,
* the serving host's processing time,
* multiplicative jitter drawn per sample.

Anycast services expose several points of presence; the client is served
by the nearest one, which is how large resolvers (Cloudflare, Google,
Quad9) achieve low latency everywhere and why DoH can even beat a
badly-routed clear-text path (paper Finding 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.rand import SeededRng

#: Effective RTT per kilometre of great-circle distance. Fibre propagation
#: is ~0.01 ms/km round trip; real paths are longer and traverse routers,
#: so 0.02 ms/km reproduces observed inter-continental RTTs.
MS_PER_KM = 0.02

#: Floor for any exchange, even in the same city.
MIN_PATH_MS = 0.6


@dataclass(frozen=True)
class PathProfile:
    """Resolved fixed components of a client-to-service path."""

    propagation_ms: float
    last_mile_ms: float
    processing_ms: float
    #: Extra fixed detour (e.g. clear-text DNS rerouted through an
    #: interception box, or a congested transit path).
    penalty_ms: float = 0.0

    @property
    def base_rtt_ms(self) -> float:
        return max(MIN_PATH_MS, self.propagation_ms + self.last_mile_ms
                   + self.processing_ms + self.penalty_ms)


class LatencyModel:
    """Computes per-sample RTTs with deterministic jitter streams."""

    def __init__(self, jitter_sigma: float = 0.08):
        self.jitter_sigma = jitter_sigma

    def path(self, client_point: GeoPoint, last_mile_ms: float,
             pops: Tuple[GeoPoint, ...], processing_ms: float,
             penalty_ms: float = 0.0) -> PathProfile:
        """Resolve the fixed path profile to the nearest point of presence."""
        distance_km = min(
            (great_circle_km(client_point, pop) for pop in pops),
            default=great_circle_km(client_point, client_point),
        )
        return PathProfile(
            propagation_ms=distance_km * MS_PER_KM,
            last_mile_ms=last_mile_ms,
            processing_ms=processing_ms,
            penalty_ms=penalty_ms,
        )

    def sample_rtt_ms(self, profile: PathProfile, rng: SeededRng) -> float:
        """One RTT sample with multiplicative log-normal jitter."""
        jitter = rng.lognormal(0.0, self.jitter_sigma)
        return profile.base_rtt_ms * jitter

    def lan_rtt_ms(self, rng: Optional[SeededRng] = None) -> float:
        """RTT to a device on the client's own LAN (IP-conflict case)."""
        base = 1.5
        if rng is None:
            return base
        return base * rng.lognormal(0.0, 0.15)
