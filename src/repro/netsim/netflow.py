"""NetFlow-style flow records with packet sampling.

Models the collection setup of the paper's usage study: backbone routers
aggregate packets into flows keyed by the classic five-tuple, sample
packets at 1/3,000, union the TCP flags of sampled packets, and expire a
flow after 15 seconds idle. Only the behaviours the analysis depends on
are modelled; in particular single-``SYN`` records (handshakes that never
carried data) must be distinguishable so the study can exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from repro.netsim.ipv4 import slash24
from repro.netsim.rand import SeededRng


class TcpFlags:
    """TCP flag bit masks (subset relevant to flow analysis)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @staticmethod
    def to_text(flags: int) -> str:
        names = [("FIN", TcpFlags.FIN), ("SYN", TcpFlags.SYN),
                 ("RST", TcpFlags.RST), ("PSH", TcpFlags.PSH),
                 ("ACK", TcpFlags.ACK)]
        parts = [name for name, mask in names if flags & mask]
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow record."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str
    packets: int
    octets: int
    #: Union of TCP flags over the *sampled* packets of the flow.
    tcp_flags: int
    start_ts: float
    end_ts: float

    def is_single_syn(self) -> bool:
        """True for records that only ever saw SYN packets.

        The paper excludes these: "a single SYN flag indicates an
        incomplete TCP handshake and cannot contain DoT queries".
        """
        return self.tcp_flags == TcpFlags.SYN

    def src_slash24(self) -> str:
        return slash24(self.src_ip)

    def anonymized(self) -> "FlowRecord":
        """Truncate the client address to /24 (the ethics step)."""
        prefix = self.src_slash24().split("/")[0]
        return replace(self, src_ip=prefix)


@dataclass
class PacketizedFlow:
    """A ground-truth flow before sampling.

    ``data_packets`` excludes the TCP handshake; handshake packets are
    synthesized by the collector so flag unions behave realistically.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str
    data_packets: int
    avg_packet_octets: int
    start_ts: float
    duration_s: float
    completed_handshake: bool = True


class NetFlowCollector:
    """Samples packets at a fixed rate and exports flow records."""

    def __init__(self, sampling_rate: float = 1.0 / 3000.0,
                 idle_timeout_s: float = 15.0,
                 rng: Optional[SeededRng] = None):
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"bad sampling rate {sampling_rate}")
        self.sampling_rate = sampling_rate
        self.idle_timeout_s = idle_timeout_s
        self.rng = rng or SeededRng(0, "netflow")
        self._records: List[FlowRecord] = []

    def observe(self, flow: PacketizedFlow) -> Optional[FlowRecord]:
        """Sample one ground-truth flow; emit a record when any packet hits.

        Control packets (SYN / SYN-ACK / ACK / FIN) and data packets
        (PSH+ACK) are sampled independently, so a record can end up
        showing only a SYN — the artefact the analysis must filter.
        """
        syn_packets = 1 if flow.completed_handshake else 2  # retries
        control_packets = 3 if flow.completed_handshake else 0
        sampled_syn = self.rng.binomial(syn_packets, self.sampling_rate)
        sampled_control = self.rng.binomial(control_packets,
                                            self.sampling_rate)
        sampled_data = self.rng.binomial(flow.data_packets,
                                         self.sampling_rate)
        total = sampled_syn + sampled_control + sampled_data
        if total == 0:
            return None
        flags = 0
        if flow.protocol == "tcp":
            if sampled_syn:
                flags |= TcpFlags.SYN
            if sampled_control:
                flags |= TcpFlags.ACK | TcpFlags.FIN
            if sampled_data:
                flags |= TcpFlags.PSH | TcpFlags.ACK
        record = FlowRecord(
            src_ip=flow.src_ip,
            dst_ip=flow.dst_ip,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            protocol=flow.protocol,
            packets=total,
            octets=total * flow.avg_packet_octets,
            tcp_flags=flags,
            start_ts=flow.start_ts,
            end_ts=flow.start_ts + min(flow.duration_s,
                                       self.idle_timeout_s * 4),
        )
        self._records.append(record)
        return record

    def observe_all(self, flows: Iterable[PacketizedFlow]) -> int:
        """Observe many flows; returns how many records were exported."""
        emitted = 0
        for flow in flows:
            if self.observe(flow) is not None:
                emitted += 1
        return emitted

    def export(self, anonymize: bool = True) -> Tuple[FlowRecord, ...]:
        """All exported records, client /24-truncated by default."""
        if anonymize:
            return tuple(record.anonymized() for record in self._records)
        return tuple(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
