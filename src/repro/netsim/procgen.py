"""Procedural address space: hosts as pure functions of (seed, address).

The paper sweeps the entire IPv4 space; materialising one ``Host`` per
address caps the simulation at ~10^4 addresses. This module makes the
space *procedural* instead: a world is an ordered list of **segments**,
each of which can answer three questions about any address without
building anything —

* does the segment contain it?
* which TCP ports are open there?
* what Host lives there? (derived on demand by the scenario's
  stateless per-address recipe)

Two segment kinds cover the whole simulated Internet:

* :class:`ExplicitSegment` — the named world (resolvers, DoH fronts,
  the background *sample*, atlas local resolvers). Finite and small;
  ports are recorded per address at layout time.
* :class:`RangeSegment` — the scaled synthetic background. ``count``
  addresses carved from one netblock, of which exactly one per
  ``stride``-sized block is port-open. The open position is a keyed
  hash of the block index (:func:`repro.netsim.rand.keyed_offset`), so
  membership is O(1) for arbitrary addresses and a sweep enumerates
  only the open ones — flat memory at 10^6–10^7 addresses.

Determinism contract: every answer is a pure function of the segment's
construction arguments, so lazy, eager and sharded materialisation all
see the same world (pinned by ``tests/test_procedural_world.py``).
"""

from __future__ import annotations

from itertools import islice
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from repro.netsim.host import Host
from repro.netsim.ipv4 import Netblock
from repro.netsim.rand import keyed_offset


class ExplicitSegment:
    """A finite, ordered address set with per-address port bindings.

    ``udp_ports`` mirrors ``tcp_ports`` for datagram services (DoQ's
    dedicated port 784, DNSCrypt's UDP 443); addresses absent from the
    mapping expose no UDP ports.
    """

    __slots__ = ("name", "_addresses", "_tcp_ports", "_udp_ports")

    def __init__(self, name: str, addresses: Sequence[str],
                 tcp_ports: Dict[str, Tuple[int, ...]],
                 udp_ports: Optional[Dict[str, Tuple[int, ...]]] = None):
        self.name = name
        self._addresses: Tuple[str, ...] = tuple(addresses)
        self._tcp_ports = dict(tcp_ports)
        self._udp_ports = dict(udp_ports or {})

    def __len__(self) -> int:
        return len(self._addresses)

    def addresses(self) -> Iterator[str]:
        return iter(self._addresses)

    def contains(self, address: str) -> bool:
        return address in self._tcp_ports

    def tcp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        return self._tcp_ports.get(address)

    def udp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        if address not in self._tcp_ports:
            return None
        return self._udp_ports.get(address, ())

    def open_window(self, port: int, start: int,
                    stop: int) -> Iterator[str]:
        """Addresses in positions [start, stop) with ``port`` open."""
        for address in self._addresses[start:stop]:
            if port in self._tcp_ports[address]:
                yield address

    def open_udp_window(self, port: int, start: int,
                        stop: int) -> Iterator[str]:
        """Addresses in positions [start, stop) with UDP ``port`` open."""
        for address in self._addresses[start:stop]:
            if port in self._udp_ports.get(address, ()):
                yield address


class RangeSegment:
    """``count`` procedural addresses, one port-open host per stride.

    Openness is a pure function of the index: position
    ``keyed_offset(key, block, stride)`` within each stride-sized block
    is open, everything else is dark space. A sweep therefore walks
    ``count / stride`` hash evaluations, not ``count`` addresses.
    """

    __slots__ = ("name", "count", "block", "port", "stride", "key")

    def __init__(self, name: str, count: int, block: Netblock,
                 port: int, stride: int, key: str):
        if count > block.size:
            raise ValueError(
                f"segment {name}: {count} addresses exceed {block}")
        self.name = name
        self.count = count
        self.block = block
        self.port = port
        self.stride = max(1, stride)
        self.key = key

    def __len__(self) -> int:
        return self.count

    def address_of(self, index: int) -> str:
        return self.block.nth(index)

    def index_of(self, address: str) -> Optional[int]:
        offset = self.block.offset_of(address)
        if offset is None or offset >= self.count:
            return None
        return offset

    def is_open(self, index: int) -> bool:
        return (index % self.stride
                == keyed_offset(self.key, index // self.stride,
                                self.stride))

    def addresses(self) -> Iterator[str]:
        """Every address, open or not (avoid on scaled segments)."""
        for index in range(self.count):
            yield self.block.nth(index)

    def contains(self, address: str) -> bool:
        return self.index_of(address) is not None

    def tcp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        index = self.index_of(address)
        if index is None:
            return None
        return (self.port,) if self.is_open(index) else ()

    def udp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        # Scaled background hosts answer on a single TCP port only.
        return None if self.index_of(address) is None else ()

    def open_items(self) -> Iterator[Tuple[int, str]]:
        """(index, address) of every open host, in index order."""
        yield from self.open_items_in(0, self.count)

    def open_items_in(self, start: int,
                      stop: int) -> Iterator[Tuple[int, str]]:
        stop = min(stop, self.count)
        if start >= stop:
            return
        for block_index in range(start // self.stride,
                                 (stop - 1) // self.stride + 1):
            index = (block_index * self.stride
                     + keyed_offset(self.key, block_index, self.stride))
            if start <= index < stop:
                yield index, self.block.nth(index)

    def open_count(self) -> int:
        return sum(1 for _ in self.open_items())

    def open_window(self, port: int, start: int,
                    stop: int) -> Iterator[str]:
        if port != self.port:
            return
        for _, address in self.open_items_in(start, stop):
            yield address

    def open_udp_window(self, port: int, start: int,
                        stop: int) -> Iterator[str]:
        return iter(())


class ProceduralWorld:
    """An ordered list of segments plus the scenario's derivation recipe.

    ``derive`` is the stateless (seed, address) → Host function the
    scenario provides; the world only decides *whether* an address
    exists and which ports answer, so those checks never materialise a
    host object.
    """

    def __init__(self, segments: Iterable,
                 derive: Callable[[str], Optional[Host]]):
        self._segments = tuple(segments)
        self._derive = derive

    @property
    def segments(self) -> tuple:
        return self._segments

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def addresses(self) -> Iterator[str]:
        for segment in self._segments:
            yield from segment.addresses()

    def tcp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        for segment in self._segments:
            ports = segment.tcp_ports(address)
            if ports is not None:
                return ports
        return None

    def udp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        for segment in self._segments:
            ports = segment.udp_ports(address)
            if ports is not None:
                return ports
        return None

    def contains(self, address: str) -> bool:
        return self.tcp_ports(address) is not None

    def derive(self, address: str) -> Optional[Host]:
        if not self.contains(address):
            return None
        return self._derive(address)

    def open_window(self, port: int, start: int,
                    stop: int) -> Iterator[str]:
        """Open addresses within combined positions [start, stop)."""
        base = 0
        for segment in self._segments:
            length = len(segment)
            low = max(start - base, 0)
            high = min(stop - base, length)
            if high > low:
                yield from segment.open_window(port, low, high)
            base += length
            if base >= stop:
                break

    def open_udp_window(self, port: int, start: int,
                        stop: int) -> Iterator[str]:
        """UDP-open addresses within combined positions [start, stop)."""
        base = 0
        for segment in self._segments:
            length = len(segment)
            low = max(start - base, 0)
            high = min(stop - base, length)
            if high > low:
                yield from segment.open_udp_window(port, low, high)
            base += length
            if base >= stop:
                break


class RestrictedWorld:
    """A world filtered to an address allow-list (partial shard builds).

    Mirrors ``only_addresses`` on eager builds: membership checks are
    O(1); full enumeration walks the parent world and is only intended
    for the small worlds probe shards use.
    """

    def __init__(self, world: ProceduralWorld, allowed: frozenset):
        self._world = world
        self._allowed = allowed
        self._length: Optional[int] = None

    def __len__(self) -> int:
        if self._length is None:
            self._length = sum(1 for _ in self.addresses())
        return self._length

    def addresses(self) -> Iterator[str]:
        return (address for address in self._world.addresses()
                if address in self._allowed)

    def tcp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        if address not in self._allowed:
            return None
        return self._world.tcp_ports(address)

    def udp_ports(self, address: str) -> Optional[Tuple[int, ...]]:
        if address not in self._allowed:
            return None
        return self._world.udp_ports(address)

    def contains(self, address: str) -> bool:
        return self.tcp_ports(address) is not None

    def derive(self, address: str) -> Optional[Host]:
        if address not in self._allowed:
            return None
        return self._world.derive(address)

    def open_window(self, port: int, start: int,
                    stop: int) -> Iterator[str]:
        for address in islice(self.addresses(), start, stop):
            ports = self.tcp_ports(address)
            if ports is not None and port in ports:
                yield address

    def open_udp_window(self, port: int, start: int,
                        stop: int) -> Iterator[str]:
        for address in islice(self.addresses(), start, stop):
            ports = self.udp_ports(address)
            if ports is not None and port in ports:
                yield address
