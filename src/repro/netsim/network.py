"""The simulated Internet: hosts, client environments and routing."""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.netsim.clock import SimClock, parse_date
from repro.netsim.geo import GeoPoint, country
from repro.netsim.host import Host
from repro.netsim.latency import LatencyModel
from repro.netsim.middlebox import IpConflictDevice, Middlebox


@dataclass
class ClientEnvironment:
    """The network a vantage point lives in.

    Everything that differs between two clients in the paper's data is
    captured here: location, last-mile quality, in-path devices, local
    IP conflicts and per-destination routing penalties.
    """

    label: str
    address: str
    country_code: str
    point: GeoPoint
    last_mile_ms: float
    asn: int = 0
    as_name: str = ""
    middleboxes: List[Middlebox] = field(default_factory=list)
    #: Local devices squatting on public addresses, keyed by that address.
    conflicts: Dict[str, IpConflictDevice] = field(default_factory=dict)
    #: Extra fixed RTT for specific destinations: ``(ip, port)`` exact
    #: match first, then ``(ip, None)`` as an all-ports fallback.
    route_penalties: Dict[Tuple[str, Optional[int]], float] = (
        field(default_factory=dict))

    @classmethod
    def in_country(cls, label: str, address: str, country_code: str,
                   rng, **kwargs) -> "ClientEnvironment":
        """Create an environment at a jittered location in a country."""
        entry = country(country_code)
        point = GeoPoint(
            entry.point.lat + rng.uniform(-3.0, 3.0),
            entry.point.lon + rng.uniform(-3.0, 3.0),
        )
        last_mile = max(2.0, rng.gauss(entry.last_mile_ms,
                                       entry.last_mile_ms * 0.25))
        return cls(label=label, address=address, country_code=country_code,
                   point=point, last_mile_ms=last_mile, **kwargs)

    def route_penalty_ms(self, dst_ip: str, port: int) -> float:
        exact = self.route_penalties.get((dst_ip, port))
        if exact is not None:
            return exact
        return self.route_penalties.get((dst_ip, None), 0.0)


#: Default bound on the lazily-materialised host LRU. Generous enough
#: that every host a round's measurements revisit stays resident at the
#: seed scale, small enough that a 10^6-address sweep stays flat.
DEFAULT_HOST_CACHE_SIZE = 4096


class Network:
    """Registry of hosts plus country-level path policies.

    Two sources back the address space: an explicit registry
    (``add_host``) and an optional procedural world
    (:class:`repro.netsim.procgen.ProceduralWorld`) whose hosts are
    derived on first touch and kept in a bounded LRU. The combined
    address order — registry insertion order first, then world order —
    is what sweeps iterate, so eager (registry-only) and lazy
    (world-backed) builds of the same scenario walk identical sequences.
    """

    def __init__(self, latency: Optional[LatencyModel] = None,
                 clock: Optional[SimClock] = None,
                 world=None,
                 host_cache_size: int = DEFAULT_HOST_CACHE_SIZE):
        self.latency = latency or LatencyModel()
        self.clock = clock or SimClock(parse_date("2019-02-01"))
        self._hosts: Dict[str, Host] = {}
        self._country_policies: Dict[str, List[Middlebox]] = defaultdict(list)
        #: Hooks run on every successful application exchange; used by
        #: traffic observation (NetFlow-style collection at "backbone"
        #: level). Signature: (env, host, port, protocol, n_bytes, ts).
        self.taps: List[Callable] = []
        #: Optional :class:`~repro.netsim.faults.FaultInjector` consulted
        #: by every transport operation; None = no fault injection.
        self.fault_injector = None
        self._world = world
        self._host_cache: "OrderedDict[str, Host]" = OrderedDict()
        self._host_cache_size = max(1, host_cache_size)
        #: High-water mark of the materialised-host LRU; the scale suite
        #: asserts it never exceeds the configured bound.
        self.host_cache_peak = 0
        #: How many times the full-materialise path (``hosts()`` /
        #: ``hosts_with_tcp_port()``) ran; sweeps must never bump this.
        self.full_materialise_calls = 0
        #: Procedural addresses explicitly removed (shadowed) from the
        #: world; consulted only when a world is attached.
        self._removed: set = set()
        self._hosts_view: Optional[Tuple[Host, ...]] = None
        self._port_views: Dict[int, Tuple[Host, ...]] = {}

    def install_fault_injector(self, injector) -> None:
        """Attach a fault injector driving scheduled transport failures."""
        self.fault_injector = injector

    # -- topology ----------------------------------------------------------

    @property
    def world(self):
        """The attached procedural world, if any."""
        return self._world

    def attach_world(self, world, host_cache_size: Optional[int] = None) -> None:
        """Back this network with a procedural address space."""
        self._world = world
        if host_cache_size is not None:
            self._host_cache_size = max(1, host_cache_size)
        self._host_cache.clear()
        self._invalidate_views()

    @property
    def host_cache_size(self) -> int:
        return self._host_cache_size

    @property
    def host_cache_len(self) -> int:
        return len(self._host_cache)

    def _invalidate_views(self) -> None:
        self._hosts_view = None
        self._port_views.clear()

    def add_host(self, host: Host) -> Host:
        if host.address in self._hosts:
            raise ScenarioError(f"duplicate host address {host.address}")
        self._hosts[host.address] = host
        self._removed.discard(host.address)
        self._invalidate_views()
        return host

    def remove_host(self, address: str) -> None:
        self._hosts.pop(address, None)
        self._host_cache.pop(address, None)
        if self._world is not None and self._world.contains(address):
            self._removed.add(address)
        self._invalidate_views()

    def host_at(self, address: str) -> Optional[Host]:
        """The host at an address, materialised on first touch.

        Registry hosts win over the procedural world; world hosts are
        derived lazily and kept in a bounded LRU, so repeated probes of
        the same address reuse one object (connection caches, backend
        rng state) while a full sweep's transient touches stay flat.
        """
        host = self._hosts.get(address)
        if host is not None:
            return host
        if self._world is None or address in self._removed:
            return None
        cache = self._host_cache
        host = cache.get(address)
        if host is not None:
            cache.move_to_end(address)
            return host
        host = self._world.derive(address)
        if host is None:
            return None
        cache[address] = host
        while len(cache) > self._host_cache_size:
            cache.popitem(last=False)
        if len(cache) > self.host_cache_peak:
            self.host_cache_peak = len(cache)
        return host

    def hosts(self) -> Tuple[Host, ...]:
        """Every host, fully materialised (cached between mutations).

        This is the *full-materialise path*: with a procedural world
        attached it promotes every derivable host into the registry.
        Scan pipelines must never call it — they stream
        :meth:`iter_addresses` / :meth:`open_tcp_addresses` instead
        (pinned by a regression test on ``full_materialise_calls``).
        """
        self.full_materialise_calls += 1
        if self._hosts_view is None:
            if self._world is not None:
                for address in self._world.addresses():
                    if address in self._hosts or address in self._removed:
                        continue
                    host = self._host_cache.pop(address, None)
                    if host is None:
                        host = self._world.derive(address)
                    if host is not None:
                        self._hosts[address] = host
            self._hosts_view = tuple(self._hosts.values())
        return self._hosts_view

    def hosts_with_tcp_port(self, port: int) -> Tuple[Host, ...]:
        """Hosts with a TCP service on ``port`` (cached per port).

        Full-materialise path too — sweeps use
        :meth:`open_tcp_addresses`, which never builds host objects.
        """
        view = self._port_views.get(port)
        if view is None:
            view = tuple(host for host in self.hosts()
                         if ("tcp", port) in host.services)
            self._port_views[port] = view
        return view

    def iter_hosts(self) -> Iterator[Host]:
        """Registry hosts in insertion order, without copying a tuple."""
        return iter(self._hosts.values())

    def iter_addresses(self) -> Iterator[str]:
        """Every address — registry order, then unshadowed world order."""
        yield from self._hosts
        if self._world is not None:
            for address in self._world.addresses():
                if address not in self._hosts and address not in self._removed:
                    yield address

    def address_count(self) -> int:
        """Size of the combined address space, without materialising."""
        count = len(self._hosts)
        if self._world is not None:
            count += len(self._world) - self._world_shadow_count()
        return count

    def _world_shadow_count(self) -> int:
        shadowed = sum(1 for address in self._hosts
                       if self._world.contains(address))
        shadowed += sum(1 for address in self._removed
                        if self._world.contains(address))
        return shadowed

    def tcp_port_open(self, address: str, port: int) -> bool:
        """Whether TCP ``port`` answers at ``address`` — no host built."""
        host = self._hosts.get(address)
        if host is None:
            host = self._host_cache.get(address)
        if host is not None:
            return ("tcp", port) in host.services
        if self._world is None or address in self._removed:
            return False
        ports = self._world.tcp_ports(address)
        return ports is not None and port in ports

    def open_tcp_addresses(self, port: int, start: int = 0,
                           stop: Optional[int] = None) -> Iterator[str]:
        """Stream port-open addresses within combined positions
        [start, stop), in address order, materialising nothing.

        Over a procedural range segment this skips dark space entirely:
        the cost is proportional to the *open* population plus one hash
        per stride block, not to the window size.
        """
        total = self.address_count()
        stop = total if stop is None else min(stop, total)
        if start >= stop:
            return
        registry_len = len(self._hosts)
        if start < registry_len:
            for host in islice(self._hosts.values(), start,
                               min(stop, registry_len)):
                if ("tcp", port) in host.services:
                    yield host.address
        if self._world is None or stop <= registry_len:
            return
        low = max(start, registry_len) - registry_len
        high = stop - registry_len
        if self._world_shadow_count() == 0:
            yield from self._world.open_window(port, low, high)
        else:
            # Rare: explicit additions/removals shadow world addresses;
            # fall back to a filtered walk so positions stay aligned.
            unshadowed = (address for address in self._world.addresses()
                          if address not in self._hosts
                          and address not in self._removed)
            for address in islice(unshadowed, low, high):
                ports = self._world.tcp_ports(address)
                if ports is not None and port in ports:
                    yield address

    def udp_port_open(self, address: str, port: int) -> bool:
        """Whether UDP ``port`` answers at ``address`` — no host built."""
        host = self._hosts.get(address)
        if host is None:
            host = self._host_cache.get(address)
        if host is not None:
            return ("udp", port) in host.services
        if self._world is None or address in self._removed:
            return False
        ports = self._world.udp_ports(address)
        return ports is not None and port in ports

    def open_udp_addresses(self, port: int, start: int = 0,
                           stop: Optional[int] = None) -> Iterator[str]:
        """Stream UDP-port-open addresses within combined positions
        [start, stop) — the datagram twin of :meth:`open_tcp_addresses`,
        walked by the DoQ (784) and DNSCrypt (443) discovery sweeps.
        """
        total = self.address_count()
        stop = total if stop is None else min(stop, total)
        if start >= stop:
            return
        registry_len = len(self._hosts)
        if start < registry_len:
            for host in islice(self._hosts.values(), start,
                               min(stop, registry_len)):
                if ("udp", port) in host.services:
                    yield host.address
        if self._world is None or stop <= registry_len:
            return
        low = max(start, registry_len) - registry_len
        high = stop - registry_len
        if self._world_shadow_count() == 0:
            yield from self._world.open_udp_window(port, low, high)
        else:
            unshadowed = (address for address in self._world.addresses()
                          if address not in self._hosts
                          and address not in self._removed)
            for address in islice(unshadowed, low, high):
                ports = self._world.udp_ports(address)
                if ports is not None and port in ports:
                    yield address

    def add_country_policy(self, country_code: str,
                           device: Middlebox) -> None:
        self._country_policies[country_code].append(device)

    def path_devices(self, env: ClientEnvironment) -> List[Middlebox]:
        """In-path devices in traversal order: CPE first, then country."""
        return list(env.middleboxes) + list(
            self._country_policies.get(env.country_code, ()))

    # -- destination resolution ---------------------------------------------

    def resolve_destination(
            self, env: ClientEnvironment,
            dst_ip: str) -> Tuple[str, Optional[Host]]:
        """Where packets to ``dst_ip`` actually land for this client.

        Returns ``("local", device_host)`` when a LAN device squats on the
        address, ``("remote", host)`` for a registered host, and
        ``("absent", None)`` when nothing answers.
        """
        conflict = env.conflicts.get(dst_ip)
        if conflict is not None:
            return "local", conflict.device
        # host_at (not the raw registry) so procedurally-backed worlds
        # materialise the destination on first touch.
        host = self.host_at(dst_ip)
        if host is not None:
            return "remote", host
        return "absent", None

    def notify_taps(self, env: ClientEnvironment, host: Host, port: int,
                    protocol: str, n_bytes: int) -> None:
        for tap in self.taps:
            tap(env, host, port, protocol, n_bytes, self.clock.now())
