"""The simulated Internet: hosts, client environments and routing."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.netsim.clock import SimClock, parse_date
from repro.netsim.geo import GeoPoint, country
from repro.netsim.host import Host
from repro.netsim.latency import LatencyModel
from repro.netsim.middlebox import IpConflictDevice, Middlebox


@dataclass
class ClientEnvironment:
    """The network a vantage point lives in.

    Everything that differs between two clients in the paper's data is
    captured here: location, last-mile quality, in-path devices, local
    IP conflicts and per-destination routing penalties.
    """

    label: str
    address: str
    country_code: str
    point: GeoPoint
    last_mile_ms: float
    asn: int = 0
    as_name: str = ""
    middleboxes: List[Middlebox] = field(default_factory=list)
    #: Local devices squatting on public addresses, keyed by that address.
    conflicts: Dict[str, IpConflictDevice] = field(default_factory=dict)
    #: Extra fixed RTT for specific destinations: ``(ip, port)`` exact
    #: match first, then ``(ip, None)`` as an all-ports fallback.
    route_penalties: Dict[Tuple[str, Optional[int]], float] = (
        field(default_factory=dict))

    @classmethod
    def in_country(cls, label: str, address: str, country_code: str,
                   rng, **kwargs) -> "ClientEnvironment":
        """Create an environment at a jittered location in a country."""
        entry = country(country_code)
        point = GeoPoint(
            entry.point.lat + rng.uniform(-3.0, 3.0),
            entry.point.lon + rng.uniform(-3.0, 3.0),
        )
        last_mile = max(2.0, rng.gauss(entry.last_mile_ms,
                                       entry.last_mile_ms * 0.25))
        return cls(label=label, address=address, country_code=country_code,
                   point=point, last_mile_ms=last_mile, **kwargs)

    def route_penalty_ms(self, dst_ip: str, port: int) -> float:
        exact = self.route_penalties.get((dst_ip, port))
        if exact is not None:
            return exact
        return self.route_penalties.get((dst_ip, None), 0.0)


class Network:
    """Registry of hosts plus country-level path policies."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 clock: Optional[SimClock] = None):
        self.latency = latency or LatencyModel()
        self.clock = clock or SimClock(parse_date("2019-02-01"))
        self._hosts: Dict[str, Host] = {}
        self._country_policies: Dict[str, List[Middlebox]] = defaultdict(list)
        #: Hooks run on every successful application exchange; used by
        #: traffic observation (NetFlow-style collection at "backbone"
        #: level). Signature: (env, host, port, protocol, n_bytes, ts).
        self.taps: List[Callable] = []
        #: Optional :class:`~repro.netsim.faults.FaultInjector` consulted
        #: by every transport operation; None = no fault injection.
        self.fault_injector = None

    def install_fault_injector(self, injector) -> None:
        """Attach a fault injector driving scheduled transport failures."""
        self.fault_injector = injector

    # -- topology ----------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.address in self._hosts:
            raise ScenarioError(f"duplicate host address {host.address}")
        self._hosts[host.address] = host
        return host

    def remove_host(self, address: str) -> None:
        self._hosts.pop(address, None)

    def host_at(self, address: str) -> Optional[Host]:
        return self._hosts.get(address)

    def hosts(self) -> Tuple[Host, ...]:
        return tuple(self._hosts.values())

    def hosts_with_tcp_port(self, port: int) -> Tuple[Host, ...]:
        return tuple(host for host in self._hosts.values()
                     if ("tcp", port) in host.services)

    def add_country_policy(self, country_code: str,
                           device: Middlebox) -> None:
        self._country_policies[country_code].append(device)

    def path_devices(self, env: ClientEnvironment) -> List[Middlebox]:
        """In-path devices in traversal order: CPE first, then country."""
        return list(env.middleboxes) + list(
            self._country_policies.get(env.country_code, ()))

    # -- destination resolution ---------------------------------------------

    def resolve_destination(
            self, env: ClientEnvironment,
            dst_ip: str) -> Tuple[str, Optional[Host]]:
        """Where packets to ``dst_ip`` actually land for this client.

        Returns ``("local", device_host)`` when a LAN device squats on the
        address, ``("remote", host)`` for a registered host, and
        ``("absent", None)`` when nothing answers.
        """
        conflict = env.conflicts.get(dst_ip)
        if conflict is not None:
            return "local", conflict.device
        host = self._hosts.get(dst_ip)
        if host is not None:
            return "remote", host
        return "absent", None

    def notify_taps(self, env: ClientEnvironment, host: Host, port: int,
                    protocol: str, n_bytes: int) -> None:
        for tap in self.taps:
            tap(env, host, port, protocol, n_bytes, self.clock.now())
