"""IPv4 address arithmetic and netblocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ScenarioError


def ip_to_int(address: str) -> int:
    """Parse dotted-quad text into a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ScenarioError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise ScenarioError(f"bad IPv4 address {address!r}") from None
        if not 0 <= octet <= 255:
            raise ScenarioError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad text."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ScenarioError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


def slash24(address: str) -> str:
    """The /24 prefix of an address, in ``a.b.c.0/24`` notation.

    The paper truncates client addresses to /24 before analysis for
    ethics; the same truncation is applied throughout this library.
    """
    value = ip_to_int(address) & 0xFFFFFF00
    return int_to_ip(value) + "/24"


_RESERVED_PREFIXES = (
    (ip_to_int("0.0.0.0"), 8),
    (ip_to_int("10.0.0.0"), 8),
    (ip_to_int("100.64.0.0"), 10),
    (ip_to_int("127.0.0.0"), 8),
    (ip_to_int("169.254.0.0"), 16),
    (ip_to_int("172.16.0.0"), 12),
    (ip_to_int("192.0.2.0"), 24),
    (ip_to_int("192.168.0.0"), 16),
    (ip_to_int("198.18.0.0"), 15),
    (ip_to_int("203.0.113.0"), 24),
    (ip_to_int("224.0.0.0"), 3),
)


def is_public_unicast(address: str) -> bool:
    """True for addresses outside reserved/special-use ranges."""
    value = ip_to_int(address)
    for base, prefix_length in _RESERVED_PREFIXES:
        mask = ~((1 << (32 - prefix_length)) - 1) & 0xFFFFFFFF
        if value & mask == base:
            return False
    return True


def random_public_ip(rng) -> str:
    """Draw a uniformly random public unicast address."""
    while True:
        candidate = int_to_ip(rng.randint(0x01000000, 0xDFFFFFFF))
        if is_public_unicast(candidate):
            return candidate


@dataclass(frozen=True)
class Netblock:
    """A CIDR prefix."""

    base: int
    prefix_length: int

    @classmethod
    def from_text(cls, text: str) -> "Netblock":
        address, _, length_text = text.partition("/")
        if not length_text:
            raise ScenarioError(f"netblock needs a prefix length: {text!r}")
        prefix_length = int(length_text)
        if not 0 <= prefix_length <= 32:
            raise ScenarioError(f"bad prefix length in {text!r}")
        mask = ~((1 << (32 - prefix_length)) - 1) & 0xFFFFFFFF
        return cls(ip_to_int(address) & mask, prefix_length)

    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix_length)

    def contains(self, address: str) -> bool:
        mask = ~((1 << (32 - self.prefix_length)) - 1) & 0xFFFFFFFF
        return ip_to_int(address) & mask == self.base

    def addresses(self) -> Iterator[str]:
        """Iterate every address in the block (use only on small blocks)."""
        for offset in range(self.size):
            yield int_to_ip(self.base + offset)

    def offset_of(self, address: str) -> Optional[int]:
        """The position of ``address`` inside the block, or None.

        Inverse of :meth:`nth`; procedural world segments use it to map
        an arbitrary probed address back to its derivation index in
        O(1), without holding any per-address state.
        """
        if not self.contains(address):
            return None
        return ip_to_int(address) - self.base

    def nth(self, offset: int) -> str:
        if not 0 <= offset < self.size:
            raise ScenarioError(
                f"offset {offset} outside /{self.prefix_length} block")
        return int_to_ip(self.base + offset)

    def to_text(self) -> str:
        return f"{int_to_ip(self.base)}/{self.prefix_length}"

    def __str__(self) -> str:
        return self.to_text()
