"""Hosts and the services they expose.

A :class:`Host` owns an IPv4 address, a location, and a table of
:class:`Service` objects keyed by ``(protocol, port)``. Services exchange
application payloads; the transport layer in :mod:`repro.netsim.transport`
handles latency, middleboxes and TLS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.netsim.geo import GeoPoint
from repro.errors import ScenarioError


@dataclass
class TlsConfig:
    """TLS parameters of a service endpoint.

    ``cert_chain`` is a tuple of :class:`repro.tlssim.certs.Certificate`
    (kept untyped here to avoid a layering cycle). ``supports_resumption``
    lets clients shortcut later handshakes to one round trip.
    """

    cert_chain: tuple
    alpn: Tuple[str, ...] = ("dot",)
    supports_resumption: bool = True

    @property
    def leaf(self):
        if not self.cert_chain:
            raise ScenarioError("TLS config with an empty certificate chain")
        return self.cert_chain[0]


@dataclass
class ServiceContext:
    """Per-exchange context handed to service handlers."""

    client_address: str
    server_address: str
    port: int
    protocol: str
    timestamp: float
    client_country: Optional[str] = None
    encrypted: bool = False
    server_name: Optional[str] = None
    #: Set when a middlebox proxied the TLS session; the handler still
    #: runs, but the payload was visible to the interceptor.
    intercepted_by: Optional[str] = None


class Service:
    """Base class for application services.

    ``handle`` receives an application payload (bytes for DNS transports,
    :class:`repro.httpsim.messages.HttpRequest` for HTTP services) and
    returns the response payload, or raises a transport/application error.
    ``extra_latency_ms`` lets a service add per-request server-side cost
    (e.g. encryption overhead for DoE frontends). The transport layer
    passes the same :class:`ServiceContext` it handed to ``handle``, so
    a service that stashes per-request cost can key it per connection
    instead of in shared mutable state; ``ctx`` stays optional for
    legacy callers that invoke the hook directly.
    """

    #: Set by subclasses that require TLS on their port.
    tls: Optional[TlsConfig] = None

    def handle(self, payload: Any, ctx: ServiceContext) -> Any:
        raise NotImplementedError

    def extra_latency_ms(self, rng,
                         ctx: Optional[ServiceContext] = None) -> float:
        return 0.0


class CallableService(Service):
    """Adapts a plain function into a service."""

    def __init__(self, handler: Callable[[Any, ServiceContext], Any],
                 tls: Optional[TlsConfig] = None,
                 latency_fn: Optional[Callable[[Any], float]] = None):
        self._handler = handler
        self.tls = tls
        self._latency_fn = latency_fn

    def handle(self, payload: Any, ctx: ServiceContext) -> Any:
        return self._handler(payload, ctx)

    def extra_latency_ms(self, rng,
                         ctx: Optional[ServiceContext] = None) -> float:
        if self._latency_fn is None:
            return 0.0
        return self._latency_fn(rng)


@dataclass
class Host:
    """A network host with an address, location and services."""

    address: str
    country_code: str
    point: GeoPoint
    #: Base per-request processing time of this machine.
    processing_ms: float = 1.5
    #: Anycast points of presence; defaults to the host's own location.
    pops: Tuple[GeoPoint, ...] = ()
    services: Dict[Tuple[str, int], Service] = field(default_factory=dict)
    tags: Set[str] = field(default_factory=set)
    #: Reverse-DNS name, if any (used by the scanner-vetting step).
    ptr_name: Optional[str] = None
    #: HTML body served on port 80/443 webpage fetches, for diagnosis.
    webpage: Optional[str] = None
    #: Free-form operator label (provider name etc.).
    operator: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.pops:
            self.pops = (self.point,)

    def bind(self, protocol: str, port: int, service: Service) -> "Host":
        """Attach a service; rebinding a taken port is a scenario error."""
        key = (protocol, port)
        if key in self.services:
            raise ScenarioError(
                f"{self.address} already has a service on {protocol}/{port}")
        self.services[key] = service
        return self

    def service_on(self, protocol: str, port: int) -> Optional[Service]:
        return self.services.get((protocol, port))

    def open_tcp_ports(self) -> Tuple[int, ...]:
        return tuple(sorted(port for proto, port in self.services
                            if proto == "tcp"))

    def has_tcp_port(self, port: int) -> bool:
        """Cheap port-open check; the form scan pipelines should use."""
        return ("tcp", port) in self.services

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags
