"""Deterministic network simulation substrate.

This package stands in for the real Internet: it models hosts with
listening services, a geography-driven latency model, client network
environments with in-path middleboxes (censors, TLS interceptors, port
filters, IP-conflict devices), and NetFlow collection with packet
sampling.

Everything is driven by explicit simulated time (:class:`SimClock`) and
seeded randomness (:class:`SeededRng`), so measurement campaigns are
exactly reproducible.
"""

from repro.netsim.clock import SimClock, parse_date, format_date, MONTH_SECONDS, DAY_SECONDS
from repro.netsim.rand import SeededRng
from repro.netsim.geo import (
    COUNTRIES,
    Country,
    GeoPoint,
    country,
    great_circle_km,
)
from repro.netsim.ipv4 import (
    Netblock,
    int_to_ip,
    ip_to_int,
    is_public_unicast,
    slash24,
)
from repro.netsim.latency import LatencyModel
from repro.netsim.host import Host, Service, TlsConfig
from repro.netsim.middlebox import (
    Censor,
    IpConflictDevice,
    Middlebox,
    PortFilter,
    TlsInterceptor,
    Verdict,
)
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
)
from repro.netsim.transport import TcpConnection, TlsChannel, UdpExchange
from repro.netsim.netflow import FlowRecord, NetFlowCollector, TcpFlags

__all__ = [
    "SimClock",
    "parse_date",
    "format_date",
    "MONTH_SECONDS",
    "DAY_SECONDS",
    "SeededRng",
    "Country",
    "GeoPoint",
    "COUNTRIES",
    "country",
    "great_circle_km",
    "Netblock",
    "ip_to_int",
    "int_to_ip",
    "slash24",
    "is_public_unicast",
    "LatencyModel",
    "Host",
    "Service",
    "TlsConfig",
    "Middlebox",
    "Verdict",
    "Censor",
    "TlsInterceptor",
    "PortFilter",
    "IpConflictDevice",
    "Network",
    "ClientEnvironment",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "TcpConnection",
    "TlsChannel",
    "UdpExchange",
    "FlowRecord",
    "NetFlowCollector",
    "TcpFlags",
]
