"""Counters, gauges, and streaming histograms with label support.

The registry is the substrate every instrumented module writes into.
Metric names follow the ``layer.component.event`` convention
(``scan.probes_sent``, ``dot.handshake.ok``, ``client.query.latency``).
Labels are free-form string pairs; a metric name plus its sorted label
set identifies one time series.

Histograms use a fixed log-bucket scheme (geometric bucket boundaries,
``GROWTH`` per bucket) so quantile estimation is O(buckets) with a
bounded relative error, never stores raw samples, and — crucially for
reproducibility — produces identical state for identical observation
streams regardless of arrival order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: Metrics under this prefix describe *scheduling* (worker clamping,
#: dispatch mode, pool lifecycle) rather than the experiment itself.
#: Deterministic exports and manifest totals exclude them: scheduling
#: telemetry legitimately varies with the worker count, and including
#: it would break the byte-identity contract the parallel equivalence
#: suite proves. Non-deterministic snapshots, Prometheus, and tables
#: still show it.
SCHEDULING_NAMESPACE = "parallel."


def is_scheduling_metric(name: str) -> bool:
    return name.startswith(SCHEDULING_NAMESPACE)

#: Version tag leading every registry wire payload.
WIRE_VERSION = 1


def _labelkey(labels: Dict[str, str]) -> LabelPairs:
    """Canonical (sorted) label tuple — determinism satellite."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        """Fold another shard's counter in: plain sum (commutative)."""
        self.value += other.value

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}

    # -- wire codec (see MetricsRegistry.to_wire) --------------------------

    def to_wire_payload(self) -> tuple:
        return (self.value,)

    def load_wire_payload(self, payload: tuple) -> None:
        (self.value,) = payload


class Gauge:
    """A value that can go up and down (queue depths, cache sizes)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        #: Merge-ordering token. Sharded runs stamp each fragment's
        #: gauges with the shard index before merging, so "last write
        #: wins" is defined by shard order, not merge-call order.
        self.origin = -1

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge_from(self, other: "Gauge") -> None:
        """Last-write-wins keyed on ``(origin, value)``.

        The lexicographic key makes the merge a total-order max, hence
        associative and commutative even when two fragments share an
        origin (the larger value then wins deterministically).
        """
        if (other.origin, other.value) >= (self.origin, self.value):
            self.value = other.value
            self.origin = other.origin

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}

    def to_wire_payload(self) -> tuple:
        return (self.value, self.origin)

    def load_wire_payload(self, payload: tuple) -> None:
        self.value, self.origin = payload


class Histogram:
    """A streaming histogram over geometric (log-spaced) buckets.

    Bucket ``i`` covers ``(GROWTH**(i-1), GROWTH**i]`` for positive
    values; zero and negative observations land in dedicated buckets
    (negative values occur for *overhead* series, which can be
    legitimately below zero). Quantiles are estimated at the geometric
    midpoint of the winning bucket, giving a relative error bounded by
    ``sqrt(GROWTH) - 1`` (~4.4% with the default growth of 2**(1/8)).
    """

    kind = "histogram"

    #: Geometric bucket growth factor; 2**(1/8) = 96 buckets per 1000x.
    GROWTH = 2.0 ** 0.125
    _LOG_GROWTH = math.log(GROWTH)

    #: The quantiles every exporter reports, as ``(key, q)`` pairs. The
    #: p99.9 entry exists for serving-scale tail latency: at 10k+
    #: queries per protocol the worst ten queries are exactly the ones
    #: an admission-control bug hides from p99.
    QUANTILE_PRESETS: Tuple[Tuple[str, float], ...] = (
        ("p50", 0.50),
        ("p90", 0.90),
        ("p95", 0.95),
        ("p99", 0.99),
        ("p999", 0.999),
    )

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket index -> count. Index 0 holds exact zeros; positive
        #: indices hold positive values; negative indices mirror the
        #: positive scheme for negative values.
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @classmethod
    def _bucket_index(cls, value: float) -> int:
        if value == 0.0:
            return 0
        magnitude = abs(value)
        # ceil(log_G(m)), shifted so magnitudes <= 1 share bucket 1.
        index = max(1, 1 + math.ceil(math.log(magnitude) / cls._LOG_GROWTH))
        return index if value > 0 else -index

    @classmethod
    def _bucket_midpoint(cls, index: int) -> float:
        if index == 0:
            return 0.0
        sign = 1.0 if index > 0 else -1.0
        magnitude = abs(index)
        if magnitude == 1:
            return sign * 0.5
        upper = cls.GROWTH ** (magnitude - 1)
        return sign * upper / math.sqrt(cls.GROWTH)

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0 <= q <= 1) from bucket counts.

        Returns ``None`` for an empty histogram: a never-touched series
        has no quantiles, and reporting 0.0 would be indistinguishable
        from a real all-zero observation stream.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        if q <= 0.0:
            return self.min if self.min is not None else 0.0
        if q >= 1.0:
            return self.max if self.max is not None else 0.0
        rank = q * self.count
        seen = 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                estimate = self._bucket_midpoint(index)
                # Clamp into the observed range so tiny histograms
                # cannot report quantiles outside [min, max].
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max if self.max is not None else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Bucket-wise addition: the merged state is exactly the state a
        single histogram would reach observing both streams (in any
        order), which is what makes sharded telemetry order-free."""
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                              other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted (bucket index, count) pairs."""
        return sorted(self._buckets.items())

    def as_dict(self) -> dict:
        if self.count == 0:
            # No observations: no quantiles to report. Exporters drop
            # empty histograms entirely, but keep the minimal shape
            # here so direct as_dict() callers stay well-defined.
            return {"type": "histogram", "count": 0, "sum": 0.0}
        document = {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6) if self.min is not None else None,
            "max": round(self.max, 6) if self.max is not None else None,
        }
        for key, q in self.QUANTILE_PRESETS:
            document[key] = round(self.quantile(q), 6)
        return document

    def to_wire_payload(self) -> tuple:
        # Floats travel verbatim (no rounding): decode must reconstruct
        # the exact histogram state so merged snapshots stay
        # byte-identical to the object-graph merge path.
        return (self.count, self.sum, self.min, self.max,
                tuple(sorted(self._buckets.items())))

    def load_wire_payload(self, payload: tuple) -> None:
        self.count, self.sum, self.min, self.max, buckets = payload
        self._buckets = dict(buckets)


class MetricsRegistry:
    """Holds every metric of one run, keyed by (name, sorted labels)."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}

    def _get(self, factory, name: str, labels: Dict[str, str]):
        key = (name, _labelkey(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}")
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- convenience write paths (keep call sites one-line) ---------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    # -- sharded-run merge --------------------------------------------------

    def stamp_origin(self, origin: int) -> None:
        """Tag every gauge with the shard index that produced it.

        Called on a per-shard fragment before :meth:`merge`, this defines
        the "last write" in the gauge merge law as the highest shard
        index rather than whichever fragment happened to merge last.
        """
        for metric in self._metrics.values():
            if isinstance(metric, Gauge):
                metric.origin = int(origin)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's state into this one.

        Merge laws (pinned by ``tests/test_parallel_properties.py``):

        * counters add,
        * gauges keep the ``(origin, value)``-maximal write,
        * histograms add bucket-wise (count/sum/min/max/buckets),
        * the empty registry is the identity.

        Under these laws a serial run and any sharded run that
        partitions the same observation stream reach identical registry
        state, which is what makes sharded telemetry snapshots
        byte-identical across worker counts.
        """
        for key in sorted(other._metrics):
            theirs = other._metrics[key]
            mine = self._metrics.get(key)
            if mine is None:
                mine = type(theirs)(theirs.name, key[1])
                self._metrics[key] = mine
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"metric {theirs.name!r} is a "
                    f"{type(mine).__name__} here but a "
                    f"{type(theirs).__name__} in the merged registry")
            mine.merge_from(theirs)
        return self

    # -- read paths --------------------------------------------------------

    def __iter__(self) -> Iterator:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: str):
        """The metric object, or None if never written."""
        return self._metrics.get((name, _labelkey(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Counter/gauge value (0.0 when absent) — handy in assertions."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        return getattr(metric, "value", 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        total = 0.0
        for (metric_name, _), metric in self._metrics.items():
            if metric_name == name and isinstance(metric, Counter):
                total += metric.value
        return total

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._metrics})

    def clear(self) -> None:
        self._metrics.clear()

    # -- compact wire format -----------------------------------------------
    #
    # Shard results cross the process boundary as flat tuples instead of
    # pickled object graphs: one row per series, each row carrying only
    # the metric's algebraic state (a counter's value, a gauge's
    # (value, origin) write, a histogram's count/sum/min/max plus sorted
    # (bucket index, count) pairs). ``from_wire(to_wire())`` reconstructs
    # a registry whose merge behaviour — and therefore every exported
    # byte — is identical to shipping the objects themselves; the
    # equivalence is pinned by tests/test_parallel_wire.py.

    _WIRE_KINDS = {"c": Counter, "g": Gauge, "h": Histogram}

    def to_wire(self) -> tuple:
        """Flat, picklable snapshot of the registry state."""
        rows = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            rows.append((metric.kind[0], key[0], key[1],
                         metric.to_wire_payload()))
        return (WIRE_VERSION, tuple(rows))

    @classmethod
    def from_wire(cls, wire: tuple) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_wire` output."""
        version, rows = wire
        if version != WIRE_VERSION:
            raise ValueError(f"unsupported registry wire version {version}")
        registry = cls()
        for kind, name, labels, payload in rows:
            factory = cls._WIRE_KINDS[kind]
            metric = factory(name, tuple(tuple(pair) for pair in labels))
            metric.load_wire_payload(payload)
            registry._metrics[(metric.name, metric.labels)] = metric
        return registry


# -- bound handles -----------------------------------------------------------
#
# The convenience write paths above cost a ``get_registry()`` call, a
# kwargs dict build, a ``_labelkey`` sort, and a dict lookup on *every*
# increment — measurable on the hot paths (cache hits, transport
# exchanges, retry attempts) that fire millions of times per campaign.
#
# A bound handle amortises all of that: it is declared once at module
# level (``_HIT = BoundCounter("resolver.cache.hit")``) and resolves the
# underlying metric object lazily against whichever registry is
# currently installed, re-resolving only when the active registry is
# swapped (``reset_registry`` / ``install`` — which the sharded executor
# does around every shard). Between swaps, ``inc()`` is one identity
# check plus a plain method call on the same ``Counter`` object the
# string-keyed path would return, so snapshots stay byte-identical.

#: The registry bound handles write into. ``repro.telemetry`` keeps this
#: pointing at its default registry (it assigns on import and inside
#: ``reset_registry``/``install``); never mutate it from anywhere else.
_active_registry: Optional[MetricsRegistry] = None


class _BoundHandle:
    """Lazily-resolved view onto one metric of the active registry."""

    __slots__ = ("name", "labels", "_registry", "_metric")

    _factory = None  # Counter / Gauge / Histogram, set by subclasses

    def __init__(self, name: str, **labels: str):
        self.name = name
        self.labels = labels
        self._registry: Optional[MetricsRegistry] = None
        self._metric = None

    def resolve(self):
        """The live metric in the active registry (rebinding if needed)."""
        registry = _active_registry
        if registry is not self._registry:
            if registry is None:
                raise RuntimeError(
                    f"no active registry for bound metric {self.name!r}")
            self._metric = registry._get(self._factory, self.name,
                                         self.labels)
            self._registry = registry
        return self._metric


class BoundCounter(_BoundHandle):
    _factory = Counter

    def inc(self, amount: float = 1.0) -> None:
        self.resolve().inc(amount)


class BoundGauge(_BoundHandle):
    _factory = Gauge

    def set(self, value: float) -> None:
        self.resolve().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.resolve().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.resolve().dec(amount)


class BoundHistogram(_BoundHandle):
    _factory = Histogram

    def observe(self, value: float) -> None:
        self.resolve().observe(value)


class _BoundFamily:
    """A bound handle over one metric name with *varying* label values.

    For call sites whose labels are dynamic (``protocol="tcp"``,
    ``op=label``) a single handle cannot pre-bind the metric, but the
    family can cache the resolved metric per label-value tuple:

        _REQUESTS = BoundCounterFamily("netsim.requests", "protocol")
        _REQUESTS.get(protocol).inc()

    The per-tuple cache is cleared whenever the active registry swaps.
    """

    __slots__ = ("name", "label_names", "_registry", "_metrics")

    _factory = None

    def __init__(self, name: str, *label_names: str):
        self.name = name
        self.label_names = label_names
        self._registry: Optional[MetricsRegistry] = None
        self._metrics: Dict[Tuple[str, ...], object] = {}

    def get(self, *label_values: str):
        """The live metric for these label values in the active registry."""
        registry = _active_registry
        if registry is not self._registry:
            if registry is None:
                raise RuntimeError(
                    f"no active registry for bound metric {self.name!r}")
            self._metrics = {}
            self._registry = registry
        metric = self._metrics.get(label_values)
        if metric is None:
            labels = dict(zip(self.label_names, label_values))
            metric = registry._get(self._factory, self.name, labels)
            self._metrics[label_values] = metric
        return metric


class BoundCounterFamily(_BoundFamily):
    _factory = Counter


class BoundGaugeFamily(_BoundFamily):
    _factory = Gauge


class BoundHistogramFamily(_BoundFamily):
    _factory = Histogram
