"""Nestable spans recording where campaign time goes.

``Tracer`` produces a tree of spans::

    with tracer.span("campaign.round", round=3):
        with tracer.span("scan.sweep"):
            ...

Every span records two durations:

* **wall** — host wall-clock (``time.perf_counter``), what a profiler
  would show. Excluded from deterministic exports, since two identical
  runs never agree on wall time.
* **sim** — simulated time from an injectable clock (``SimClock.now``
  or any ``() -> float``), byte-identical across same-seed runs.

Durations also land in the registry as ``span.<name>`` histograms so
exporters see them next to the ordinary metrics.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry


class Span:
    """One timed region; children nest via the tracer's active stack."""

    def __init__(self, name: str, attrs: Dict[str, str],
                 sim_started_at: Optional[float] = None):
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: str = ""
        self.wall_ms = 0.0
        self.sim_started_at = sim_started_at
        self.sim_ms: Optional[float] = None
        self._wall_started = 0.0

    def as_dict(self, deterministic: bool = True) -> dict:
        """JSON-ready tree; wall times dropped in deterministic mode."""
        node = {
            "name": self.name,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "status": self.status,
        }
        if self.error:
            node["error"] = self.error
        if self.sim_started_at is not None:
            node["sim_started_at"] = round(self.sim_started_at, 6)
        if self.sim_ms is not None:
            node["sim_ms"] = round(self.sim_ms, 6)
        if not deterministic:
            node["wall_ms"] = round(self.wall_ms, 3)
        node["children"] = [child.as_dict(deterministic)
                            for child in self.children]
        return node

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search of this subtree by span name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    # -- wire codec --------------------------------------------------------
    #
    # Shard results ship spans as nested tuples rather than pickled Span
    # object graphs. Floats travel verbatim (``as_dict`` does the
    # rounding at export time), so a decoded tree exports byte-identical
    # JSON to the original.

    def to_wire(self) -> tuple:
        return (self.name,
                tuple(sorted(self.attrs.items())),
                self.status,
                self.error,
                self.sim_started_at,
                self.sim_ms,
                self.wall_ms,
                tuple(child.to_wire() for child in self.children))

    @classmethod
    def from_wire(cls, wire: tuple) -> "Span":
        (name, attrs, status, error,
         sim_started_at, sim_ms, wall_ms, children) = wire
        span = cls(name, dict(attrs), sim_started_at=sim_started_at)
        span.status = status
        span.error = error
        span.sim_ms = sim_ms
        span.wall_ms = wall_ms
        span.children = [cls.from_wire(child) for child in children]
        return span


class _SpanContext:
    def __init__(self, tracer: "Tracer", span: Span,
                 clock: Optional[Callable[[], float]]):
        self.tracer = tracer
        self.span = span
        self.clock = clock

    def __enter__(self) -> Span:
        span = self.span
        span._wall_started = time.perf_counter()
        if self.clock is not None:
            span.sim_started_at = self.clock()
        self.tracer._push(span)
        return span

    def __exit__(self, exc_type, exc_value, _tb) -> bool:
        span = self.span
        span.wall_ms = (time.perf_counter() - span._wall_started) * 1000.0
        if self.clock is not None and span.sim_started_at is not None:
            span.sim_ms = self.clock() - span.sim_started_at
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc_value}"
        self.tracer._pop(span)
        return False  # never swallow the exception


class Tracer:
    """Builds the span tree and mirrors durations into the registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 sim_clock: Optional[Callable[[], float]] = None):
        self.registry = registry
        #: Default simulated clock for spans that don't pass their own.
        self.sim_clock = sim_clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str,
             clock: Optional[Callable[[], float]] = None,
             **attrs) -> _SpanContext:
        """Open a nested span; attrs become string labels."""
        span = Span(name, {key: str(value) for key, value in attrs.items()})
        return _SpanContext(self, span, clock or self.sim_clock)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate foreign frames on the stack (a span leaked by a
        # generator, say) rather than corrupting the tree.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.registry is not None:
            histogram = self.registry.histogram(f"span.{span.name}",
                                                status=span.status)
            histogram.observe(span.sim_ms if span.sim_ms is not None
                              else span.wall_ms)

    def attach(self, span: Span) -> Span:
        """Adopt a finished span produced elsewhere (shard stitching).

        Sharded execution runs each shard under its own tracer — in a
        worker process or behind the in-process fallback — and the merge
        step re-attaches the shard's root spans here, under whichever
        span is currently active. Durations were already mirrored into
        the shard's own registry, so adoption records nothing.
        """
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def as_dict(self, deterministic: bool = True) -> List[dict]:
        return [root.as_dict(deterministic) for root in self.roots]

    def clear(self) -> None:
        self.roots = []
        self._stack = []
