"""Run manifests: what ran, under which parameters, producing what.

A :class:`RunManifest` is the reproducibility record attached to every
exported snapshot: the scenario seed and knobs, the code version (git
describe when available), and the headline metric totals. Two runs
whose manifests agree measured the same thing with the same code.
"""

from __future__ import annotations

import dataclasses
import subprocess
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.telemetry.metrics import (
    Counter,
    MetricsRegistry,
    is_scheduling_metric,
)


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty``, or "unknown" outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5.0, cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


@dataclass
class RunManifest:
    """Reproducibility record for one measurement run."""

    seed: int
    scenario: Dict[str, object] = field(default_factory=dict)
    code_version: str = "unknown"
    #: Top-level counter totals (name -> summed value across labels).
    totals: Dict[str, float] = field(default_factory=dict)
    #: Execution-plan knobs that are part of the experiment definition
    #: (e.g. the shard count of a parallel run). Deliberately excludes
    #: the worker count: workers are pure scheduling and must never
    #: change results, so recording them would break the byte-identity
    #: the parallel equivalence suite proves.
    execution: Dict[str, object] = field(default_factory=dict)
    #: World-construction record: how the simulated Internet was
    #: materialised (eager vs lazy) and at what population scale. The
    #: mode is pure mechanics — results are identical either way — but
    #: world_scale changes what was swept, so both belong in the
    #: reproducibility record.
    world: Dict[str, object] = field(default_factory=dict)
    #: Longitudinal-campaign record: round counts, whether this run
    #: resumed from a checkpoint (honestly recorded — gates compare
    #: artefact digests, not manifests), and the chained fragment
    #: digest that proves which campaign the artefacts came from.
    campaign: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(cls, config, registry: Optional[MetricsRegistry] = None,
                include_git: bool = True,
                execution: Optional[Dict[str, object]] = None,
                campaign: Optional[Dict[str, object]] = None
                ) -> "RunManifest":
        """Build a manifest from a ScenarioConfig-like object."""
        if dataclasses.is_dataclass(config):
            scenario = dataclasses.asdict(config)
        elif isinstance(config, dict):
            scenario = dict(config)
        else:
            scenario = {key: value for key, value in vars(config).items()
                        if not key.startswith("_")}
        manifest = cls(
            seed=int(scenario.get("seed", 0)),
            scenario=scenario,
            code_version=git_describe() if include_git else "unknown",
            execution=dict(execution or {}),
            campaign=dict(campaign or {}),
        )
        if "world_mode" in scenario:
            manifest.world = {
                "mode": scenario["world_mode"],
                "world_scale": scenario.get("world_scale", 1.0),
                "vantage_scale": scenario.get("vantage_scale", 1.0),
                "host_lru_size": scenario.get("host_lru_size"),
            }
        if registry is not None:
            manifest.record_totals(registry)
        return manifest

    def record_totals(self, registry: MetricsRegistry) -> None:
        totals: Dict[str, float] = {}
        for metric in registry:
            if not isinstance(metric, Counter):
                continue
            # Scheduling counters (``parallel.*``) legitimately vary
            # with the worker count; folding them into the manifest
            # would break worker-count byte-identity.
            if is_scheduling_metric(metric.name):
                continue
            totals[metric.name] = (totals.get(metric.name, 0.0)
                                   + metric.value)
        self.totals = totals

    def as_dict(self) -> dict:
        record = {
            "seed": self.seed,
            "scenario": {key: self.scenario[key]
                         for key in sorted(self.scenario)},
            "code_version": self.code_version,
            "totals": {key: self.totals[key]
                       for key in sorted(self.totals)},
        }
        if self.execution:
            record["execution"] = {key: self.execution[key]
                                   for key in sorted(self.execution)}
        if self.world:
            record["world"] = {key: self.world[key]
                               for key in sorted(self.world)}
        if self.campaign:
            record["campaign"] = {key: self.campaign[key]
                                  for key in sorted(self.campaign)}
        return record
