"""repro.telemetry — dependency-free observability for the platform.

Every measurement leg writes into one process-wide default
:class:`MetricsRegistry` / :class:`Tracer` pair, reachable through
:func:`get_registry` / :func:`get_tracer` and reset between runs with
:func:`reset_registry`. Metric names follow ``layer.component.event``
(``scan.probes_sent``, ``dot.handshake.ok``, ``client.query.latency``).

Exports are deterministic by construction: label sets are sorted,
histograms keep bucket counts rather than raw samples, and wall-clock
durations are excluded from the canonical JSON (sim-clock durations,
which are seed-reproducible, are kept). Same seed ⇒ byte-identical
snapshot.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.telemetry.export import (
    snapshot,
    span_tree_text,
    to_json,
    to_prometheus,
    to_table,
    write_snapshot,
)
from repro.telemetry.manifest import RunManifest, git_describe
from repro.telemetry import metrics as _metrics
from repro.telemetry.metrics import (
    BoundCounter,
    BoundCounterFamily,
    BoundGauge,
    BoundGaugeFamily,
    BoundHistogram,
    BoundHistogramFamily,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, Tracer

_default_registry = MetricsRegistry()
_default_tracer = Tracer(_default_registry)
# Bound handles write into whichever registry is "active"; keep that
# pointer in lock-step with the default registry at all times.
_metrics._active_registry = _default_registry


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented code writes to."""
    return _default_registry


def get_tracer() -> Tracer:
    """The process-wide default tracer (shares the default registry)."""
    return _default_tracer


def reset_registry() -> Tuple[MetricsRegistry, Tracer]:
    """Fresh default registry + tracer; returns the new pair.

    Call between runs (and between tests) so one run's metrics never
    leak into the next snapshot.
    """
    global _default_registry, _default_tracer
    _default_registry = MetricsRegistry()
    _default_tracer = Tracer(_default_registry)
    _metrics._active_registry = _default_registry
    return _default_registry, _default_tracer


def install(registry: MetricsRegistry, tracer: Tracer) -> None:
    """Swap in a specific registry/tracer pair as the process defaults.

    The sharded in-process executor uses this to sandbox each shard's
    telemetry (reset, run, capture) and then restore the caller's pair,
    so workers=1 produces the same per-shard fragments a worker process
    would.
    """
    global _default_registry, _default_tracer
    _default_registry = registry
    _default_tracer = tracer
    _metrics._active_registry = _default_registry


def set_sim_clock(clock) -> None:
    """Attach a simulated clock (``() -> float``) to the default tracer.

    Spans opened afterwards stamp sim-time start/duration, keeping the
    deterministic export self-consistent with the scenario timeline.
    """
    _default_tracer.sim_clock = clock


__all__ = [
    "BoundCounter",
    "BoundCounterFamily",
    "BoundGauge",
    "BoundGaugeFamily",
    "BoundHistogram",
    "BoundHistogramFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "git_describe",
    "install",
    "reset_registry",
    "set_sim_clock",
    "snapshot",
    "span_tree_text",
    "to_json",
    "to_prometheus",
    "to_table",
    "write_snapshot",
]
