"""Exporters: JSON snapshot, Prometheus text format, human table.

All exporters iterate the registry in sorted (name, labels) order, so
two registries holding the same metric state serialise to identical
bytes — the property the determinism tests pin down.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    is_scheduling_metric,
)
from repro.telemetry.spans import Tracer


def _series_name(metric) -> str:
    if not metric.labels:
        return metric.name
    rendered = ",".join(f"{key}={value}" for key, value in metric.labels)
    return f"{metric.name}{{{rendered}}}"


def _is_empty_histogram(metric) -> bool:
    """Registered but never observed — has no quantiles, so exporters
    drop it rather than serialise a shape that looks like real zeros."""
    return isinstance(metric, Histogram) and metric.count == 0


def snapshot(registry: MetricsRegistry, tracer: Optional[Tracer] = None,
             manifest: Optional[dict] = None,
             deterministic: bool = True) -> dict:
    """The whole telemetry state as one JSON-ready dict."""
    metrics = {}
    for metric in registry:
        if _is_empty_histogram(metric):
            continue
        # Scheduling telemetry (worker clamps, dispatch-mode counters)
        # varies with the worker count by design; deterministic
        # snapshots drop it to keep the byte-identity contract.
        if deterministic and is_scheduling_metric(metric.name):
            continue
        metrics[_series_name(metric)] = metric.as_dict()
    document = {"metrics": metrics}
    if tracer is not None:
        document["spans"] = tracer.as_dict(deterministic=deterministic)
    if manifest is not None:
        document["manifest"] = manifest
    return document


def to_json(registry: MetricsRegistry, tracer: Optional[Tracer] = None,
            manifest: Optional[dict] = None,
            deterministic: bool = True) -> str:
    """Canonical JSON: sorted keys, fixed separators, newline-terminated."""
    document = snapshot(registry, tracer, manifest,
                        deterministic=deterministic)
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (counters/gauges + histogram summaries).

    Metric names swap ``.`` for ``_``; histograms expose ``_count``,
    ``_sum`` and quantile gauges, the scheme used by Prometheus
    summaries.
    """
    lines = []
    seen_types = set()
    for metric in registry:
        if _is_empty_histogram(metric):
            continue
        flat = metric.name.replace(".", "_").replace("-", "_")
        labels = "".join(f'{key}="{value}",'
                         for key, value in metric.labels).rstrip(",")
        labelled = f"{flat}{{{labels}}}" if labels else flat
        if isinstance(metric, (Counter, Gauge)):
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            if flat not in seen_types:
                lines.append(f"# TYPE {flat} {kind}")
                seen_types.add(flat)
            lines.append(f"{labelled} {_number(metric.value)}")
        elif isinstance(metric, Histogram):
            if flat not in seen_types:
                lines.append(f"# TYPE {flat} summary")
                seen_types.add(flat)
            for _, q in Histogram.QUANTILE_PRESETS:
                quantile_labels = (labels + "," if labels else "")
                lines.append(
                    f'{flat}{{{quantile_labels}quantile="{q}"}} '
                    f"{_number(metric.quantile(q))}")
            lines.append(f"{flat}_count{{{labels}}} {metric.count}"
                         if labels else f"{flat}_count {metric.count}")
            lines.append(f"{flat}_sum{{{labels}}} {_number(metric.sum)}"
                         if labels else f"{flat}_sum {_number(metric.sum)}")
    return "\n".join(lines) + "\n"


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(round(value, 6))


def to_table(registry: MetricsRegistry,
             title: str = "Telemetry") -> str:
    """Aligned monospace table of every series, for terminals."""
    # Imported lazily: repro.analysis pulls in the whole measurement
    # stack, which itself imports repro.telemetry at module load.
    from repro.analysis.textfmt import render_table
    rows = []
    for metric in registry:
        if _is_empty_histogram(metric):
            continue
        name = _series_name(metric)
        if isinstance(metric, Histogram):
            rows.append((name, "histogram", metric.count,
                         f"p50={metric.quantile(0.5):.2f} "
                         f"p95={metric.quantile(0.95):.2f} "
                         f"p99={metric.quantile(0.99):.2f} "
                         f"p999={metric.quantile(0.999):.2f}"))
        else:
            rows.append((name, metric.kind, _number(metric.value), ""))
    return render_table(("metric", "type", "value", "quantiles"), rows,
                        title=title)


def span_tree_text(tracer: Tracer, deterministic: bool = True) -> str:
    """Indented text rendering of the span tree."""
    lines = []

    def _walk(node: dict, depth: int) -> None:
        attrs = " ".join(f"{key}={value}"
                         for key, value in node["attrs"].items())
        timing = ""
        if "sim_ms" in node:
            timing = f" sim={node['sim_ms']:.1f}ms"
        if "wall_ms" in node:
            timing += f" wall={node['wall_ms']:.1f}ms"
        status = "" if node["status"] == "ok" else f" [{node['status']}]"
        lines.append(f"{'  ' * depth}{node['name']}"
                     + (f" ({attrs})" if attrs else "")
                     + timing + status)
        for child in node["children"]:
            _walk(child, depth + 1)

    for root in tracer.as_dict(deterministic=deterministic):
        _walk(root, 0)
    return "\n".join(lines)


def write_snapshot(path: str, registry: MetricsRegistry,
                   tracer: Optional[Tracer] = None,
                   manifest: Optional[dict] = None,
                   deterministic: bool = True) -> str:
    """Write the canonical JSON snapshot to ``path``; returns the path."""
    text = to_json(registry, tracer, manifest, deterministic=deterministic)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
