"""Builders for every figure's underlying data series."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.textfmt import render_table
from repro.core.client.performance import PerformanceReport
from repro.core.client.proxy import ProxyNetwork
from repro.core.scan.campaign import CampaignResult
from repro.core.scan.providers import cdf_from_sizes
from repro.core.usage.netflow_study import DotTrafficReport
from repro.core.usage.passive_dns_study import DohUsageReport


# -- Figure 1: timeline of DNS privacy events --------------------------------------

#: (year, kind, event). Kinds: "standard", "wg", "info".
TIMELINE_EVENTS: Tuple[Tuple[int, str, str], ...] = (
    (2009, "standard", "DNSCurve proposal (earliest DNS encryption push)"),
    (2011, "standard", "DNSCrypt protocol released"),
    (2014, "wg", "IETF DPRIVE working group chartered"),
    (2015, "info", "RFC 7626: DNS privacy considerations"),
    (2016, "standard", "RFC 7858: DNS over TLS standardized"),
    (2016, "info", "RFC 7816: QNAME minimisation"),
    (2017, "standard", "RFC 8094: DNS over DTLS (experimental)"),
    (2018, "wg", "IETF DOH working group chartered"),
    (2018, "standard", "RFC 8484: DNS over HTTPS standardized"),
    (2018, "info", "RFC 8310: usage profiles for DoT/DoDTLS"),
    (2019, "standard", "DNS-over-QUIC draft under discussion"),
)


def figure1_timeline() -> List[Tuple[int, str, str]]:
    return sorted(TIMELINE_EVENTS)


# -- Figure 2: the two DoH request encodings ----------------------------------------


def figure2_requests(domain: str = "example.com") -> Dict[str, str]:
    """Render a GET and a POST DoH request for an A query of ``domain``.

    Reproduces Figure 2 with genuine wire-format payloads produced by
    the codec.
    """
    from repro.dnswire import DnsName, RRType, make_query
    from repro.doe.framing import b64url_encode
    from repro.httpsim.messages import HttpRequest

    query = make_query(DnsName.from_text(domain), RRType.A, with_edns=False)
    wire = query.encode()
    get_request = HttpRequest.get(
        f"/dns-query?dns={b64url_encode(wire)}",
        headers={"Accept": "application/dns-message",
                 "Host": "dns.example.com"})
    post_request = HttpRequest.post(
        "/dns-query", wire, "application/dns-message",
        headers={"Host": "dns.example.com"})
    return {
        "GET": f"GET {get_request.target()} HTTP/1.1",
        "POST": (f"POST {post_request.path} HTTP/1.1 "
                 f"(content-length {len(post_request.body)})"),
    }


# -- Figure 3: open DoT resolvers per scan ------------------------------------------


def figure3_series_from(dates: List[str],
                        provider_counts_per_round: List[List[Tuple[str,
                                                                   int]]],
                        resolver_totals: List[int],
                        top_providers: int = 6
                        ) -> Tuple[List[str], Dict[str, List[int]]]:
    """Figure 3 from per-round (provider key, address count) pairs.

    Each round's pairs must arrive in provider-group order (largest
    first, ties in record order) — the order
    :func:`repro.core.scan.providers.group_into_providers` emits — so
    the final round's top-N cut breaks ties exactly as the batch path
    does. Shared by :func:`figure3_series` and the streaming campaign
    accumulator to keep incremental output byte-identical to batch.
    """
    final_pairs = provider_counts_per_round[-1] if provider_counts_per_round \
        else []
    top_keys = [key for key, _ in final_pairs[:top_providers]]
    series: Dict[str, List[int]] = {key: [] for key in top_keys}
    series["others"] = []
    for pairs, total in zip(provider_counts_per_round, resolver_totals):
        by_key = dict(pairs)
        others = total
        for key in top_keys:
            count = by_key.get(key, 0)
            series[key].append(count)
            others -= count
        series["others"].append(others)
    return dates, series


def figure3_series(campaign: CampaignResult,
                   top_providers: int = 6
                   ) -> Tuple[List[str], Dict[str, List[int]]]:
    """(scan dates, {provider key or 'others': counts per scan})."""
    dates = [round_result.date_text for round_result in campaign.rounds]
    per_round = [[(group.key, group.address_count)
                  for group in round_result.groups]
                 for round_result in campaign.rounds]
    totals = [len(round_result.resolvers)
              for round_result in campaign.rounds]
    return figure3_series_from(dates, per_round, totals, top_providers)


# -- Figure 4: provider counts and invalid certificates ------------------------------


def figure4_series_from(dates: List[str], provider_counts: List[int],
                        invalid_counts: List[int],
                        final_sizes: List[int]
                        ) -> Tuple[List[str], List[int], List[int],
                                   List[Tuple[int, float]]]:
    """Figure 4 from per-round provider/invalid counts and final sizes.

    Shared by :func:`figure4_series` and the streaming campaign
    accumulator (which never holds :class:`ProviderGroup` objects).
    """
    return dates, provider_counts, invalid_counts, cdf_from_sizes(final_sizes)


def figure4_series(campaign: CampaignResult
                   ) -> Tuple[List[str], List[int], List[int],
                              List[Tuple[int, float]]]:
    """(dates, provider counts, invalid-cert provider counts, final CDF)."""
    dates = []
    provider_counts = []
    invalid_counts = []
    for round_result in campaign.rounds:
        stats = round_result.provider_statistics()
        dates.append(round_result.date_text)
        provider_counts.append(stats.provider_count)
        invalid_counts.append(stats.invalid_cert_providers)
    final_sizes = ([group.address_count for group in campaign.last.groups]
                   if campaign.rounds else [])
    return figure4_series_from(dates, provider_counts, invalid_counts,
                               final_sizes)


# -- Figure 6: vantage-point geo distribution -----------------------------------------


def figure6_distribution(network: ProxyNetwork,
                         top_n: Optional[int] = None
                         ) -> List[Tuple[str, int]]:
    distribution = network.country_distribution().most_common(top_n)
    return list(distribution)


# -- Figures 9-10: performance -----------------------------------------------------------


def figure9_series(report: PerformanceReport,
                   min_clients: int = 5) -> List[Dict[str, float]]:
    """Per-country average/median overheads, biggest populations first."""
    return [
        {
            "country": summary.country,
            "clients": summary.client_count,
            "dot_avg_ms": summary.dot_overhead_avg_ms,
            "dot_median_ms": summary.dot_overhead_median_ms,
            "doh_avg_ms": summary.doh_overhead_avg_ms,
            "doh_median_ms": summary.doh_overhead_median_ms,
        }
        for summary in report.by_country(min_clients)
    ]


def figure10_points(report: PerformanceReport
                    ) -> List[Tuple[float, float, float]]:
    return report.scatter_points()


# -- Figures 11-12: DoT traffic ---------------------------------------------------------


def figure11_series(report: DotTrafficReport
                    ) -> Dict[str, List[Tuple[str, int]]]:
    """Monthly DoT flow counts per resolver family."""
    return {
        family: sorted(series.items())
        for family, series in report.monthly_flows.items()
    }


def figure12_points(report: DotTrafficReport
                    ) -> List[Tuple[float, int, int]]:
    """(traffic share, active days, flow count) per /24."""
    return report.scatter_points()


# -- Figure 13: DoH domain query volumes ---------------------------------------------


def figure13_series(report: DohUsageReport
                    ) -> Dict[str, List[Tuple[str, int]]]:
    return {domain: sorted(series.items())
            for domain, series in report.monthly_series.items()}


# -- text rendering helpers -----------------------------------------------------------


def series_text(title: str, series: Dict[str, List[Tuple[str, int]]]) -> str:
    months = sorted({month for values in series.values()
                     for month, _ in values})
    headers = ["Series"] + months
    rows = []
    for name, values in series.items():
        lookup = dict(values)
        rows.append([name] + [str(lookup.get(month, ""))
                              for month in months])
    return render_table(headers, rows, title=title)
