"""Analysis: builders that regenerate every table and figure of the paper.

Each ``table*``/``figure*`` function returns structured data (lists of
rows / series) plus helpers in :mod:`repro.analysis.textfmt` render them
as aligned text tables, so benchmarks and examples can print the same
artefacts the paper reports.
"""

from repro.analysis.textfmt import format_percent, render_table
from repro.analysis import tables, figures
from repro.analysis.report import ExperimentSuite

__all__ = ["render_table", "format_percent", "tables", "figures",
           "ExperimentSuite"]
