"""Findings checklist: verify every headline claim of the paper.

:func:`validate_findings` runs (or reuses) the full experiment suite and
checks each of the paper's key observations and findings, returning a
structured verdict list — the programmatic version of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import ExperimentSuite
from repro.tlssim.certs import ValidationFailure


@dataclass(frozen=True)
class FindingCheck:
    """One verified claim."""

    finding: str
    claim: str
    passed: bool
    measured: str


def _check(findings: List[FindingCheck], finding: str, claim: str,
           passed: bool, measured: str) -> None:
    findings.append(FindingCheck(finding, claim, bool(passed), measured))


def validate_findings(suite: ExperimentSuite) -> List[FindingCheck]:
    """Check every finding; returns the full verdict list."""
    findings: List[FindingCheck] = []
    _validate_servers(suite, findings)
    _validate_clients(suite, findings)
    _validate_performance(suite, findings)
    _validate_usage(suite, findings)
    return findings


def _validate_servers(suite: ExperimentSuite,
                      findings: List[FindingCheck]) -> None:
    campaign = suite.campaign()
    counts = [len(round_result.resolvers)
              for round_result in campaign.rounds]
    _check(findings, "1.1", "over 1.5K open DoT resolvers in each scan",
           min(counts) > 1_500, f"min {min(counts):,} per scan")
    _check(findings, "1.1", "millions of port-853 hosts, mostly not DoT",
           campaign.first.stats.total_open_estimate > 2_000_000,
           f"{campaign.first.stats.total_open_estimate:,} estimated open")
    stats = campaign.last.provider_statistics()
    _check(findings, "1.1", "~70% of providers run one resolver address",
           0.6 < stats.single_address_fraction < 0.82,
           f"{stats.single_address_fraction:.0%}")
    working = campaign.working_doh()
    _check(findings, "1.1", "17 public DoH resolvers, 2 beyond the lists",
           len(working) == 17 and sum(
               1 for record in working if not record.in_public_list) == 2,
           f"{len(working)} working")
    _check(findings, "1.2", "~25% of DoT providers use invalid certificates",
           0.18 < stats.invalid_provider_fraction < 0.35,
           f"{stats.invalid_cert_providers}/{stats.provider_count} "
           f"({stats.invalid_provider_fraction:.0%})")
    breakdown = stats.failure_totals
    _check(findings, "1.2",
           "27 expired / 67 self-signed / 28 broken chains at May 1",
           breakdown.get(ValidationFailure.EXPIRED) == 27
           and breakdown.get(ValidationFailure.SELF_SIGNED) == 67
           and breakdown.get(ValidationFailure.BROKEN_CHAIN) == 28,
           str({key.value: value for key, value in breakdown.items()}))
    _check(findings, "1.2", "no invalid certificates among DoH resolvers",
           all(record.cert_valid for record in working),
           "all valid")


def _validate_clients(suite: ExperimentSuite,
                      findings: List[FindingCheck]) -> None:
    report = suite.reachability()
    do53 = report.rates("proxyrack", "Cloudflare", "do53")["failed"]
    dot = report.rates("proxyrack", "Cloudflare", "dot")["failed"]
    _check(findings, "2.1",
           "clear text to Cloudflare fails far more often than DoT",
           do53 > 0.10 and dot < 0.06 and do53 > 4 * dot,
           f"Do53 {do53:.1%} vs DoT {dot:.1%}")
    google_cn = report.rates("zhima", "Google", "doh")["failed"]
    _check(findings, "2.2", "censorship blocks Google DoH from China",
           google_cn > 0.98, f"{google_cn:.2%} failed")
    cells = [case for case in report.interceptions if case.intercepts_853]
    _check(findings, "2.3",
           "TLS interception: opportunistic DoT proceeds, DoH breaks",
           bool(cells) and all(case.dot_lookup_succeeded
                               for case in cells),
           f"{len(cells)} intercepted clients on port 853")
    quad9 = report.rates("proxyrack", "Quad9", "doh")["incorrect"]
    _check(findings, "2.4", "Quad9 DoH SERVFAILs at a significant rate",
           0.06 < quad9 < 0.22, f"{quad9:.1%} incorrect")


def _validate_performance(suite: ExperimentSuite,
                          findings: List[FindingCheck]) -> None:
    summary = suite.performance().global_summary()
    _check(findings, "3.1",
           "reused-connection overhead is a few milliseconds",
           abs(summary["dot_median"]) < 20 and abs(
               summary["doh_median"]) < 25,
           f"DoT {summary['dot_median']:+.1f}ms / "
           f"DoH {summary['doh_median']:+.1f}ms median")
    no_reuse = {result.vantage.replace("controlled-", ""): result
                for result in suite.no_reuse()}
    _check(findings, "3.1",
           "without reuse the overhead reaches hundreds of ms",
           no_reuse["AU"].dot_overhead_ms > 100,
           f"AU +{no_reuse['AU'].dot_overhead_ms:.0f}ms")
    by_country = {row.country: row
                  for row in suite.performance().by_country(min_clients=2)}
    if "IN" in by_country:
        _check(findings, "3.2",
               "DoE can beat clear text (India via Cloudflare DoH)",
               by_country["IN"].doh_overhead_median_ms < -40,
               f"IN {by_country['IN'].doh_overhead_median_ms:+.0f}ms")


def _validate_usage(suite: ExperimentSuite,
                    findings: List[FindingCheck]) -> None:
    _, report = suite.netflow_report()
    growth = report.growth("cloudflare", "2018-07", "2018-12")
    _check(findings, "4.1", "Cloudflare DoT grows ~56% Jul-Dec 2018",
           0.40 < growth < 0.75, f"{growth:+.0%}")
    ratio = report.dot_to_do53_ratio("cloudflare")
    _check(findings, "4.1", "DoT is 2-3 orders below clear-text DNS",
           100 < ratio < 1000, f"{ratio:.0f}x")
    blocks, traffic = report.short_lived_stats()
    _check(findings, "4.1",
           "~96% of netblocks are temporary, with ~25% of traffic",
           blocks > 0.90 and 0.1 < traffic < 0.4,
           f"{blocks:.0%} of blocks / {traffic:.0%} of traffic")
    _check(findings, "4.1", "observed DoT clients are not scanners",
           not any(suite.scanner_vetting().values()), "0 flagged")
    usage = suite.doh_usage()
    _check(findings, "4.2", "4 popular DoH domains; Google dominates",
           len(usage.popular) == 4
           and usage.dominant_domain() == "dns.google.com",
           ", ".join(usage.popular))
    cb = usage.growth("doh.cleanbrowsing.org", "2018-09", "2019-03")
    _check(findings, "4.2", "CleanBrowsing DoH grows ~10x Sep18-Mar19",
           8.0 < cb < 11.0, f"{cb:.1f}x")


def render_checklist(findings: List[FindingCheck]) -> str:
    """Render the verdicts as an aligned report."""
    lines = []
    for check in findings:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(f"[{verdict}] Finding {check.finding}: {check.claim}")
        lines.append(f"       measured: {check.measured}")
    passed = sum(1 for check in findings if check.passed)
    lines.append(f"\n{passed}/{len(findings)} findings reproduced")
    return "\n".join(lines)
