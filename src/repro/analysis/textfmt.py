"""Plain-text rendering of tables and series."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned monospace table."""
    text_rows: List[List[str]] = [[_cell(value) for value in row]
                                  for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_percent(fraction: float, digits: int = 2) -> str:
    return f"{fraction * 100:.{digits}f}%"


def format_ms(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}ms"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
