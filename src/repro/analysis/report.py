"""End-to-end experiment suite: run every study, render every artefact.

:class:`ExperimentSuite` is the one-stop entry point used by the
examples and the EXPERIMENTS.md generator: it owns a scenario, runs each
measurement leg lazily (results are cached), and renders the paper's
tables and figure series as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis import figures, tables
from repro.core.parallel import ParallelConfig
from repro.core.client import (
    AtlasStudy,
    FailureDiagnosis,
    FourProtoReport,
    FourProtoStudy,
    PerformanceStudy,
    ProxyNetwork,
    ReachabilityReport,
    ReachabilityStudy,
)
from repro.core.scan.campaign import CampaignResult, ScanCampaign
from repro.core.usage import (
    DohUsageStudy,
    DotTrafficStudy,
    NetworkScanMonitor,
)
from repro.datasets.netflow import generate_netflow_dataset
from repro.datasets.passive_dns import build_passive_dns_stores
from repro.httpsim.uri import UriTemplate
from repro.world.scenario import Scenario, ScenarioConfig, build_scenario


@dataclass
class ExperimentSuite:
    """Runs the full reproduction over one scenario."""

    scenario: Scenario
    #: Fraction of each vantage population the client studies use
    #: (1.0 = everything the scenario built).
    client_sample: float = 1.0
    netflow_scale: float = 1.0
    #: Sharded execution plan (``--workers``/``--shards``); None keeps
    #: the historical serial paths byte-for-byte.
    parallel: Optional[ParallelConfig] = None
    _campaign: Optional[CampaignResult] = field(default=None, repr=False)
    _reachability: Optional[ReachabilityReport] = field(default=None,
                                                        repr=False)
    _performance = None
    _fourproto: Optional[FourProtoReport] = field(default=None, repr=False)
    _no_reuse = None
    _diagnosis = None
    _netflow_report = None
    _doh_usage = None
    _atlas = None

    @classmethod
    def build(cls, config: Optional[ScenarioConfig] = None,
              **kwargs) -> "ExperimentSuite":
        return cls(scenario=build_scenario(config), **kwargs)

    # -- populations ------------------------------------------------------------

    def proxyrack_network(self) -> ProxyNetwork:
        points = self.scenario.proxyrack()
        return ProxyNetwork("ProxyRack", self._sample(points))

    def zhima_network(self) -> ProxyNetwork:
        points = self.scenario.zhima()
        return ProxyNetwork("Zhima", self._sample(points))

    def _sample(self, points):
        if self.client_sample >= 1.0:
            return points
        keep = max(1, round(len(points) * self.client_sample))
        return points[:keep]

    # -- studies (lazy, cached) ----------------------------------------------------

    def campaign(self) -> CampaignResult:
        if self._campaign is None:
            self._campaign = ScanCampaign(
                self.scenario, parallel=self.parallel).run()
        return self._campaign

    def reachability(self) -> ReachabilityReport:
        if self._reachability is None:
            study = ReachabilityStudy(self.scenario)
            if self.parallel is not None:
                report = study.run_sharded("proxyrack", self.parallel,
                                           sample=self.client_sample)
                self._reachability = study.run_sharded(
                    "zhima", self.parallel, sample=self.client_sample,
                    report=report)
            else:
                report = study.run("proxyrack",
                                   self.proxyrack_network().endpoints())
                self._reachability = study.run(
                    "zhima", self.zhima_network().endpoints(), report)
        return self._reachability

    def diagnosis(self):
        if self._diagnosis is None:
            report = self.reachability()
            failed = set(report.failed_endpoints("proxyrack", "Cloudflare",
                                                 "dot"))
            points = [point for point in self.proxyrack_network().endpoints()
                      if point.env.label in failed]
            diagnosis = FailureDiagnosis(
                self.scenario.client_network(),
                self.scenario.rng.fork("diagnosis"),
                retry_policy=self.scenario.retry_policy(op="client.diag"))
            self._diagnosis = diagnosis.diagnose_all(points)
        return self._diagnosis

    def performance(self):
        if self._performance is None:
            study = PerformanceStudy(self.scenario)
            if self.parallel is not None:
                self._performance = study.run_sharded(
                    self.parallel, platform="proxyrack",
                    sample=self.client_sample)
            else:
                self._performance = study.run(
                    self.proxyrack_network().usable_for(2_590.0))
        return self._performance

    def fourproto(self) -> FourProtoReport:
        if self._fourproto is None:
            study = FourProtoStudy(self.scenario)
            if self.parallel is not None:
                self._fourproto = study.run_sharded(
                    self.parallel, platform="proxyrack",
                    sample=self.client_sample)
            else:
                self._fourproto = study.run(
                    self.proxyrack_network().endpoints())
        return self._fourproto

    def no_reuse(self):
        if self._no_reuse is None:
            study = PerformanceStudy(self.scenario)
            self._no_reuse = study.run_no_reuse()
        return self._no_reuse

    def netflow_report(self):
        if self._netflow_report is None:
            dataset = generate_netflow_dataset(
                self.scenario.rng.fork("netflow"), scale=self.netflow_scale)
            resolver_list = [
                record.address for round_result in self.campaign().rounds
                for record in round_result.resolvers]
            report = DotTrafficStudy(resolver_list).analyze(dataset)
            self._netflow_report = (dataset, report)
        return self._netflow_report

    def doh_usage(self):
        if self._doh_usage is None:
            domains = [UriTemplate(template).hostname
                       for template in self.scenario.all_doh_templates()]
            stores = build_passive_dns_stores(
                domains, self.scenario.rng.fork("passive-dns"))
            self._doh_usage = DohUsageStudy(stores).analyze(domains)
        return self._doh_usage

    def atlas(self):
        if self._atlas is None:
            self._atlas = AtlasStudy(self.scenario).run()
        return self._atlas

    def scanner_vetting(self) -> Dict[str, bool]:
        dataset, report = self.netflow_report()
        top_blocks = [block.netblock for block in
                      sorted(report.netblocks,
                             key=lambda block: -block.flow_count)[:100]]
        return NetworkScanMonitor().vet_netblocks(dataset.records,
                                                  top_blocks)

    # -- full report -----------------------------------------------------------------

    def render_all(self) -> str:
        """Every artefact as one text report."""
        sections: List[str] = [tables.table1_text()]
        campaign = self.campaign()
        sections.append(tables.table2_text(campaign))
        reachability = self.reachability()
        sections.append(tables.table4_text(reachability))
        sections.append(tables.table5_text(self.diagnosis()))
        sections.append(tables.table6_text(reachability))
        sections.append(tables.table7_text(self.no_reuse()))
        sections.append(tables.table8_text())
        fourproto = self.fourproto()
        sections.append(tables.fourproto_table_text(fourproto))
        sections.append(tables.handshake_table_text(fourproto))
        dates, series = figures.figure3_series(campaign)
        sections.append(figures.series_text(
            "Figure 3: Open DoT resolvers per scan",
            {name: list(zip(dates, values))
             for name, values in series.items()}))
        _, report = self.netflow_report()
        sections.append(figures.series_text(
            "Figure 11: Monthly DoT flows",
            figures.figure11_series(report)))
        sections.append(figures.series_text(
            "Figure 13: Monthly DoH domain queries",
            figures.figure13_series(self.doh_usage())))
        sections.append(self.telemetry_text())
        return "\n\n".join(sections)

    def telemetry_text(self) -> str:
        """What the instrumented pipelines recorded in this process."""
        from repro import telemetry
        registry = telemetry.get_registry()
        if not len(registry):
            return "Telemetry: no metrics recorded"
        return telemetry.to_table(
            registry, title="Telemetry: metrics recorded this process")


def longitudinal_report(summary) -> str:
    """The campaign artefacts one streaming run can render.

    Takes a :class:`repro.campaign.CampaignSummary` (imported lazily to
    keep the analysis layer importable without the campaign package) and
    renders Table 2, the Figure 3/4 series and the churn summary from
    the accumulator alone — the engine never retained a RoundResult, so
    this is everything a 100-round run has, and the longitudinal test
    tier proves it byte-identical to the batch renderings.
    """
    accumulator = summary.accumulator
    sections: List[str] = [accumulator.table2_text()]
    dates, series = accumulator.figure3_series()
    sections.append(figures.series_text(
        "Figure 3: Open DoT resolvers per scan",
        {name: list(zip(dates, values))
         for name, values in series.items()}))
    _, provider_counts, invalid_counts, cdf = accumulator.figure4_series()
    sections.append(figures.series_text(
        "Figure 4: DoT providers per scan (and invalid-cert providers)",
        {"providers": list(zip(dates, provider_counts)),
         "invalid-cert": list(zip(dates, invalid_counts))}))
    if cdf:
        sections.append("Resolvers-per-provider CDF (final round): "
                        + ", ".join(f"<= {size}: {share:.2f}"
                                    for size, share in cdf))
    churn = accumulator.churn
    if churn:
        moved = sum(entry.arrived + entry.departed for entry in churn[1:])
        sections.append(
            f"Churn: {moved} address arrivals+departures across "
            f"{len(churn)} rounds; first-round cohort survival "
            + (f"{accumulator.survival[-1]:.2f}"
               if accumulator.survival else "n/a"))
    sections.append(
        f"Campaign digest: {summary.digest or 'n/a'} "
        f"({summary.restored_rounds} rounds restored, "
        f"{summary.executed_rounds} executed)")
    return "\n\n".join(sections)
