"""Dataset release: machine-readable exports of measurement results.

The paper releases its collected data "for public use at
dnsencryption.info"; this module implements that release pipeline.
Exports are JSON- and CSV-friendly plain structures, and client
identifiers are anonymised to /24 granularity before anything leaves
the platform — the same ethics rule the collection applies.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.core.client.reachability import ReachabilityReport
from repro.core.scan.campaign import CampaignResult
from repro.core.usage.netflow_study import DotTrafficReport
from repro.netsim.ipv4 import slash24


def _anonymize(label_or_ip: str) -> str:
    """Anonymise an endpoint identifier.

    IPv4 addresses are truncated to /24; opaque endpoint labels are
    replaced by a stable positional token elsewhere, so raw labels pass
    through unchanged only when they carry no address.
    """
    parts = label_or_ip.split(".")
    if len(parts) == 4 and all(part.isdigit() for part in parts):
        return slash24(label_or_ip)
    return label_or_ip


def export_dot_resolvers(campaign: CampaignResult) -> List[Dict]:
    """The open-DoT-resolver list (per final scan), one row per address.

    This is the dataset the paper's resolver list release corresponds
    to: address, country, provider grouping key, certificate state.
    """
    rows = []
    for record in campaign.last.resolvers:
        rows.append({
            "address": record.address,
            "country": record.country,
            "provider": record.grouping_key(),
            "answer_correct": record.answer_correct,
            "cert_valid": (record.cert_report.valid
                           if record.cert_report else None),
            "cert_failure": (
                record.cert_report.primary_failure().value
                if record.cert_report is not None
                and record.cert_report.primary_failure() is not None
                else None),
        })
    return rows


def export_doh_resolvers(campaign: CampaignResult) -> List[Dict]:
    """The working-DoH-service list."""
    return [
        {
            "url": record.url,
            "hostname": record.hostname,
            "in_public_list": record.in_public_list,
            "cert_valid": record.cert_valid,
        }
        for record in campaign.working_doh()
    ]


def export_reachability(report: ReachabilityReport) -> List[Dict]:
    """Per-observation reachability rows with anonymised endpoints."""
    rows = []
    for index, observation in enumerate(report.observations):
        rows.append({
            "endpoint": f"client-{index // 12:06d}",
            "platform": observation.platform,
            "country": observation.country,
            "target": observation.target,
            "protocol": observation.protocol,
            "outcome": observation.outcome.value,
            "latency_ms": round(observation.result.latency_ms, 3),
        })
    return rows


def export_scan_timeseries(campaign: CampaignResult) -> List[Dict]:
    """Per-round summary rows (Figure 3/4 source data)."""
    rows = []
    for round_result in campaign.rounds:
        stats = round_result.provider_statistics()
        rows.append({
            "date": round_result.date_text,
            "port853_open_estimate": round_result.stats.total_open_estimate,
            "dot_resolvers": len(round_result.resolvers),
            "providers": stats.provider_count,
            "invalid_cert_providers": stats.invalid_cert_providers,
            "invalid_cert_resolvers": stats.invalid_cert_resolvers,
        })
    return rows


def export_netflow_monthly(report: DotTrafficReport) -> List[Dict]:
    """Monthly DoT flow counts per resolver family (Figure 11 data)."""
    rows = []
    for family, series in sorted(report.monthly_flows.items()):
        for month, count in sorted(series.items()):
            rows.append({"family": family, "month": month,
                         "dot_flows": count,
                         "do53_flows": report.do53_monthly
                         .get(family, {}).get(month, 0)})
    return rows


def to_json(rows: List[Dict], indent: int = 2) -> str:
    """Render export rows as a JSON document."""
    return json.dumps(rows, indent=indent, sort_keys=True)


def to_csv(rows: List[Dict]) -> str:
    """Render export rows as CSV (headers from the first row)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_release(campaign: CampaignResult,
                  reachability: Optional[ReachabilityReport],
                  netflow: Optional[DotTrafficReport],
                  directory: str) -> List[str]:
    """Write the full dataset release to a directory; returns the paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    artefacts = {
        "dot_resolvers.json": to_json(export_dot_resolvers(campaign)),
        "doh_resolvers.json": to_json(export_doh_resolvers(campaign)),
        "scan_timeseries.csv": to_csv(export_scan_timeseries(campaign)),
    }
    if reachability is not None:
        artefacts["reachability.csv"] = to_csv(
            export_reachability(reachability))
    if netflow is not None:
        artefacts["netflow_monthly.csv"] = to_csv(
            export_netflow_monthly(netflow))
    paths = []
    for name, content in artefacts.items():
        path = os.path.join(directory, name)
        with open(path, "w") as handle:
            handle.write(content)
        paths.append(path)
    return paths
