"""Builders for every table of the paper."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.textfmt import format_percent, render_table
from repro.core.comparative import PROTOCOL_ORDER, build_comparison_table
from repro.core.client.diagnosis import DiagnosisReport, PROBE_PORTS
from repro.core.client.fourproto import (
    FOURPROTO_PROTOCOLS,
    FourProtoReport,
)
from repro.core.client.performance import NoReuseResult
from repro.core.client.proxy import ProxyNetwork
from repro.core.client.reachability import ReachabilityReport
from repro.core.scan.campaign import CampaignResult
from repro.doe.metadata import IMPLEMENTATIONS, PROTOCOLS


# -- Table 1: protocol comparison ------------------------------------------------


def table1_rows() -> List[Tuple[str, str, Dict[str, str]]]:
    """(category, criterion, {protocol: symbol}) rows."""
    rows = []
    for row in build_comparison_table():
        rows.append((row.category, row.criterion,
                     {key: grade.symbol for key, grade in
                      row.grades.items()}))
    return rows


def table1_text() -> str:
    headers = ["Category", "Criterion"] + [
        PROTOCOLS[key].display_name for key in PROTOCOL_ORDER]
    rows = []
    for category, criterion, grades in table1_rows():
        rows.append([category, criterion]
                    + [grades[key] for key in PROTOCOL_ORDER])
    return render_table(headers, rows,
                        title="Table 1: Comparison of DNS-over-Encryption "
                              "protocols")


# -- Table 2: top countries of open DoT resolvers ---------------------------------


def table2_rows(campaign: CampaignResult,
                top_n: int = 10
                ) -> List[Tuple[str, int, int, Optional[float]]]:
    return campaign.country_growth(top_n)


def _growth_percent(first: int, last: int) -> int:
    """Growth percentage truncated toward zero, computed exactly.

    The paper's printed Table 2 truncates (JP's -20.6% prints as -20%,
    not -21%), and ``int()`` on the float growth is not enough: US's
    exact +431% round-trips through binary floating point as
    430.999..., which would truncate to +430.
    """
    if first <= 0:
        return 0
    magnitude = abs(last - first) * 100 // first
    return magnitude if last >= first else -magnitude


def _growth_cell(first: int, last: int) -> str:
    """What the Growth column prints for one country row.

    A country with no first-round resolvers has no base to compute a
    percentage from; it prints as a ``new`` entrant instead of the
    misleading +0% the percentage formula would produce.
    """
    if first <= 0 < last:
        return "new"
    return f"{_growth_percent(first, last):+d}%"


def table2_text_from(first_date: str, last_date: str,
                     rows: Sequence[Tuple[str, int, int, Optional[float]]]
                     ) -> str:
    """Render Table 2 from already-computed growth rows.

    Shared by the batch path (:func:`table2_text`) and the streaming
    campaign accumulator, so incremental analysis stays byte-identical
    to batch by construction.
    """
    rendered = [(code, first, last, _growth_cell(first, last))
                for code, first, last, _ in rows]
    return render_table(
        ["CC", f"# {first_date}", f"# {last_date}", "Growth"],
        rendered, title="Table 2: Top countries of open DoT resolvers")


def table2_text(campaign: CampaignResult) -> str:
    if not campaign.rounds:
        return table2_text_from("first scan", "last scan", [])
    return table2_text_from(campaign.first.date_text,
                            campaign.last.date_text, table2_rows(campaign))


# -- Table 3: client-side dataset -------------------------------------------------


def table3_rows(networks: Sequence[Tuple[str, ProxyNetwork]],
                performance_counts: Optional[Dict[str, int]] = None
                ) -> List[Tuple[str, str, int, int, int]]:
    """(test, platform, distinct IPs, countries, AS count) rows."""
    rows = []
    for test_name, network in networks:
        rows.append((
            test_name,
            network.name,
            len(network),
            len(network.country_distribution()),
            network.distinct_as_count(),
        ))
    if performance_counts:
        for platform, count in performance_counts.items():
            rows.append(("Performance", platform, count, 0, 0))
    return rows


# -- Table 4: reachability matrix -------------------------------------------------

TABLE4_TARGETS = ("Cloudflare", "Google", "Quad9", "Self-built")
TABLE4_PROTOCOLS = ("do53", "dot", "doh")


def table4_rows(report: ReachabilityReport
                ) -> List[Tuple[str, str, str, str, str, str]]:
    """(platform, protocol, target, correct, incorrect, failed) rows."""
    rows = []
    for platform in report.platforms():
        for protocol in TABLE4_PROTOCOLS:
            for target in TABLE4_TARGETS:
                rates = report.rates(platform, target, protocol)
                if not rates.get("total"):
                    rows.append((platform, protocol, target,
                                 "n/a", "n/a", "n/a"))
                    continue
                rows.append((
                    platform, protocol, target,
                    format_percent(rates["correct"]),
                    format_percent(rates["incorrect"]),
                    format_percent(rates["failed"]),
                ))
    return rows


def table4_text(report: ReachabilityReport) -> str:
    return render_table(
        ["Platform", "Type", "Resolver", "Correct", "Incorrect", "Failed"],
        table4_rows(report),
        title="Table 4: Reachability test results of public resolvers")


# -- Table 5: ports open on the conflicting 1.1.1.1 -------------------------------


def table5_rows(diagnosis: DiagnosisReport
                ) -> List[Tuple[str, int, str]]:
    """(port label, client count, example AS) rows, 'None' first."""
    rows: List[Tuple[str, int, str]] = [
        ("None", diagnosis.none_open_count(), "")]
    census = diagnosis.port_census()
    for port in PROBE_PORTS:
        count = census.get(port, 0)
        if count == 0:
            continue
        example = diagnosis.example_as_for_port(port) or ""
        rows.append((str(port), count, example))
    return rows


def table5_text(diagnosis: DiagnosisReport) -> str:
    return render_table(
        ["Port", "# Clients", "Example AS"],
        table5_rows(diagnosis),
        title="Table 5: Ports open on 1.1.1.1, probed from clients "
              "failing Cloudflare DoT")


# -- Table 6: TLS-intercepted clients ---------------------------------------------


def table6_rows(report: ReachabilityReport
                ) -> List[Tuple[str, str, str, str, str]]:
    rows = []
    for case in report.interceptions:
        rows.append((
            case.ca_common_name,
            case.country,
            f"AS{case.asn} {case.as_name}".strip(),
            "yes" if case.intercepts_443 else "no",
            "yes" if case.intercepts_853 else "no",
        ))
    return rows


def table6_text(report: ReachabilityReport) -> str:
    return render_table(
        ["CA Common Name", "CC", "Client AS", "Port 443", "Port 853"],
        table6_rows(report),
        title="Table 6: Example clients affected by TLS interception")


# -- Table 7: performance without connection reuse --------------------------------


def table7_rows(results: Sequence[NoReuseResult]
                ) -> List[Tuple[str, float, str, str]]:
    rows = []
    for result in results:
        rows.append((
            result.vantage.replace("controlled-", ""),
            result.median_do53_ms / 1000.0,
            f"{result.median_dot_ms / 1000.0:.3f} "
            f"({result.dot_overhead_ms:.0f}ms)",
            f"{result.median_doh_ms / 1000.0:.3f} "
            f"({result.doh_overhead_ms:.0f}ms)",
        ))
    return rows


def table7_text(results: Sequence[NoReuseResult]) -> str:
    return render_table(
        ["Vantage", "DNS/TCP (s)", "DoT (overhead)", "DoH (overhead)"],
        table7_rows(results),
        title="Table 7: Performance test results w/o connection reuse")


# -- Four-protocol differential tables (beyond the paper; Kosek et al. layout) -----


def _cell_ms(cell: Dict[str, float], key: str) -> str:
    return f"{cell[key]:.2f}" if key in cell else "n/a"


def fourproto_table_rows(report: FourProtoReport
                         ) -> List[Tuple[str, str, str, str, str, str]]:
    """(target, protocol, reached, cold, warm, handshake) rows."""
    rows = []
    for target in report.targets():
        for protocol in FOURPROTO_PROTOCOLS:
            cell = report.cell(target, protocol)
            if not cell:
                rows.append((target, protocol, "n/a", "n/a", "n/a",
                             "n/a"))
                continue
            rows.append((
                target, protocol,
                format_percent(cell["reached"]),
                _cell_ms(cell, "cold_median_ms"),
                _cell_ms(cell, "warm_median_ms"),
                _cell_ms(cell, "handshake_median_ms"),
            ))
    return rows


def fourproto_table_text(report: FourProtoReport) -> str:
    return render_table(
        ["Resolver", "Protocol", "Reached", "Cold (ms)", "Warm (ms)",
         "Handshake (ms)"],
        fourproto_table_rows(report),
        title="Four-protocol reachability and performance "
              "(Do53/DoT/DoH/DoQ + DNSCrypt)")


def handshake_table_rows(report: FourProtoReport
                         ) -> List[Tuple[str, str, str, str]]:
    """(target, DoQ 1-RTT, DoQ 0-RTT, DNSCrypt bootstrap) rows.

    Each column is a cost over the protocol's own warm path, so the
    proxy-leg RTT cancels: the 1-RTT column is the cold QUIC handshake,
    the 0-RTT column the resumption penalty (≈ 0 by design), and the
    DNSCrypt column the TXT bootstrap folded into its cold start.
    """
    rows = []
    for target in report.targets():
        doq = report.cell(target, "doq")
        dnscrypt = report.cell(target, "dnscrypt")
        if not doq and not dnscrypt:
            continue
        one_rtt = _cell_ms(doq, "handshake_median_ms")
        if "resumed_median_ms" in doq and "warm_median_ms" in doq:
            penalty = doq["resumed_median_ms"] - doq["warm_median_ms"]
            zero_rtt = f"{penalty:.2f}"
        else:
            zero_rtt = "n/a"
        rows.append((target, one_rtt, zero_rtt,
                     _cell_ms(dnscrypt, "handshake_median_ms")))
    return rows


def handshake_table_text(report: FourProtoReport) -> str:
    return render_table(
        ["Resolver", "DoQ 1-RTT (ms)", "DoQ 0-RTT (ms)",
         "DNSCrypt bootstrap (ms)"],
        handshake_table_rows(report),
        title="Handshake-cost breakdown: cold start vs 0-RTT resumption")


# -- Table 8: implementation survey ------------------------------------------------

_CATEGORY_LABELS = (
    ("public-dns", "Public DNS"),
    ("server", "DNS Software (Server)"),
    ("stub", "DNS Software (Stub)"),
    ("browser", "Browser"),
    ("os", "OS"),
)


def table8_rows() -> List[Tuple[str, str, str, str, str, str, str, str]]:
    def mark(flag: bool) -> str:
        return "+" if flag else ""

    rows = []
    for category, label in _CATEGORY_LABELS:
        for impl in IMPLEMENTATIONS:
            if impl.category != category:
                continue
            rows.append((label, impl.name, mark(impl.dot), mark(impl.doh),
                         mark(impl.dnscrypt), mark(impl.dnssec),
                         mark(impl.qname_minimization), impl.since))
    return rows


def table8_text() -> str:
    return render_table(
        ["Category", "Name", "DoT", "DoH", "DC", "DNSSEC", "QM", "Since"],
        table8_rows(),
        title="Table 8: Current implementations of DNS-over-Encryption")
