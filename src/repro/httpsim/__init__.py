"""Minimal HTTP model used by the DoH implementation and web diagnostics."""

from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.httpsim.uri import UriTemplate, parse_url

__all__ = ["HttpRequest", "HttpResponse", "UriTemplate", "parse_url"]
