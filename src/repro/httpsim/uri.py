"""URI templates and URL parsing for DoH service discovery.

RFC 8484 locates DoH services with URI templates such as
``https://dns.example.com/dns-query{?dns}``; this module implements the
subset of RFC 6570 those templates use, plus a small URL parser for the
URL-dataset scanning of Section 3.1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple
from urllib.parse import urlsplit

from repro.errors import ScenarioError

_TEMPLATE_RE = re.compile(r"\{\?([a-zA-Z0-9_,]+)\}\s*$")


@dataclass(frozen=True)
class ParsedUrl:
    """Relevant components of an absolute URL."""

    scheme: str
    hostname: str
    port: int
    path: str
    query: str

    @property
    def origin(self) -> str:
        return f"{self.scheme}://{self.hostname}:{self.port}"


def parse_url(url: str) -> ParsedUrl:
    """Split an absolute http(s) URL into components."""
    pieces = urlsplit(url)
    if pieces.scheme not in ("http", "https"):
        raise ScenarioError(f"unsupported URL scheme in {url!r}")
    if not pieces.hostname:
        raise ScenarioError(f"URL without a host: {url!r}")
    default_port = 443 if pieces.scheme == "https" else 80
    return ParsedUrl(
        scheme=pieces.scheme,
        hostname=pieces.hostname,
        port=pieces.port or default_port,
        path=pieces.path or "/",
        query=pieces.query,
    )


@dataclass(frozen=True)
class UriTemplate:
    """A DoH URI template, e.g. ``https://dns.example.com/dns-query{?dns}``."""

    text: str

    def parse(self) -> Tuple[ParsedUrl, Tuple[str, ...]]:
        """Split into the base URL and the templated query variables."""
        match = _TEMPLATE_RE.search(self.text)
        if match:
            variables = tuple(match.group(1).split(","))
            base = self.text[:match.start()]
        else:
            variables = ()
            base = self.text
        return parse_url(base), variables

    @property
    def hostname(self) -> str:
        parsed, _ = self.parse()
        return parsed.hostname

    @property
    def path(self) -> str:
        parsed, _ = self.parse()
        return parsed.path

    def supports_get_param(self, name: str = "dns") -> bool:
        _, variables = self.parse()
        return name in variables

    def __str__(self) -> str:
        return self.text


#: Common DoH path templates the paper scans for (RFC 8484 examples and
#: the paths adopted by Cloudflare, Google, Quad9 and most public lists).
WELL_KNOWN_DOH_PATHS: Tuple[str, ...] = (
    "/dns-query",
    "/resolve",
    "/query",
    "/doh",
)


def looks_like_doh_path(path: str) -> bool:
    """Heuristic path match used on the URL dataset.

    Exact well-known paths match, and so do sub-paths of ``/doh/``
    (providers like CleanBrowsing expose per-filter endpoints such as
    ``/doh/family-filter``).
    """
    normalized = path.rstrip("/") or "/"
    if normalized in WELL_KNOWN_DOH_PATHS:
        return True
    return normalized.startswith("/doh/")
