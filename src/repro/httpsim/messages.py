"""HTTP request/response objects.

A deliberately small model: method, path with query parameters, headers
and body — the pieces RFC 8484 DoH actually exercises. Header names are
case-insensitive as per RFC 7230.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlencode

_REASONS = {
    200: "OK",
    301: "Moved Permanently",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
}


def _fold_headers(headers: Optional[Mapping[str, str]]) -> Dict[str, str]:
    if not headers:
        return {}
    return {name.lower(): value for name, value in headers.items()}


@dataclass
class HttpRequest:
    """One HTTP request."""

    method: str
    path: str
    query: Tuple[Tuple[str, str], ...] = ()
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        self.headers = _fold_headers(self.headers)

    @classmethod
    def get(cls, path_and_query: str,
            headers: Optional[Mapping[str, str]] = None) -> "HttpRequest":
        path, _, query_text = path_and_query.partition("?")
        query = tuple(parse_qsl(query_text, keep_blank_values=True))
        return cls("GET", path, query, dict(headers or {}))

    @classmethod
    def post(cls, path: str, body: bytes, content_type: str,
             headers: Optional[Mapping[str, str]] = None) -> "HttpRequest":
        merged = dict(headers or {})
        merged["Content-Type"] = content_type
        return cls("POST", path, (), merged, body)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def query_param(self, name: str) -> Optional[str]:
        for key, value in self.query:
            if key == name:
                return value
        return None

    def target(self) -> str:
        """The request target: path plus encoded query string."""
        if not self.query:
            return self.path
        return f"{self.path}?{urlencode(self.query)}"

    def approximate_size(self) -> int:
        return (len(self.method) + len(self.target()) + len(self.body)
                + sum(len(k) + len(v) + 4 for k, v in self.headers.items())
                + 32)


@dataclass
class HttpResponse:
    """One HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        self.headers = _fold_headers(self.headers)

    @classmethod
    def ok(cls, body: bytes, content_type: str = "text/plain",
           headers: Optional[Mapping[str, str]] = None) -> "HttpResponse":
        merged = dict(headers or {})
        merged["Content-Type"] = content_type
        return cls(200, merged, body)

    @classmethod
    def error(cls, status: int, message: str = "") -> "HttpResponse":
        body = (message or _REASONS.get(status, "Error")).encode()
        return cls(status, {"Content-Type": "text/plain"}, body)

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300
