"""Retry policies with per-attempt timeouts and seeded-jitter backoff.

A :class:`RetryPolicy` decides how the measurement pipelines respond to
transport failure: how many attempts, how long each may take, how long
to back off between them, and — via the shared
:data:`repro.errors.TRANSIENT_ERRORS` allowlist — *which* failures are
worth repeating at all. The same policy object drives both styles of
caller:

* :meth:`RetryPolicy.call` wraps a callable that raises
  :mod:`repro.errors` exceptions (raw transport operations), and
* :meth:`RetryPolicy.run_query` wraps a callable returning a
  :class:`~repro.doe.result.QueryResult` (the DoE clients, which fold
  transport errors into result objects).

Every run is classified the way Tables 5-6 attribute failure causes:
``ok`` (first try), ``recovered`` (a retry cured a transient fault),
``transient-exhausted`` (the fault persisted through the attempt
budget) or ``permanent`` (retrying could not have helped). The policy
emits ``retry.*`` counters and a backoff-delay histogram through the
process-wide telemetry registry.

Backoff is exponential with an optional multiplicative jitter drawn
from a :class:`~repro.netsim.rand.SeededRng`, so two runs with the same
seed produce byte-identical schedules. Delays are *simulated* time —
they are accounted against the policy's total budget, never slept.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.doe.result import FailureKind, QueryResult
from repro.errors import TRANSIENT_ERRORS, ReproError
from repro.netsim.rand import SeededRng
from repro.telemetry import BoundCounterFamily, BoundHistogramFamily

# The op label varies per policy, so each counter is a bound *family*:
# one dict lookup per distinct op value, then plain inc() calls.
_ATTEMPTS = BoundCounterFamily("retry.attempts", "op")
_RECOVERED = BoundCounterFamily("retry.recovered", "op")
_PERMANENT = BoundCounterFamily("retry.permanent", "op")
_EXHAUSTED = BoundCounterFamily("retry.exhausted", "op")
_BUDGET_EXHAUSTED = BoundCounterFamily("retry.budget_exhausted", "op")
_BACKOFF_MS = BoundHistogramFamily("retry.backoff_delay_ms", "op")

#: Result-level mirror of :data:`repro.errors.TRANSIENT_ERRORS` for
#: callers that see :class:`FailureKind` instead of exceptions.
TRANSIENT_KINDS = frozenset({
    FailureKind.TIMEOUT,
    FailureKind.RESET,
    FailureKind.UNREACHABLE,
})


class RetryClass(enum.Enum):
    """How one retried operation ultimately ended."""

    OK = "ok"
    RECOVERED = "recovered"
    TRANSIENT_EXHAUSTED = "transient-exhausted"
    PERMANENT = "permanent"


@dataclass
class RetryOutcome:
    """The final value/error of a retried call plus its retry trail."""

    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 0
    classification: RetryClass = RetryClass.OK
    #: Backoff delays actually scheduled between attempts (ms).
    delays_ms: Tuple[float, ...] = ()
    #: Simulated time the whole operation consumed, attempts + backoff.
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, or re-raise the final error."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt count, timeouts, and exponential backoff with jitter."""

    #: Total attempts including the first (must be >= 1).
    attempts: int = 1
    #: Deadline handed to each individual attempt, seconds.
    per_attempt_timeout_s: float = 30.0
    #: First backoff delay, seconds; 0 disables backoff entirely.
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 30.0
    #: Multiplicative jitter fraction in [0, 1): each delay is scaled by
    #: a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.0
    #: Total simulated-time budget (attempt elapsed + backoff), seconds.
    #: A retry that cannot fit its backoff delay inside the remaining
    #: budget is abandoned — "timeout budget exhausted mid-backoff".
    budget_s: float = math.inf
    #: Exception classes worth retrying (:meth:`call` only).
    retryable: Tuple[type, ...] = TRANSIENT_ERRORS
    #: Telemetry label for this policy's counters.
    op: str = "op"

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(
                f"RetryPolicy.attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"RetryPolicy.jitter must be in [0, 1), got {self.jitter}")
        if self.backoff_multiplier < 1.0:
            raise ValueError("RetryPolicy.backoff_multiplier must be >= 1")

    # -- backoff schedule --------------------------------------------------

    def backoff_delay_s(self, retry_index: int,
                        rng: Optional[SeededRng] = None) -> float:
        """Delay before retry ``retry_index`` (0 = first retry), seconds.

        Without jitter (or without an rng) the schedule is the pure
        exponential ``base * multiplier**i`` capped at ``backoff_max_s``;
        with jitter the capped delay is scaled by a seeded uniform
        factor, so the jittered schedule stays within
        ``[(1-j) * delay, (1+j) * delay]``.
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_multiplier
                                       ** retry_index)
        delay = min(delay, self.backoff_max_s)
        if self.jitter > 0.0 and rng is not None:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def schedule_s(self, rng: Optional[SeededRng] = None) -> List[float]:
        """The full backoff schedule for this policy's attempt budget."""
        return [self.backoff_delay_s(index, rng)
                for index in range(max(0, self.attempts - 1))]

    # -- exception-style execution ----------------------------------------

    def call(self, fn: Callable[[], object],
             rng: Optional[SeededRng] = None,
             op: Optional[str] = None) -> RetryOutcome:
        """Run ``fn`` under this policy; ``fn`` signals failure by raising.

        Only exceptions in :attr:`retryable` are retried; anything else
        in the :class:`ReproError` hierarchy is a permanent failure and
        short-circuits after the first attempt. Non-``ReproError``
        exceptions (programming errors) propagate untouched.
        """
        label = op or self.op
        attempts_counter = _ATTEMPTS.get(label)
        outcome = RetryOutcome()
        delays: List[float] = []
        spent_s = 0.0
        for attempt in range(self.attempts):
            outcome.attempts = attempt + 1
            attempts_counter.inc()
            try:
                outcome.value = fn()
            except self.retryable as error:
                outcome.error = error
                spent_s += getattr(error, "elapsed_ms", 0.0) / 1000.0
            except ReproError as error:
                outcome.error = error
                spent_s += getattr(error, "elapsed_ms", 0.0) / 1000.0
                outcome.classification = RetryClass.PERMANENT
                _PERMANENT.get(label).inc()
                break
            else:
                outcome.error = None
                outcome.classification = (RetryClass.OK if attempt == 0
                                          else RetryClass.RECOVERED)
                if attempt > 0:
                    _RECOVERED.get(label).inc()
                break
            if attempt + 1 >= self.attempts:
                outcome.classification = RetryClass.TRANSIENT_EXHAUSTED
                _EXHAUSTED.get(label).inc()
                break
            delay_s = self.backoff_delay_s(attempt, rng)
            if spent_s + delay_s >= self.budget_s:
                # The next attempt could not even start before the
                # budget runs out: give up mid-backoff.
                outcome.classification = RetryClass.TRANSIENT_EXHAUSTED
                _EXHAUSTED.get(label).inc()
                _BUDGET_EXHAUSTED.get(label).inc()
                break
            spent_s += delay_s
            delays.append(delay_s * 1000.0)
            _BACKOFF_MS.get(label).observe(delay_s * 1000.0)
        outcome.delays_ms = tuple(delays)
        outcome.elapsed_ms = spent_s * 1000.0
        return outcome

    # -- QueryResult-style execution --------------------------------------

    def run_query(self, fn: Callable[[], QueryResult],
                  rng: Optional[SeededRng] = None,
                  op: Optional[str] = None,
                  retry_on: Optional[frozenset] = None) -> QueryResult:
        """Run a DoE-client lookup under this policy.

        ``fn`` returns a :class:`QueryResult`; a result with no DNS
        response counts as a failed attempt (the reachability study's
        historical semantics). ``retry_on`` narrows retries to specific
        :class:`FailureKind` values — ``None`` retries *any* failure,
        :data:`TRANSIENT_KINDS` retries only transient transports.

        The returned result is the last attempt's, with ``attempts``
        stamped; its retry classification lands in the ``retry.*``
        counters under the ``op`` label.
        """
        label = op or self.op
        attempts_counter = _ATTEMPTS.get(label)
        result: Optional[QueryResult] = None
        attempts_made = 0
        spent_s = 0.0
        for attempt in range(self.attempts):
            attempts_counter.inc()
            result = fn()
            attempts_made = attempt + 1
            spent_s += result.latency_ms / 1000.0
            if result.response is not None:
                result.attempts = attempts_made
                if attempt > 0:
                    _RECOVERED.get(label).inc()
                return result
            if retry_on is not None and result.failure not in retry_on:
                result.attempts = attempts_made
                _PERMANENT.get(label).inc()
                return result
            if attempts_made >= self.attempts:
                break
            delay_s = self.backoff_delay_s(attempt, rng)
            if spent_s + delay_s >= self.budget_s:
                _BUDGET_EXHAUSTED.get(label).inc()
                break
            spent_s += delay_s
            _BACKOFF_MS.get(label).observe(delay_s * 1000.0)
        assert result is not None
        result.attempts = attempts_made
        _EXHAUSTED.get(label).inc()
        return result

    def classify_error(self, error: BaseException) -> RetryClass:
        """Transient/permanent attribution for one observed error."""
        if isinstance(error, self.retryable):
            return RetryClass.TRANSIENT_EXHAUSTED
        return RetryClass.PERMANENT


@dataclass
class RetryStats:
    """Aggregate view of many retried operations (diagnosis helper)."""

    ok: int = 0
    recovered: int = 0
    transient_exhausted: int = 0
    permanent: int = 0
    by_class: dict = field(default_factory=dict)

    def record(self, classification: RetryClass) -> None:
        self.by_class[classification.value] = (
            self.by_class.get(classification.value, 0) + 1)
        if classification is RetryClass.OK:
            self.ok += 1
        elif classification is RetryClass.RECOVERED:
            self.recovered += 1
        elif classification is RetryClass.TRANSIENT_EXHAUSTED:
            self.transient_exhausted += 1
        else:
            self.permanent += 1

    @property
    def total(self) -> int:
        return self.ok + self.recovered + self.transient_exhausted \
            + self.permanent
