"""The reachability test (Section 4.2, Table 4, Finding 2.x).

From every vantage point, issue clear-text DNS (over TCP — the proxy
platforms forward TCP only), opportunistic DoT and strict DoH queries to
each resolver's primary address, classify the outcome into Correct /
Incorrect / Failed, and collect certificates to spot TLS interception.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import (
    ParallelConfig,
    Shard,
    ShardOutcome,
    merge_outcomes,
)
from repro.core.retry import TRANSIENT_KINDS, RetryPolicy
from repro.dnswire.builder import make_query
from repro.dnswire.rdtypes import RRType
from repro.doe.do53 import Do53Client
from repro.doe.doh import DohClient, DohMethod
from repro.doe.dot import DotClient, PrivacyProfile
from repro.doe.result import QueryOutcome, QueryResult
from repro.httpsim.uri import UriTemplate
from repro.netsim.network import Network
from repro.netsim.rand import SeededRng
from repro.telemetry import get_registry, get_tracer
from repro.tlssim.certs import ValidationFailure
from repro.world.population import VantagePoint
from repro.world.scenario import (
    GOOGLE_DO53_IPS,
    SELF_BUILT_IP,
    Scenario,
    ScenarioConfig,
)

MAX_ATTEMPTS = 5
TIMEOUT_S = 30.0


def platform_points(scenario: Scenario, platform: str,
                    sample: float = 1.0) -> List[VantagePoint]:
    """The vantage points of one platform, optionally down-sampled.

    Mirrors ``ExperimentSuite._sample`` (keep the first
    ``round(len * sample)`` points, at least one) so parent and worker
    processes agree on the point list without pickling it.
    """
    if platform == "proxyrack":
        points = scenario.proxyrack()
    elif platform == "zhima":
        points = scenario.zhima()
    else:
        raise ValueError(f"unknown vantage platform {platform!r}")
    if sample >= 1.0:
        return points
    keep = max(1, round(len(points) * sample))
    return points[:keep]


@dataclass(frozen=True)
class TargetSpec:
    """One resolver under test (primary addresses only, as in Fig. 7).

    The optional DoQ/DNSCrypt addresses extend the original three-column
    spec for the four-protocol pipeline; the defaults keep the classic
    reachability study byte-identical.
    """

    name: str
    do53_ip: str
    dot_ip: Optional[str]
    doh_template: Optional[str]
    doq_ip: Optional[str] = None
    dnscrypt_ip: Optional[str] = None


def default_targets(scenario: Scenario) -> List[TargetSpec]:
    """The paper's four targets: Cloudflare, Google, Quad9, self-built.

    Google DoT was not announced at experiment time → ``dot_ip=None``.
    """
    return [
        TargetSpec("Cloudflare", "1.1.1.1", "1.1.1.1",
                   "https://mozilla.cloudflare-dns.com/dns-query{?dns}"),
        TargetSpec("Google", GOOGLE_DO53_IPS[0], None,
                   "https://dns.google.com/resolve{?dns}"),
        TargetSpec("Quad9", "9.9.9.9", "9.9.9.9",
                   "https://dns.quad9.net/dns-query{?dns}"),
        TargetSpec("Self-built", SELF_BUILT_IP, SELF_BUILT_IP,
                   f"https://dns.selfbuilt.example/dns-query{{?dns}}"),
    ]


@dataclass
class Observation:
    """One endpoint × target × protocol measurement."""

    endpoint: str
    platform: str
    country: str
    target: str
    protocol: str
    outcome: QueryOutcome
    result: QueryResult


@dataclass
class InterceptionCase:
    """A client whose TLS sessions are proxied (Table 6 rows)."""

    endpoint: str
    country: str
    asn: int
    as_name: str
    ca_common_name: str
    intercepts_853: bool
    intercepts_443: bool
    #: Whether the opportunistic DoT lookup still answered (it does: the
    #: proxy forwards to the real resolver).
    dot_lookup_succeeded: bool


@dataclass
class ReachabilityReport:
    """Aggregated Table 4 plus the finding-specific case lists."""

    observations: List[Observation] = field(default_factory=list)
    interceptions: List[InterceptionCase] = field(default_factory=list)

    def add(self, observation: Observation) -> None:
        self.observations.append(observation)

    def rates(self, platform: str, target: str,
              protocol: str) -> Dict[str, float]:
        """Correct/Incorrect/Failed fractions for one table cell."""
        relevant = [obs for obs in self.observations
                    if obs.platform == platform and obs.target == target
                    and obs.protocol == protocol]
        total = len(relevant)
        if not total:
            return {"correct": 0.0, "incorrect": 0.0, "failed": 0.0,
                    "total": 0}
        counts = defaultdict(int)
        for obs in relevant:
            counts[obs.outcome.value] += 1
        return {
            "correct": counts["correct"] / total,
            "incorrect": counts["incorrect"] / total,
            "failed": counts["failed"] / total,
            "total": total,
        }

    def failed_endpoints(self, platform: str, target: str,
                         protocol: str) -> List[str]:
        return [obs.endpoint for obs in self.observations
                if obs.platform == platform and obs.target == target
                and obs.protocol == protocol
                and obs.outcome is QueryOutcome.FAILED]

    def platforms(self) -> Tuple[str, ...]:
        return tuple(sorted({obs.platform for obs in self.observations}))


@dataclass(frozen=True)
class _ReachTask:
    """Measure one slice of a platform's vantage-point list."""

    config: ScenarioConfig
    platform: str
    sample: float
    shard: Shard
    max_attempts: int = MAX_ATTEMPTS


def _reach_shard(task: _ReachTask) -> ShardOutcome:
    from repro.core.scan.campaign import shard_scenario
    final_round = task.config.scan_rounds - 1
    scenario, network = shard_scenario(task.config, final_round, task.shard)
    study = ReachabilityStudy(scenario, network=network,
                              max_attempts=task.max_attempts)
    # Stream only this shard's window: point derivation is per-index
    # pure, so the window matches the same slice of the full list
    # without the worker materialising the whole platform population.
    points = list(scenario.iter_platform_points(
        task.platform, task.sample, task.shard.start, task.shard.stop))
    report = ReachabilityReport()
    with get_tracer().span("client.reachability.shard",
                           clock=network.clock.now,
                           platform=task.platform, endpoints=len(points)):
        for point in points:
            study.measure_endpoint(point, report)
    return ShardOutcome(task.shard.index, report)


class ReachabilityStudy:
    """Runs the full reachability workflow of Figure 7."""

    def __init__(self, scenario: Scenario,
                 network: Optional[Network] = None,
                 rng: Optional[SeededRng] = None,
                 max_attempts: int = MAX_ATTEMPTS,
                 retry_policy: Optional[RetryPolicy] = None):
        self.scenario = scenario
        self.network = network or scenario.client_network()
        self.rng = rng or scenario.rng.fork("reachability")
        self.max_attempts = max_attempts
        #: The per-lookup retry behaviour. The default reproduces the
        #: study's historical semantics exactly: up to ``max_attempts``
        #: immediate repeats of any lookup that produced no DNS response.
        self.retry_policy = retry_policy or scenario.retry_policy(
            default_attempts=max_attempts, op="client.reach")
        self.targets = default_targets(scenario)

    # -- single-endpoint workflow ----------------------------------------------

    def measure_endpoint(self, point: VantagePoint,
                         report: ReachabilityReport) -> None:
        env = point.env
        endpoint_rng = self.rng.fork(f"ep-{env.label}")
        do53 = Do53Client(self.network, endpoint_rng.fork("do53"))
        dot = DotClient(self.network, endpoint_rng.fork("dot"),
                        self.scenario.trust_store,
                        profile=PrivacyProfile.OPPORTUNISTIC)
        doh = DohClient(self.network, endpoint_rng.fork("doh"),
                        self.scenario.trust_store,
                        bootstrap=self.scenario.bootstrap,
                        method=DohMethod.POST)
        dot_results: Dict[str, QueryResult] = {}
        doh_results: Dict[str, QueryResult] = {}
        for target in self.targets:
            query_rng = endpoint_rng.fork(f"q-{target.name}")
            result = self._attempt(
                lambda: do53.query_tcp(
                    env, target.do53_ip,
                    self._probe_query(query_rng), reuse=False,
                    timeout_s=TIMEOUT_S))
            report.add(self._observe(point, target, "do53", result))
            if target.dot_ip is not None:
                result = self._attempt(
                    lambda: dot.query(env, target.dot_ip,
                                      self._probe_query(query_rng),
                                      reuse=False, timeout_s=TIMEOUT_S))
                dot_results[target.name] = result
                report.add(self._observe(point, target, "dot", result))
            if target.doh_template is not None:
                template = UriTemplate(target.doh_template)
                result = self._attempt(
                    lambda: doh.query(env, template,
                                      self._probe_query(query_rng),
                                      reuse=False, timeout_s=TIMEOUT_S))
                doh_results[target.name] = result
                report.add(self._observe(point, target, "doh", result))
        self._detect_interception(point, dot_results, doh_results, report)

    def run(self, platform_name: str, points: List[VantagePoint],
            report: Optional[ReachabilityReport] = None
            ) -> ReachabilityReport:
        """Measure every endpoint of one platform."""
        if report is None:
            report = ReachabilityReport()
        with get_tracer().span("client.reachability",
                               clock=self.network.clock.now,
                               platform=platform_name,
                               endpoints=len(points)):
            for point in points:
                self.measure_endpoint(point, report)
        return report

    def run_sharded(self, platform_name: str, parallel: ParallelConfig,
                    sample: float = 1.0,
                    report: Optional[ReachabilityReport] = None
                    ) -> ReachabilityReport:
        """Measure one platform across deterministic vantage-point shards.

        Per-endpoint rng streams are keyed (``ep-{label}``), so every
        shard assignment gives each endpoint the same stream; only the
        shard-scoped network-side streams (faults, backends) depend on
        the plan — and the plan depends only on (seed, shard count).
        """
        from repro.core.scan.campaign import prime_scenario
        if report is None:
            report = ReachabilityReport()
        prime_scenario(self.scenario)
        # Plan from the point *count* alone; the parent never builds
        # the platform population (workers stream their own windows).
        count = self.scenario.platform_point_count(platform_name, sample)
        with get_tracer().span("client.reachability",
                               clock=self.network.clock.now,
                               platform=platform_name,
                               endpoints=count):
            tasks = [
                _ReachTask(self.scenario.config, platform_name, sample,
                           shard, max_attempts=self.max_attempts)
                for shard in parallel.plan(count)]
            for fragment in merge_outcomes(
                    parallel.dispatch(_reach_shard, tasks, count)):
                report.observations.extend(fragment.observations)
                report.interceptions.extend(fragment.interceptions)
        return report

    # -- helpers ------------------------------------------------------------------

    def _probe_query(self, rng: SeededRng):
        token = rng.token(10)
        return make_query(self.scenario.probe_name(token), RRType.A,
                          msg_id=rng.randint(1, 0xFFFF))

    def _attempt(self, once) -> QueryResult:
        """Drive one lookup through the retry policy.

        ``retry_on=None`` repeats *any* failed lookup (the paper repeats
        failing measurements regardless of cause); the final result's
        failure kind still feeds the transient/permanent attribution via
        :meth:`_classify_failure`.
        """
        result = self.retry_policy.run_query(
            once, rng=None, op="client.reach", retry_on=None)
        self._classify_failure(result)
        return result

    def _classify_failure(self, result: QueryResult) -> None:
        """Count how the lookup ended: transient vs permanent (Table 5)."""
        if result.response is not None:
            return
        kind = (result.failure.value if result.failure else "unknown")
        get_registry().inc(
            "client.reach.failure_class",
            kind=kind,
            transient=str(result.failure in TRANSIENT_KINDS).lower())

    def _observe(self, point: VantagePoint, target: TargetSpec,
                 protocol: str, result: QueryResult) -> Observation:
        outcome = result.classify(self.scenario.expected_probe_answer())
        registry = get_registry()
        registry.inc("client.reach.outcome", protocol=protocol,
                     target=target.name, outcome=outcome.value)
        if result.response is not None:
            registry.observe("client.query.latency", result.latency_ms,
                             protocol=protocol, reuse="false")
        else:
            registry.inc("client.query.failed", protocol=protocol,
                         kind=result.failure.value
                         if result.failure else "unknown")
        return Observation(
            endpoint=point.env.label,
            platform=point.platform,
            country=point.env.country_code,
            target=target.name,
            protocol=protocol,
            outcome=outcome,
            result=result,
        )

    def _detect_interception(self, point: VantagePoint,
                             dot_results: Dict[str, QueryResult],
                             doh_results: Dict[str, QueryResult],
                             report: ReachabilityReport) -> None:
        """Finding 2.3: re-signed certificates reveal TLS interception."""
        resigned_cn = None
        dot_intercepted = False
        dot_ok = False
        for result in dot_results.values():
            if self._is_resigned(result):
                resigned_cn = result.presented_chain[0].issuer_cn
                dot_intercepted = True
                dot_ok = dot_ok or result.ok
        doh_intercepted = False
        for result in doh_results.values():
            if self._is_resigned(result):
                resigned_cn = result.presented_chain[0].issuer_cn
                doh_intercepted = True
        if resigned_cn is None:
            return
        get_registry().inc("client.reach.interception",
                           port853=str(dot_intercepted).lower(),
                           port443=str(doh_intercepted).lower())
        report.interceptions.append(InterceptionCase(
            endpoint=point.env.label,
            country=point.env.country_code,
            asn=point.env.asn,
            as_name=point.env.as_name,
            ca_common_name=resigned_cn,
            intercepts_853=dot_intercepted,
            intercepts_443=doh_intercepted,
            dot_lookup_succeeded=dot_ok,
        ))

    @staticmethod
    def _is_resigned(result: QueryResult) -> bool:
        report = result.cert_report
        if report is None or report.valid:
            return False
        return (report.has(ValidationFailure.UNTRUSTED_CA)
                and result.intercepted_by is not None)
