"""Client-side usability studies through proxy networks (Section 4)."""

from repro.core.client.proxy import ProxyNetwork
from repro.core.client.reachability import (
    ReachabilityReport,
    ReachabilityStudy,
    TargetSpec,
    default_targets,
)
from repro.core.client.diagnosis import DiagnosisReport, FailureDiagnosis
from repro.core.client.performance import (
    NoReuseResult,
    PerformanceReport,
    PerformanceStudy,
)
from repro.core.client.fourproto import (
    FourProtoReport,
    FourProtoStudy,
    fourproto_targets,
    query_with_fallback,
)
from repro.core.client.atlas import AtlasStudy, AtlasResult

__all__ = [
    "ProxyNetwork",
    "TargetSpec",
    "default_targets",
    "ReachabilityStudy",
    "ReachabilityReport",
    "FailureDiagnosis",
    "DiagnosisReport",
    "PerformanceStudy",
    "PerformanceReport",
    "NoReuseResult",
    "FourProtoStudy",
    "FourProtoReport",
    "fourproto_targets",
    "query_with_fallback",
    "AtlasStudy",
    "AtlasResult",
]
