"""Local-resolver DoT probing via RIPE-Atlas-style probes (Section 3.1).

The paper checks how many ISP *local* resolvers speak DoT: of 6,655
probes, only 24 (0.3%) completed a DoT query against their configured
local resolver — probes whose local resolver is a well-known public
service (8.8.8.8 etc.) are excluded first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dnswire.builder import make_query
from repro.dnswire.rdtypes import RRType
from repro.doe.dot import DotClient, PrivacyProfile
from repro.netsim.network import Network
from repro.netsim.rand import SeededRng
from repro.world.population import AtlasProbe
from repro.world.scenario import Scenario

#: Well-known public resolver addresses excluded from the local-resolver
#: analysis (footnote 1 of the paper).
WELL_KNOWN_PUBLIC = frozenset({"8.8.8.8", "8.8.4.4", "1.1.1.1", "1.0.0.1",
                               "9.9.9.9", "149.112.112.112"})


@dataclass
class AtlasResult:
    """Aggregate of the local-resolver DoT experiment."""

    total_probes: int
    excluded_public: int
    attempted: int
    succeeded: int
    dot_capable_resolvers: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0


class AtlasStudy:
    """Issues one DoT query per probe against its local resolver."""

    def __init__(self, scenario: Scenario,
                 network: Optional[Network] = None,
                 rng: Optional[SeededRng] = None):
        self.scenario = scenario
        self.network = network or scenario.client_network()
        self.rng = rng or scenario.rng.fork("atlas-study")

    def run(self, probes: Optional[List[AtlasProbe]] = None) -> AtlasResult:
        if probes is None:
            probes, _ = self.scenario.atlas()
        excluded = 0
        attempted = 0
        succeeded = 0
        capable: List[str] = []
        for probe in probes:
            if (probe.uses_public_resolver
                    or probe.local_resolver_ip in WELL_KNOWN_PUBLIC):
                excluded += 1
                continue
            attempted += 1
            probe_rng = self.rng.fork(f"probe-{probe.env.label}")
            client = DotClient(self.network, probe_rng,
                               self.scenario.trust_store,
                               profile=PrivacyProfile.OPPORTUNISTIC)
            query = make_query(
                self.scenario.probe_name(probe_rng.token(10)),
                RRType.A, msg_id=probe_rng.randint(1, 0xFFFF))
            result = client.query(probe.env, probe.local_resolver_ip,
                                  query, reuse=False, timeout_s=10.0)
            if result.ok:
                succeeded += 1
                capable.append(probe.local_resolver_ip)
        return AtlasResult(
            total_probes=len(probes),
            excluded_public=excluded,
            attempted=attempted,
            succeeded=succeeded,
            dot_capable_resolvers=capable,
        )
