"""Failure diagnosis: why can't a client reach 1.1.1.1? (Table 5)

For clients that fail the Cloudflare DoT test, probe a set of common
ports on 1.1.1.1 and fetch its webpage, then compare against the genuine
resolver's profile (ports 53/80/443 open, Cloudflare front page). A
mismatch means something else answers on that address inside the
client's network — IP conflict.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.retry import RetryClass, RetryPolicy
from repro.errors import (
    TRANSIENT_ERRORS,
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    TimeoutError_,
    TransportError,
)
from repro.httpsim.messages import HttpRequest
from repro.netsim.network import Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import TcpConnection
from repro.telemetry import get_registry, get_tracer
from repro.world.population import VantagePoint

#: Ports probed on each failed client (the Table 5 census).
PROBE_PORTS: Tuple[int, ...] = (22, 23, 53, 67, 80, 123, 139, 161, 179,
                                443, 853)

#: The genuine resolver's open-port profile ("Cloudflare's 1.1.1.1 opens
#: port 53, 80 and 443"; 853 as well, being the DoT endpoint).
GENUINE_PORTS = frozenset({53, 80, 443, 853})

COINMINER_MARKER = "coinhive"

#: How each transport exception reads as a Table 5/6 failure cause.
_CAUSE_BY_ERROR = (
    (ConnectionRefused, "refused"),
    (TimeoutError_, "timeout"),
    (ConnectionReset, "reset"),
    (HostUnreachable, "unreachable"),
)


def _failure_cause(error: Optional[BaseException]) -> str:
    """Name the failure cause the way the paper's tables attribute it."""
    for error_class, cause in _CAUSE_BY_ERROR:
        if isinstance(error, error_class):
            return cause
    return "error"


@dataclass
class ClientDiagnosis:
    """Probe results for one failed client."""

    endpoint: str
    country: str
    asn: int
    as_name: str
    open_ports: Tuple[int, ...]
    webpage_title: str = ""
    crypto_hijacked: bool = False
    #: Why each closed port failed: port -> "refused" / "timeout" /
    #: "reset" / "unreachable" — the Table 5/6-style cause attribution.
    failure_causes: Dict[int, str] = field(default_factory=dict)
    #: Ports whose failures were transient but survived every retry.
    transient_exhausted_ports: Tuple[int, ...] = ()

    @property
    def no_ports_open(self) -> bool:
        return not self.open_ports

    @property
    def is_conflict(self) -> bool:
        """True when the port/webpage profile contradicts the genuine host."""
        return set(self.open_ports) != GENUINE_PORTS


@dataclass
class DiagnosisReport:
    """Aggregated Table 5 data."""

    clients: List[ClientDiagnosis] = field(default_factory=list)

    def port_census(self) -> Dict[int, int]:
        """How many failed clients had each probed port open."""
        census: Counter = Counter()
        for client in self.clients:
            census.update(client.open_ports)
        return dict(census)

    def none_open_count(self) -> int:
        """Presumed blackholed / internal-routing addresses."""
        return sum(1 for client in self.clients if client.no_ports_open)

    def hijacked_count(self) -> int:
        return sum(1 for client in self.clients if client.crypto_hijacked)

    def conflict_count(self) -> int:
        return sum(1 for client in self.clients if client.is_conflict)

    def example_as_for_port(self, port: int) -> Optional[str]:
        for client in self.clients:
            if port in client.open_ports and client.as_name:
                return f"AS{client.asn} {client.as_name}"
        return None

    def cause_census(self) -> Dict[str, int]:
        """How many closed-port observations had each failure cause.

        Mirrors the way Table 5/6 attribute failures: a refused port
        means nothing listens (IP conflict / closed), a timeout means
        the path blackholes the probe, a reset means in-path
        interference.
        """
        census: Counter = Counter()
        for client in self.clients:
            census.update(client.failure_causes.values())
        return dict(census)


class FailureDiagnosis:
    """Probes failed clients' view of one resolver address."""

    def __init__(self, network: Network, rng: SeededRng,
                 resolver_ip: str = "1.1.1.1",
                 ports: Tuple[int, ...] = PROBE_PORTS,
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.rng = rng
        self.resolver_ip = resolver_ip
        self.ports = ports
        #: Transient failures (TRANSIENT_ERRORS) get retried before a
        #: port is declared closed; refusals short-circuit immediately.
        self.retry_policy = retry_policy or RetryPolicy(
            retryable=TRANSIENT_ERRORS, op="client.diag")

    def diagnose(self, point: VantagePoint) -> ClientDiagnosis:
        env = point.env
        probe_rng = self.rng.fork(f"diag-{env.label}")
        open_ports = []
        failure_causes: Dict[int, str] = {}
        exhausted_ports = []
        registry = get_registry()
        for port in self.ports:
            outcome = self.retry_policy.call(
                lambda: TcpConnection.open(
                    self.network, env, self.resolver_ip, port, probe_rng,
                    timeout_s=3.0),
                rng=probe_rng.fork(f"retry-{port}"), op="client.diag")
            if not outcome.ok:
                cause = _failure_cause(outcome.error)
                failure_causes[port] = cause
                if outcome.classification is RetryClass.TRANSIENT_EXHAUSTED:
                    exhausted_ports.append(port)
                registry.inc("client.diag.failure_cause", cause=cause,
                             classification=outcome.classification.value)
                continue
            outcome.value.close()
            open_ports.append(port)
        webpage_title, hijacked = self._fetch_webpage(env, probe_rng,
                                                      open_ports)
        registry.inc("client.diag.clients")
        registry.inc("client.diag.ports_probed", len(self.ports))
        registry.inc("client.diag.ports_open", len(open_ports))
        if hijacked:
            registry.inc("client.diag.crypto_hijacked")
        return ClientDiagnosis(
            endpoint=env.label,
            country=env.country_code,
            asn=env.asn,
            as_name=env.as_name,
            open_ports=tuple(open_ports),
            webpage_title=webpage_title,
            crypto_hijacked=hijacked,
            failure_causes=failure_causes,
            transient_exhausted_ports=tuple(exhausted_ports),
        )

    def diagnose_all(self, points: List[VantagePoint]) -> DiagnosisReport:
        report = DiagnosisReport()
        with get_tracer().span("client.diagnosis",
                               clock=self.network.clock.now,
                               clients=len(points)):
            for point in points:
                report.clients.append(self.diagnose(point))
        return report

    def _fetch_webpage(self, env, probe_rng,
                       open_ports: List[int]) -> Tuple[str, bool]:
        if 80 not in open_ports:
            return "", False
        try:
            connection = TcpConnection.open(
                self.network, env, self.resolver_ip, 80, probe_rng,
                timeout_s=3.0)
            response = connection.request(HttpRequest.get("/"))
            connection.close()
        except TransportError:
            return "", False
        body = response.body.decode("utf-8", errors="replace")
        title = ""
        if "<title>" in body:
            title = body.split("<title>", 1)[1].split("</title>", 1)[0]
        return title, COINMINER_MARKER in body.lower()
