"""Failure diagnosis: why can't a client reach 1.1.1.1? (Table 5)

For clients that fail the Cloudflare DoT test, probe a set of common
ports on 1.1.1.1 and fetch its webpage, then compare against the genuine
resolver's profile (ports 53/80/443 open, Cloudflare front page). A
mismatch means something else answers on that address inside the
client's network — IP conflict.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.httpsim.messages import HttpRequest
from repro.netsim.network import Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import TcpConnection
from repro.telemetry import get_registry, get_tracer
from repro.world.population import VantagePoint

#: Ports probed on each failed client (the Table 5 census).
PROBE_PORTS: Tuple[int, ...] = (22, 23, 53, 67, 80, 123, 139, 161, 179,
                                443, 853)

#: The genuine resolver's open-port profile ("Cloudflare's 1.1.1.1 opens
#: port 53, 80 and 443"; 853 as well, being the DoT endpoint).
GENUINE_PORTS = frozenset({53, 80, 443, 853})

COINMINER_MARKER = "coinhive"


@dataclass
class ClientDiagnosis:
    """Probe results for one failed client."""

    endpoint: str
    country: str
    asn: int
    as_name: str
    open_ports: Tuple[int, ...]
    webpage_title: str = ""
    crypto_hijacked: bool = False

    @property
    def no_ports_open(self) -> bool:
        return not self.open_ports

    @property
    def is_conflict(self) -> bool:
        """True when the port/webpage profile contradicts the genuine host."""
        return set(self.open_ports) != GENUINE_PORTS


@dataclass
class DiagnosisReport:
    """Aggregated Table 5 data."""

    clients: List[ClientDiagnosis] = field(default_factory=list)

    def port_census(self) -> Dict[int, int]:
        """How many failed clients had each probed port open."""
        census: Counter = Counter()
        for client in self.clients:
            census.update(client.open_ports)
        return dict(census)

    def none_open_count(self) -> int:
        """Presumed blackholed / internal-routing addresses."""
        return sum(1 for client in self.clients if client.no_ports_open)

    def hijacked_count(self) -> int:
        return sum(1 for client in self.clients if client.crypto_hijacked)

    def conflict_count(self) -> int:
        return sum(1 for client in self.clients if client.is_conflict)

    def example_as_for_port(self, port: int) -> Optional[str]:
        for client in self.clients:
            if port in client.open_ports and client.as_name:
                return f"AS{client.asn} {client.as_name}"
        return None


class FailureDiagnosis:
    """Probes failed clients' view of one resolver address."""

    def __init__(self, network: Network, rng: SeededRng,
                 resolver_ip: str = "1.1.1.1",
                 ports: Tuple[int, ...] = PROBE_PORTS):
        self.network = network
        self.rng = rng
        self.resolver_ip = resolver_ip
        self.ports = ports

    def diagnose(self, point: VantagePoint) -> ClientDiagnosis:
        env = point.env
        probe_rng = self.rng.fork(f"diag-{env.label}")
        open_ports = []
        for port in self.ports:
            try:
                connection = TcpConnection.open(
                    self.network, env, self.resolver_ip, port, probe_rng,
                    timeout_s=3.0)
            except TransportError:
                continue
            connection.close()
            open_ports.append(port)
        webpage_title, hijacked = self._fetch_webpage(env, probe_rng,
                                                      open_ports)
        registry = get_registry()
        registry.inc("client.diag.clients")
        registry.inc("client.diag.ports_probed", len(self.ports))
        registry.inc("client.diag.ports_open", len(open_ports))
        if hijacked:
            registry.inc("client.diag.crypto_hijacked")
        return ClientDiagnosis(
            endpoint=env.label,
            country=env.country_code,
            asn=env.asn,
            as_name=env.as_name,
            open_ports=tuple(open_ports),
            webpage_title=webpage_title,
            crypto_hijacked=hijacked,
        )

    def diagnose_all(self, points: List[VantagePoint]) -> DiagnosisReport:
        report = DiagnosisReport()
        with get_tracer().span("client.diagnosis",
                               clock=self.network.clock.now,
                               clients=len(points)):
            for point in points:
                report.clients.append(self.diagnose(point))
        return report

    def _fetch_webpage(self, env, probe_rng,
                       open_ports: List[int]) -> Tuple[str, bool]:
        if 80 not in open_ports:
            return "", False
        try:
            connection = TcpConnection.open(
                self.network, env, self.resolver_ip, 80, probe_rng,
                timeout_s=3.0)
            response = connection.request(HttpRequest.get("/"))
            connection.close()
        except TransportError:
            return "", False
        body = response.body.decode("utf-8", errors="replace")
        title = ""
        if "<title>" in body:
            title = body.split("<title>", 1)[1].split("</title>", 1)[0]
        return title, COINMINER_MARKER in body.lower()
