"""Residential SOCKS proxy networks as measurement vantage points.

Models the operational constraints of the paper's two platforms:
TCP-only forwarding (the reason DNS/TCP is the clear-text baseline),
limited endpoint lifetime (the uptime check before the performance
test), and endpoint rotation.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.world.population import VantagePoint


class ProxyNetwork:
    """A pool of recruited endpoints with lifetime bookkeeping."""

    #: Proxy platforms only forward TCP; UDP-based tests are impossible
    #: (paper Section 4.1, Limitations).
    supports_udp = False

    def __init__(self, name: str, endpoints: List[VantagePoint]):
        self.name = name
        self._endpoints = list(endpoints)
        self._removed: set = set()

    def endpoints(self) -> List[VantagePoint]:
        return [point for point in self._endpoints
                if point.env.label not in self._removed]

    def __len__(self) -> int:
        return len(self.endpoints())

    def usable_for(self, duration_s: float) -> List[VantagePoint]:
        """Endpoints whose remaining uptime survives a test of this length.

        The performance test "first check[s the] remaining uptime (using
        ProxyRack API) and discard[s the endpoint] if expiring soon".
        """
        return [point for point in self.endpoints()
                if point.remaining_uptime_s >= duration_s]

    def remove(self, point: VantagePoint) -> None:
        """Drop an endpoint after an unexpected service disruption."""
        self._removed.add(point.env.label)

    def country_distribution(self) -> Counter:
        """Endpoint count per country (Figure 6)."""
        return Counter(point.env.country_code
                       for point in self.endpoints())

    def distinct_as_count(self) -> int:
        return len({(point.env.asn, point.env.as_name)
                    for point in self.endpoints()})
