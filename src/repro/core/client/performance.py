"""The performance test (Section 4.3, Figures 9-10, Table 7).

Two modes, matching the paper's methodology:

* **Reused connections** (the main focus): from each usable proxy
  endpoint issue 20 DNS/TCP, 20 DoT and 20 DoH queries on persistent
  connections; compare the per-endpoint medians. Measuring at the proxy
  client adds one proxy-leg RTT to every protocol equally, so the
  *differences* are unbiased — the study therefore works directly with
  per-endpoint latency differences.
* **No reuse** (Table 7): from a handful of controlled vantages, issue
  200 queries per protocol, each on a fresh connection, against the
  self-built resolver.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import (
    ParallelConfig,
    Shard,
    ShardOutcome,
    merge_outcomes,
)
from repro.dnswire.builder import make_query
from repro.dnswire.rdtypes import RRType
from repro.doe.do53 import Do53Client
from repro.doe.doh import DohClient, DohMethod
from repro.doe.dot import DotClient, PrivacyProfile
from repro.httpsim.uri import UriTemplate
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import get_registry, get_tracer
from repro.world.population import VantagePoint
from repro.world.scenario import SELF_BUILT_IP, Scenario, ScenarioConfig

QUERIES_PER_ENDPOINT = 20
QUERIES_NO_REUSE = 200


def _record_query(result, protocol: str, reuse: bool) -> None:
    registry = get_registry()
    if result.ok:
        registry.observe("client.query.latency", result.latency_ms,
                         protocol=protocol, reuse=str(reuse).lower())
    else:
        registry.inc("client.query.failed", protocol=protocol,
                     kind=result.failure.value
                     if result.failure else "unknown")

#: Endpoints must survive the whole battery; shorter-lived ones are
#: discarded up front (Section 4.1).
REQUIRED_UPTIME_S = 2_590.0


@dataclass
class EndpointTiming:
    """Per-endpoint medians and overheads (one Figure 10 point)."""

    endpoint: str
    country: str
    target: str
    median_do53_ms: float
    median_dot_ms: float
    median_doh_ms: float

    @property
    def dot_overhead_ms(self) -> float:
        return self.median_dot_ms - self.median_do53_ms

    @property
    def doh_overhead_ms(self) -> float:
        return self.median_doh_ms - self.median_do53_ms


@dataclass
class CountrySummary:
    """One Figure 9 bar: average/median overhead for one country."""

    country: str
    client_count: int
    dot_overhead_avg_ms: float
    dot_overhead_median_ms: float
    doh_overhead_avg_ms: float
    doh_overhead_median_ms: float


@dataclass
class PerformanceReport:
    """Reused-connection results."""

    timings: List[EndpointTiming] = field(default_factory=list)

    def global_summary(self) -> Dict[str, float]:
        dot = [timing.dot_overhead_ms for timing in self.timings]
        doh = [timing.doh_overhead_ms for timing in self.timings]
        if not dot:
            return {}
        return {
            "dot_avg": statistics.fmean(dot),
            "dot_median": statistics.median(dot),
            "doh_avg": statistics.fmean(doh),
            "doh_median": statistics.median(doh),
            "clients": len(dot),
        }

    def by_country(self, min_clients: int = 5) -> List[CountrySummary]:
        per_country: Dict[str, List[EndpointTiming]] = defaultdict(list)
        for timing in self.timings:
            per_country[timing.country].append(timing)
        summaries = []
        for country_code, timings in sorted(
                per_country.items(), key=lambda item: -len(item[1])):
            if len(timings) < min_clients:
                continue
            dot = [timing.dot_overhead_ms for timing in timings]
            doh = [timing.doh_overhead_ms for timing in timings]
            summaries.append(CountrySummary(
                country=country_code,
                client_count=len(timings),
                dot_overhead_avg_ms=statistics.fmean(dot),
                dot_overhead_median_ms=statistics.median(dot),
                doh_overhead_avg_ms=statistics.fmean(doh),
                doh_overhead_median_ms=statistics.median(doh),
            ))
        return summaries

    def scatter_points(self) -> List[Tuple[float, float, float]]:
        """Figure 10 data: (do53, dot, doh) medians per client."""
        return [(timing.median_do53_ms, timing.median_dot_ms,
                 timing.median_doh_ms) for timing in self.timings]


@dataclass
class NoReuseResult:
    """One Table 7 row."""

    vantage: str
    median_do53_ms: float
    median_dot_ms: float
    median_doh_ms: float

    @property
    def dot_overhead_ms(self) -> float:
        return self.median_dot_ms - self.median_do53_ms

    @property
    def doh_overhead_ms(self) -> float:
        return self.median_doh_ms - self.median_do53_ms


@dataclass(frozen=True)
class _PerfTask:
    """Time one slice of a platform's vantage-point list."""

    config: ScenarioConfig
    platform: str
    sample: float
    shard: Shard
    queries: int = QUERIES_PER_ENDPOINT
    require_uptime: bool = True
    do53_ip: str = "1.1.1.1"
    dot_ip: str = "1.1.1.1"
    doh_template: str = "https://mozilla.cloudflare-dns.com/dns-query{?dns}"
    target_name: str = "Cloudflare"


def _perf_shard(task: _PerfTask) -> ShardOutcome:
    from repro.core.scan.campaign import shard_scenario
    final_round = task.config.scan_rounds - 1
    scenario, network = shard_scenario(task.config, final_round, task.shard)
    study = PerformanceStudy(scenario, network=network,
                             do53_ip=task.do53_ip, dot_ip=task.dot_ip,
                             doh_template=task.doh_template,
                             target_name=task.target_name)
    # Stream only this shard's window (per-index pure derivation).
    points = list(scenario.iter_platform_points(
        task.platform, task.sample, task.shard.start, task.shard.stop))
    report = study.run(points, queries=task.queries,
                       require_uptime=task.require_uptime)
    return ShardOutcome(task.shard.index, report.timings)


class PerformanceStudy:
    """Runs both performance modes against one target resolver."""

    def __init__(self, scenario: Scenario,
                 network: Optional[Network] = None,
                 rng: Optional[SeededRng] = None,
                 do53_ip: str = "1.1.1.1",
                 dot_ip: str = "1.1.1.1",
                 doh_template: str =
                 "https://mozilla.cloudflare-dns.com/dns-query{?dns}",
                 target_name: str = "Cloudflare"):
        self.scenario = scenario
        self.network = network or scenario.client_network()
        self.rng = rng or scenario.rng.fork("performance")
        self.do53_ip = do53_ip
        self.dot_ip = dot_ip
        self.doh_template = UriTemplate(doh_template)
        self.target_name = target_name

    # -- reused-connection mode -------------------------------------------------

    def measure_endpoint(self, point: VantagePoint,
                         queries: int = QUERIES_PER_ENDPOINT
                         ) -> Optional[EndpointTiming]:
        """Median-of-N timings on persistent connections for one endpoint."""
        env = point.env
        endpoint_rng = self.rng.fork(f"perf-{env.label}")
        do53 = Do53Client(self.network, endpoint_rng.fork("do53"))
        dot = DotClient(self.network, endpoint_rng.fork("dot"),
                        self.scenario.trust_store,
                        profile=PrivacyProfile.OPPORTUNISTIC)
        doh = DohClient(self.network, endpoint_rng.fork("doh"),
                        self.scenario.trust_store,
                        bootstrap=self.scenario.bootstrap,
                        method=DohMethod.POST)
        series: Dict[str, List[float]] = {"do53": [], "dot": [], "doh": []}
        for index in range(queries):
            query_rng = endpoint_rng.fork(f"q{index}")
            result = do53.query_tcp(env, self.do53_ip,
                                    self._query(query_rng), reuse=True)
            _record_query(result, "do53", reuse=True)
            if result.ok:
                series["do53"].append(result.latency_ms)
            result = dot.query(env, self.dot_ip, self._query(query_rng),
                               reuse=True)
            _record_query(result, "dot", reuse=True)
            if result.ok:
                series["dot"].append(result.latency_ms)
            result = doh.query(env, self.doh_template,
                               self._query(query_rng), reuse=True)
            _record_query(result, "doh", reuse=True)
            if result.ok:
                series["doh"].append(result.latency_ms)
        do53.close_all()
        dot.close_all()
        doh.close_all()
        if not all(len(values) >= queries // 2 for values in series.values()):
            # Endpoints that cannot complete the battery are excluded,
            # mirroring the removal of disrupted exit nodes.
            return None
        # The first sample of each series carries connection setup; the
        # reused-connection comparison drops it.
        return EndpointTiming(
            endpoint=env.label,
            country=env.country_code,
            target=self.target_name,
            median_do53_ms=statistics.median(series["do53"][1:]),
            median_dot_ms=statistics.median(series["dot"][1:]),
            median_doh_ms=statistics.median(series["doh"][1:]),
        )

    def run(self, points: List[VantagePoint],
            queries: int = QUERIES_PER_ENDPOINT,
            require_uptime: bool = True) -> PerformanceReport:
        report = PerformanceReport()
        registry = get_registry()
        with get_tracer().span("client.performance",
                               clock=self.network.clock.now,
                               endpoints=len(points)):
            for point in points:
                if (require_uptime
                        and point.remaining_uptime_s < REQUIRED_UPTIME_S):
                    registry.inc("client.perf.endpoint_skipped",
                                 reason="uptime")
                    continue
                timing = self.measure_endpoint(point, queries)
                if timing is not None:
                    report.timings.append(timing)
                else:
                    registry.inc("client.perf.endpoint_skipped",
                                 reason="incomplete")
        return report

    def run_sharded(self, parallel: ParallelConfig,
                    platform: str = "proxyrack", sample: float = 1.0,
                    queries: int = QUERIES_PER_ENDPOINT,
                    require_uptime: bool = True) -> PerformanceReport:
        """Reused-connection mode across deterministic point shards.

        Shards partition the *unfiltered* platform list; the uptime
        check runs inside each worker (same predicate ``usable_for``
        applies), so the surviving timing set matches a serial run over
        the pre-filtered list.
        """
        from repro.core.scan.campaign import prime_scenario
        prime_scenario(self.scenario)
        # Plan from the point count alone (see ReachabilityStudy).
        count = self.scenario.platform_point_count(platform, sample)
        with get_tracer().span("client.performance",
                               clock=self.network.clock.now,
                               endpoints=count):
            tasks = [
                _PerfTask(self.scenario.config, platform, sample, shard,
                          queries=queries, require_uptime=require_uptime,
                          do53_ip=self.do53_ip, dot_ip=self.dot_ip,
                          doh_template=self.doh_template.text,
                          target_name=self.target_name)
                for shard in parallel.plan(count)]
            report = PerformanceReport()
            for fragment in merge_outcomes(
                    parallel.dispatch(_perf_shard, tasks, count)):
                report.timings.extend(fragment)
        return report

    # -- no-reuse mode ---------------------------------------------------------------

    def measure_no_reuse(self, env: ClientEnvironment,
                         queries: int = QUERIES_NO_REUSE,
                         do53_ip: str = SELF_BUILT_IP,
                         dot_ip: str = SELF_BUILT_IP,
                         doh_template: str =
                         "https://dns.selfbuilt.example/dns-query{?dns}"
                         ) -> NoReuseResult:
        """Fresh TCP+TLS for every query (the Table 7 columns)."""
        vantage_rng = self.rng.fork(f"noreuse-{env.label}")
        do53 = Do53Client(self.network, vantage_rng.fork("do53"))
        dot = DotClient(self.network, vantage_rng.fork("dot"),
                        self.scenario.trust_store,
                        profile=PrivacyProfile.OPPORTUNISTIC)
        doh = DohClient(self.network, vantage_rng.fork("doh"),
                        self.scenario.trust_store,
                        bootstrap=self.scenario.bootstrap,
                        method=DohMethod.POST)
        template = UriTemplate(doh_template)
        series: Dict[str, List[float]] = {"do53": [], "dot": [], "doh": []}
        for index in range(queries):
            query_rng = vantage_rng.fork(f"q{index}")
            result = do53.query_tcp(env, do53_ip, self._query(query_rng),
                                    reuse=False)
            _record_query(result, "do53", reuse=False)
            if result.ok:
                series["do53"].append(result.latency_ms)
            result = dot.query(env, dot_ip, self._query(query_rng),
                               reuse=False)
            _record_query(result, "dot", reuse=False)
            if result.ok:
                series["dot"].append(result.latency_ms)
            # A fresh DoH client per query defeats session resumption.
            result = doh.query(env, template, self._query(query_rng),
                               reuse=False)
            _record_query(result, "doh", reuse=False)
            if result.ok:
                series["doh"].append(result.latency_ms)
        return NoReuseResult(
            vantage=env.label,
            median_do53_ms=statistics.median(series["do53"]),
            median_dot_ms=statistics.median(series["dot"]),
            median_doh_ms=statistics.median(series["doh"]),
        )

    def run_no_reuse(self, countries: Tuple[str, ...] = ("US", "NL", "AU",
                                                         "HK"),
                     queries: int = QUERIES_NO_REUSE) -> List[NoReuseResult]:
        """The controlled-vantage battery of Table 7."""
        results = []
        for code in countries:
            env = ClientEnvironment.in_country(
                f"controlled-{code}", f"172.104.{len(code)}.{ord(code[0])}",
                code, self.rng.fork(f"vantage-{code}"))
            results.append(self.measure_no_reuse(env, queries))
        return results

    def _query(self, rng: SeededRng):
        return make_query(self.scenario.probe_name(rng.token(10)),
                          RRType.A, msg_id=rng.randint(1, 0xFFFF))
