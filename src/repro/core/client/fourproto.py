"""The four-protocol differential study (beyond the paper's Table 4/7).

Do53, DoT and DoH carried the paper's client-side legs; this study
promotes DoQ and DNSCrypt to the same footing and measures all five
side by side, in the layout later used by Kosek et al. for DoQ: one
reachability/performance cell per (target, protocol), plus a
handshake-cost breakdown that separates

* the **cold start** (TCP+TLS for DoT/DoH, the 1-RTT QUIC handshake
  for DoQ, TXT bootstrap + sealed query for DNSCrypt) — the first
  query of each per-endpoint series;
* the **warm path** (persistent connection / established session) —
  the median of the remaining queries;
* DoQ's **0-RTT resumption** — one extra reconnect query after the
  series, riding the cached session ticket.

Fallback semantics follow each protocol's design: DoQ clients may fall
back to DoT when the UDP path is dead (draft behaviour, counted via the
``fourproto.fallback`` metric), while DNSCrypt strictly never falls
back — a failed sealed exchange is a failed query.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import (
    ParallelConfig,
    Shard,
    ShardOutcome,
    merge_outcomes,
)
from repro.core.client.performance import REQUIRED_UPTIME_S
from repro.core.client.reachability import TargetSpec
from repro.dnswire.builder import make_query
from repro.dnswire.message import Message
from repro.dnswire.rdtypes import RRType
from repro.doe.do53 import Do53Client
from repro.doe.dnscrypt import DnsCryptClient
from repro.doe.doh import DohClient, DohMethod
from repro.doe.doq import DoqClient
from repro.doe.dot import DotClient, PrivacyProfile
from repro.doe.result import FailureKind, QueryResult
from repro.httpsim.uri import UriTemplate
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import BoundCounterFamily, get_registry, get_tracer
from repro.world.population import VantagePoint
from repro.world.scenario import (
    GOOGLE_DO53_IPS,
    SELF_BUILT_IP,
    Scenario,
    ScenarioConfig,
)

#: Queries per protocol per endpoint: the first is the cold start, the
#: rest form the warm-path median.
FOURPROTO_QUERIES = 8

#: Column order of the four-protocol table (DNSCrypt rides along as the
#: pre-standard fifth column, as in the paper's Table 1).
FOURPROTO_PROTOCOLS = ("do53", "dot", "doh", "doq", "dnscrypt")

#: Failure kinds that trigger the DoQ → DoT fallback (the draft's
#: "unable to establish a QUIC connection" condition).
FALLBACK_KINDS = frozenset({FailureKind.TIMEOUT, FailureKind.UNREACHABLE,
                            FailureKind.REFUSED})

_FALLBACKS = BoundCounterFamily("fourproto.fallback", "protocol")


def fourproto_targets(scenario: Scenario) -> List[TargetSpec]:
    """The reachability targets, extended with DoQ/DNSCrypt addresses.

    Address placement mirrors :mod:`repro.world.providers`: Cloudflare
    announces DoQ only, Quad9 and the self-built resolver announce both,
    Google neither (no DoT at experiment time either).
    """
    return [
        TargetSpec("Cloudflare", "1.1.1.1", "1.1.1.1",
                   "https://mozilla.cloudflare-dns.com/dns-query{?dns}",
                   doq_ip="1.1.1.1"),
        TargetSpec("Google", GOOGLE_DO53_IPS[0], None,
                   "https://dns.google.com/resolve{?dns}"),
        TargetSpec("Quad9", "9.9.9.9", "9.9.9.9",
                   "https://dns.quad9.net/dns-query{?dns}",
                   doq_ip="9.9.9.9", dnscrypt_ip="9.9.9.9"),
        TargetSpec("Self-built", SELF_BUILT_IP, SELF_BUILT_IP,
                   "https://dns.selfbuilt.example/dns-query{?dns}",
                   doq_ip=SELF_BUILT_IP, dnscrypt_ip=SELF_BUILT_IP),
    ]


def query_with_fallback(doq_client: DoqClient, dot_client: DotClient,
                        env: ClientEnvironment, doq_ip: str,
                        dot_ip: Optional[str], message: Message,
                        timeout_s: float = 5.0
                        ) -> Tuple[QueryResult, bool]:
    """One DoQ lookup with the draft's DoT fallback.

    Returns ``(result, fell_back)``. Fallback fires only on transport
    failures (:data:`FALLBACK_KINDS`) and only when the target has a DoT
    address; certificate and protocol errors never fall back — a
    misbehaving resolver should not be silently retried in a different
    encrypted channel.
    """
    result = doq_client.query(env, doq_ip, message, reuse=True,
                              timeout_s=timeout_s)
    if result.ok or dot_ip is None or result.failure not in FALLBACK_KINDS:
        return result, False
    _FALLBACKS.get("doq").inc()
    return dot_client.query(env, dot_ip, message, reuse=True,
                            timeout_s=timeout_s), True


@dataclass
class ProtocolTiming:
    """One endpoint × target × protocol series (a table cell sample)."""

    endpoint: str
    country: str
    target: str
    protocol: str
    attempted: int
    ok_queries: int
    #: First query of the series: connection setup included (for
    #: DNSCrypt, the TXT bootstrap is folded in).
    cold_ms: float
    #: Median of the remaining (warm-path) queries.
    warm_median_ms: float
    #: DoQ only — latency of a 0-RTT reconnect query; negative = n/a.
    resumed_ms: float = -1.0
    error: str = ""

    @property
    def complete(self) -> bool:
        """Endpoint finished at least half the battery (cf. Fig. 10)."""
        return self.attempted > 0 and self.ok_queries >= self.attempted // 2

    @property
    def handshake_cost_ms(self) -> float:
        return self.cold_ms - self.warm_median_ms


@dataclass
class FourProtoReport:
    """All series plus the fallback tally of one study run."""

    timings: List[ProtocolTiming] = field(default_factory=list)
    fallbacks: int = 0

    def rows_for(self, target: str, protocol: str) -> List[ProtocolTiming]:
        return [timing for timing in self.timings
                if timing.target == target and timing.protocol == protocol]

    def cell(self, target: str, protocol: str) -> Dict[str, float]:
        """Aggregates for one (target, protocol) table cell."""
        rows = self.rows_for(target, protocol)
        if not rows:
            return {}
        complete = [timing for timing in rows if timing.complete]
        cell: Dict[str, float] = {
            "endpoints": float(len(rows)),
            "reached": len(complete) / len(rows),
        }
        if complete:
            cell["cold_median_ms"] = statistics.median(
                [timing.cold_ms for timing in complete])
            cell["warm_median_ms"] = statistics.median(
                [timing.warm_median_ms for timing in complete])
            cell["handshake_median_ms"] = statistics.median(
                [timing.handshake_cost_ms for timing in complete])
            resumed = [timing.resumed_ms for timing in complete
                       if timing.resumed_ms >= 0.0]
            if resumed:
                cell["resumed_median_ms"] = statistics.median(resumed)
        return cell

    def targets(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for timing in self.timings:
            if timing.target not in seen:
                seen.append(timing.target)
        return tuple(seen)


@dataclass(frozen=True)
class _FourProtoTask:
    """Measure one slice of a platform's vantage-point list."""

    config: ScenarioConfig
    platform: str
    sample: float
    shard: Shard
    queries: int = FOURPROTO_QUERIES
    require_uptime: bool = True


def _fourproto_shard(task: _FourProtoTask) -> ShardOutcome:
    from repro.core.scan.campaign import shard_scenario
    final_round = task.config.scan_rounds - 1
    scenario, network = shard_scenario(task.config, final_round, task.shard)
    study = FourProtoStudy(scenario, network=network, queries=task.queries)
    points = list(scenario.iter_platform_points(
        task.platform, task.sample, task.shard.start, task.shard.stop))
    report = study.run(points, require_uptime=task.require_uptime)
    return ShardOutcome(task.shard.index, (report.timings, report.fallbacks))


class FourProtoStudy:
    """Runs the differential five-column battery from every endpoint."""

    def __init__(self, scenario: Scenario,
                 network: Optional[Network] = None,
                 rng: Optional[SeededRng] = None,
                 queries: int = FOURPROTO_QUERIES,
                 targets: Optional[List[TargetSpec]] = None):
        self.scenario = scenario
        self.network = network or scenario.client_network()
        self.rng = rng or scenario.rng.fork("fourproto")
        self.queries = queries
        self.targets = targets if targets is not None \
            else fourproto_targets(scenario)

    # -- single-endpoint battery -------------------------------------------------

    def measure_endpoint(self, point: VantagePoint,
                         report: FourProtoReport) -> None:
        env = point.env
        endpoint_rng = self.rng.fork(f"fourproto-{env.label}")
        do53 = Do53Client(self.network, endpoint_rng.fork("do53"))
        dot = DotClient(self.network, endpoint_rng.fork("dot"),
                        self.scenario.trust_store,
                        profile=PrivacyProfile.OPPORTUNISTIC)
        doh = DohClient(self.network, endpoint_rng.fork("doh"),
                        self.scenario.trust_store,
                        bootstrap=self.scenario.bootstrap,
                        method=DohMethod.POST)
        doq = DoqClient(self.network, endpoint_rng.fork("doq"),
                        self.scenario.trust_store)
        fallback_dot = DotClient(self.network,
                                 endpoint_rng.fork("doq-fallback"),
                                 self.scenario.trust_store,
                                 profile=PrivacyProfile.OPPORTUNISTIC)
        dnscrypt = DnsCryptClient(self.network,
                                  endpoint_rng.fork("dnscrypt"))
        for target in self.targets:
            target_rng = endpoint_rng.fork(f"t-{target.name}")
            report.timings.append(self._measure_series(
                point, target, "do53", target_rng.fork("do53"),
                lambda q: do53.query_tcp(env, target.do53_ip, q,
                                         reuse=True)))
            if target.dot_ip is not None:
                report.timings.append(self._measure_series(
                    point, target, "dot", target_rng.fork("dot"),
                    lambda q: dot.query(env, target.dot_ip, q,
                                        reuse=True)))
            if target.doh_template is not None:
                template = UriTemplate(target.doh_template)
                report.timings.append(self._measure_series(
                    point, target, "doh", target_rng.fork("doh"),
                    lambda q: doh.query(env, template, q, reuse=True)))
            if target.doq_ip is not None:
                report.timings.append(self._measure_doq(
                    point, target, target_rng.fork("doq"),
                    doq, fallback_dot, report))
            if target.dnscrypt_ip is not None:
                report.timings.append(self._measure_dnscrypt(
                    point, target, target_rng.fork("dnscrypt"), dnscrypt))
        do53.close_all()
        dot.close_all()
        doh.close_all()
        doq.close_all()
        fallback_dot.close_all()

    def _measure_series(self, point: VantagePoint, target: TargetSpec,
                        protocol: str, series_rng: SeededRng,
                        lookup) -> ProtocolTiming:
        series: List[float] = []
        error = ""
        for index in range(self.queries):
            result = lookup(self._query(series_rng.fork(f"q{index}")))
            self._record(result, protocol)
            if result.ok:
                series.append(result.latency_ms)
            elif not error:
                error = result.error
        return self._timing(point, target, protocol, series, error)

    def _measure_doq(self, point: VantagePoint, target: TargetSpec,
                     series_rng: SeededRng, doq: DoqClient,
                     fallback_dot: DotClient,
                     report: FourProtoReport) -> ProtocolTiming:
        """The DoQ series: cold 1-RTT, warm session, 0-RTT reconnect."""
        env = point.env
        series: List[float] = []
        error = ""
        for index in range(self.queries):
            query = self._query(series_rng.fork(f"q{index}"))
            result, fell_back = query_with_fallback(
                doq, fallback_dot, env, target.doq_ip, target.dot_ip,
                query)
            if fell_back:
                report.fallbacks += 1
                self._record(result, "doq-fallback")
                if not error:
                    error = "fell back to dot"
                continue
            self._record(result, "doq")
            if result.ok:
                series.append(result.latency_ms)
            elif not error:
                error = result.error
        resumed_ms = -1.0
        if series:
            # Drop the session but keep the ticket: the reconnect query
            # resumes at 0-RTT (no handshake exchange at all).
            doq.close_all()
            resumed = doq.query(env, target.doq_ip,
                                self._query(series_rng.fork("resume")),
                                reuse=True)
            self._record(resumed, "doq")
            if resumed.ok:
                resumed_ms = resumed.latency_ms
        return self._timing(point, target, "doq", series, error,
                            resumed_ms=resumed_ms)

    def _measure_dnscrypt(self, point: VantagePoint, target: TargetSpec,
                          series_rng: SeededRng,
                          dnscrypt: DnsCryptClient) -> ProtocolTiming:
        """TXT bootstrap once, then the sealed series — no fallback."""
        env = point.env
        fetched = dnscrypt.fetch_certificate(env, target.dnscrypt_ip)
        if isinstance(fetched, QueryResult):
            self._record(fetched, "dnscrypt")
            return self._timing(point, target, "dnscrypt", [],
                                fetched.error)
        key, bootstrap_ms = fetched
        series: List[float] = []
        error = ""
        for index in range(self.queries):
            result = dnscrypt.query(
                env, target.dnscrypt_ip, key,
                self._query(series_rng.fork(f"q{index}")))
            self._record(result, "dnscrypt")
            if result.ok:
                series.append(result.latency_ms)
            elif not error:
                error = result.error
        return self._timing(point, target, "dnscrypt", series, error,
                            bootstrap_ms=bootstrap_ms)

    # -- whole-platform runs -------------------------------------------------------

    def run(self, points: List[VantagePoint],
            require_uptime: bool = True) -> FourProtoReport:
        report = FourProtoReport()
        registry = get_registry()
        with get_tracer().span("client.fourproto",
                               clock=self.network.clock.now,
                               endpoints=len(points)):
            for point in points:
                if (require_uptime
                        and point.remaining_uptime_s < REQUIRED_UPTIME_S):
                    registry.inc("client.fourproto.endpoint_skipped",
                                 reason="uptime")
                    continue
                self.measure_endpoint(point, report)
        return report

    def run_sharded(self, parallel: ParallelConfig,
                    platform: str = "proxyrack", sample: float = 1.0,
                    require_uptime: bool = True) -> FourProtoReport:
        """The battery across deterministic vantage-point shards.

        Per-endpoint rng streams are keyed (``fourproto-{label}``), so
        shard assignment never changes a series; shards partition the
        unfiltered platform list and apply the uptime predicate
        worker-side, matching a serial run over the same list.
        """
        from repro.core.scan.campaign import prime_scenario
        prime_scenario(self.scenario)
        count = self.scenario.platform_point_count(platform, sample)
        with get_tracer().span("client.fourproto",
                               clock=self.network.clock.now,
                               endpoints=count):
            tasks = [
                _FourProtoTask(self.scenario.config, platform, sample,
                               shard, queries=self.queries,
                               require_uptime=require_uptime)
                for shard in parallel.plan(count)]
            report = FourProtoReport()
            for timings, fallbacks in merge_outcomes(
                    parallel.dispatch(_fourproto_shard, tasks, count)):
                report.timings.extend(timings)
                report.fallbacks += fallbacks
        return report

    # -- helpers ------------------------------------------------------------------

    def _timing(self, point: VantagePoint, target: TargetSpec,
                protocol: str, series: List[float], error: str,
                resumed_ms: float = -1.0,
                bootstrap_ms: float = 0.0) -> ProtocolTiming:
        if not series:
            cold = warm = 0.0
        elif len(series) == 1:
            cold = bootstrap_ms + series[0]
            warm = series[0]
        else:
            cold = bootstrap_ms + series[0]
            warm = statistics.median(series[1:])
        return ProtocolTiming(
            endpoint=point.env.label,
            country=point.env.country_code,
            target=target.name,
            protocol=protocol,
            attempted=self.queries,
            ok_queries=len(series),
            cold_ms=cold,
            warm_median_ms=warm,
            resumed_ms=resumed_ms,
            error=error,
        )

    @staticmethod
    def _record(result: QueryResult, protocol: str) -> None:
        registry = get_registry()
        if result.ok:
            registry.observe("client.query.latency", result.latency_ms,
                             protocol=protocol, reuse="true")
        else:
            registry.inc("client.query.failed", protocol=protocol,
                         kind=result.failure.value
                         if result.failure else "unknown")

    def _query(self, rng: SeededRng):
        return make_query(self.scenario.probe_name(rng.token(10)),
                          RRType.A, msg_id=rng.randint(1, 0xFFFF))
