"""The paper's primary contribution: the end-to-end measurement platform.

Three measurement legs, mirroring the paper's structure:

* :mod:`repro.core.scan` — Internet-wide discovery of DoT/DoH services
  and their security analysis (Section 3);
* :mod:`repro.core.client` — client-side reachability and performance
  studies through residential proxy networks (Section 4);
* :mod:`repro.core.usage` — real-world traffic analysis from NetFlow and
  passive DNS (Section 5);

plus :mod:`repro.core.comparative`, the protocol comparison engine behind
Table 1 (Section 2).
"""

from repro.core.comparative import Grade, build_comparison_table

__all__ = ["Grade", "build_comparison_table"]
