"""NetworkScan-Mon-style scanner detection (Section 5.2).

Before trusting the observed DoT client networks, the paper submits them
to 360 Netlab's NetworkScan Mon, which detects scanning from flow data
via fan-out statistics and a state-transition model, and additionally
checks the clients' SOA/PTR records. This module reimplements the
flow-side detector: a source /24 is flagged when, inside a sliding
window, it touches an abnormal number of distinct destinations on one
port with a SYN-dominated flag profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netsim.clock import DAY_SECONDS
from repro.netsim.netflow import FlowRecord, TcpFlags


@dataclass(frozen=True)
class ScanAlert:
    """One detected scanning campaign."""

    src_netblock: str
    port: int
    window_start: float
    distinct_destinations: int
    syn_fraction: float


@dataclass
class DetectorConfig:
    """Detection thresholds.

    A genuine DoT client talks to a handful of resolvers; a ZMap-style
    scanner touches thousands of distinct addresses in hours.
    """

    window_s: float = DAY_SECONDS
    fanout_threshold: int = 64
    syn_fraction_threshold: float = 0.7


class NetworkScanMonitor:
    """Flow-driven port-scan detector with a per-source state model."""

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()

    def detect(self, records: Iterable[FlowRecord],
               port: Optional[int] = 853) -> List[ScanAlert]:
        """Scan alerts over a record stream (optionally one port only)."""
        config = self.config
        # (src /24, port) -> window state.
        windows: Dict[Tuple[str, int], List] = {}
        alerts: Dict[Tuple[str, int, float], ScanAlert] = {}
        for record in sorted(records, key=lambda r: r.start_ts):
            if record.protocol != "tcp":
                continue
            if port is not None and record.dst_port != port:
                continue
            key = (record.src_slash24(), record.dst_port)
            state = windows.get(key)
            if state is None or record.start_ts - state[0] > config.window_s:
                state = [record.start_ts, set(), 0, 0]
                windows[key] = state
            state[1].add(record.dst_ip)
            state[2] += 1
            if record.tcp_flags == TcpFlags.SYN:
                state[3] += 1
            if len(state[1]) >= config.fanout_threshold:
                syn_fraction = state[3] / state[2]
                if syn_fraction >= config.syn_fraction_threshold:
                    alert_key = (key[0], key[1], state[0])
                    alerts[alert_key] = ScanAlert(
                        src_netblock=key[0],
                        port=key[1],
                        window_start=state[0],
                        distinct_destinations=len(state[1]),
                        syn_fraction=syn_fraction,
                    )
        return list(alerts.values())

    def vet_netblocks(self, records: Iterable[FlowRecord],
                      netblocks: Iterable[str],
                      port: int = 853) -> Dict[str, bool]:
        """The paper's question: are these client netblocks scanners?

        Returns ``{netblock: flagged}``; the expected result for genuine
        DoT client networks is all-False ("we do not get any alert on
        port-853 scanning activities related to the client networks").
        """
        alerts = self.detect(records, port)
        flagged = {alert.src_netblock for alert in alerts}
        return {netblock: netblock in flagged for netblock in netblocks}


def check_ptr_records(network, addresses: Iterable[str]) -> Dict[str, Optional[str]]:
    """The complementary SOA/PTR check on client addresses.

    Looks up the reverse-DNS names of hosts (when the simulated network
    knows them) so analysts can spot names like ``scanner.example``.
    """
    results: Dict[str, Optional[str]] = {}
    for address in addresses:
        host = network.host_at(address)
        results[address] = host.ptr_name if host is not None else None
    return results
