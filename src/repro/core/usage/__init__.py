"""Real-world usage analysis from passive datasets (Section 5)."""

from repro.core.usage.netflow_study import DotTrafficStudy, DotTrafficReport
from repro.core.usage.passive_dns_study import DohUsageStudy, DohUsageReport
from repro.core.usage.scan_detect import NetworkScanMonitor, ScanAlert

__all__ = [
    "DotTrafficStudy",
    "DotTrafficReport",
    "DohUsageStudy",
    "DohUsageReport",
    "NetworkScanMonitor",
    "ScanAlert",
]
