"""DoH usage from passive DNS (Section 5.3, Figure 13).

DoH queries hide inside HTTPS, but every DoH client must first resolve
the resolver's bootstrap hostname — so passive DNS lookup volumes of
those hostnames proxy for DoH adoption. DNSDB-style aggregates select
which domains see real use; 360-style monthly volumes give the trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.passive_dns import PassiveDnsStores

POPULARITY_THRESHOLD = 10_000


@dataclass
class DohUsageReport:
    """The Figure 13 data plus headline statistics."""

    #: Domains examined (the DoH bootstrap hostnames from discovery).
    candidates: List[str]
    #: Domains above the DNSDB popularity threshold.
    popular: List[str]
    #: Monthly query series for the popular domains.
    monthly_series: Dict[str, Dict[str, int]]
    #: Lifetime totals per candidate.
    totals: Dict[str, int]

    def growth(self, domain: str, from_month: str, to_month: str) -> float:
        """Multiplicative growth of a domain's monthly volume."""
        series = self.monthly_series.get(domain.lower().rstrip("."), {})
        base = series.get(from_month, 0)
        if not base:
            return 0.0
        return series.get(to_month, 0) / base

    def dominant_domain(self) -> Optional[str]:
        """The domain with the largest lifetime volume (Google DoH)."""
        if not self.totals:
            return None
        return max(self.totals, key=lambda domain: self.totals[domain])

    def orders_of_magnitude_above_rest(self, domain: str) -> float:
        """How far a domain's volume sits above the next-busiest one."""
        import math
        others = [total for name, total in self.totals.items()
                  if name != domain and total > 0]
        own = self.totals.get(domain, 0)
        if not others or own <= 0:
            return 0.0
        return math.log10(own / max(others))


class DohUsageStudy:
    """Evaluates DoH bootstrap-domain volumes over passive DNS stores."""

    def __init__(self, stores: PassiveDnsStores,
                 threshold: int = POPULARITY_THRESHOLD):
        self.stores = stores
        self.threshold = threshold

    def analyze(self, doh_domains: List[str]) -> DohUsageReport:
        normalized = [domain.lower().rstrip(".") for domain in doh_domains]
        totals: Dict[str, int] = {}
        for domain in normalized:
            aggregate = self.stores.aggregate_for(domain)
            totals[domain] = aggregate.total_count if aggregate else 0
        popular = self.stores.domains_over(self.threshold, normalized)
        monthly = {domain: self.stores.monthly_series(domain)
                   for domain in popular}
        return DohUsageReport(
            candidates=normalized,
            popular=sorted(popular, key=lambda d: -totals.get(d, 0)),
            monthly_series=monthly,
            totals=totals,
        )
