"""DoT traffic analysis over sampled NetFlow (Section 5.2).

Pipeline, exactly as the paper describes: select TCP port-853 records,
exclude flows whose flag union is a single SYN (incomplete handshakes),
match destinations against the DoT resolver list produced by the scan
campaign, truncate client addresses to /24, then analyse monthly trends
(Figure 11) and per-netblock concentration/activity (Figure 12).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datasets.netflow import (
    CLOUDFLARE_DOT_ADDRESSES,
    NetFlowDataset,
    QUAD9_DOT_ADDRESSES,
)
from repro.netsim.clock import DAY_SECONDS, month_key

RESOLVER_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "cloudflare": CLOUDFLARE_DOT_ADDRESSES,
    "quad9": QUAD9_DOT_ADDRESSES,
}


@dataclass
class NetblockActivity:
    """Per-/24 aggregation behind Figure 12."""

    netblock: str
    flow_count: int
    active_days: int
    first_seen: float
    last_seen: float

    @property
    def active_under_week(self) -> bool:
        return self.active_days < 7


@dataclass
class DotTrafficReport:
    """Everything the Section 5.2 findings read off."""

    #: family -> {month: sampled DoT flow count}.
    monthly_flows: Dict[str, Dict[str, int]]
    #: family -> {month: sampled Do53 flow count} (aggregates).
    do53_monthly: Dict[str, Dict[str, int]]
    netblocks: List[NetblockActivity]
    matched_records: int
    excluded_single_syn: int
    unmatched_port853: int

    def growth(self, family: str, from_month: str,
               to_month: str) -> float:
        """Relative growth of monthly flows, e.g. +0.56 for +56%."""
        series = self.monthly_flows.get(family, {})
        base = series.get(from_month, 0)
        if not base:
            return 0.0
        return (series.get(to_month, 0) - base) / base

    def dot_to_do53_ratio(self, family: str) -> float:
        """How much smaller DoT is than clear-text DNS (orders of magnitude)."""
        dot_total = sum(self.monthly_flows.get(family, {}).values())
        do53_total = sum(self.do53_monthly.get(family, {}).values())
        if not dot_total:
            return 0.0
        return do53_total / dot_total

    def top_share(self, top_n: int) -> float:
        """Traffic share of the N busiest /24 netblocks."""
        total = sum(block.flow_count for block in self.netblocks)
        if not total:
            return 0.0
        ranked = sorted(self.netblocks, key=lambda block: -block.flow_count)
        return sum(block.flow_count for block in ranked[:top_n]) / total

    def short_lived_stats(self) -> Tuple[float, float]:
        """(fraction of netblocks active <1 week, their traffic share)."""
        total_blocks = len(self.netblocks)
        total_flows = sum(block.flow_count for block in self.netblocks)
        if not total_blocks or not total_flows:
            return 0.0, 0.0
        short = [block for block in self.netblocks
                 if block.active_under_week]
        return (len(short) / total_blocks,
                sum(block.flow_count for block in short) / total_flows)

    def scatter_points(self) -> List[Tuple[float, int, int]]:
        """Figure 12 data: (traffic share, active days) per netblock."""
        total = sum(block.flow_count for block in self.netblocks) or 1
        return [(block.flow_count / total, block.active_days,
                 block.flow_count) for block in self.netblocks]


class DotTrafficStudy:
    """Runs the Section 5.2 pipeline over a NetFlow dataset."""

    def __init__(self, resolver_list: Optional[Iterable[str]] = None,
                 families: Optional[Dict[str, Tuple[str, ...]]] = None):
        self.families = dict(families or RESOLVER_FAMILIES)
        known: Set[str] = set()
        for addresses in self.families.values():
            known.update(addresses)
        if resolver_list is not None:
            known.update(resolver_list)
        self.resolver_addresses = known

    def family_of(self, address: str) -> Optional[str]:
        for family, addresses in self.families.items():
            if address in addresses:
                return family
        return None

    def analyze(self, dataset: NetFlowDataset,
                netblock_family: str = "cloudflare") -> DotTrafficReport:
        monthly: Dict[str, Dict[str, int]] = {
            family: defaultdict(int) for family in self.families}
        per_netblock_flows: Counter = Counter()
        per_netblock_days: Dict[str, Set[int]] = defaultdict(set)
        per_netblock_span: Dict[str, Tuple[float, float]] = {}
        excluded = 0
        unmatched = 0
        matched = 0
        for record in dataset.records:
            if record.protocol != "tcp" or record.dst_port != 853:
                continue
            if record.is_single_syn():
                excluded += 1
                continue
            family = self.family_of(record.dst_ip)
            if family is None and record.dst_ip not in self.resolver_addresses:
                unmatched += 1
                continue
            matched += 1
            month = month_key(record.start_ts)
            if family is not None:
                monthly[family][month] += 1
            if family == netblock_family:
                netblock = record.src_slash24()
                per_netblock_flows[netblock] += 1
                per_netblock_days[netblock].add(
                    int(record.start_ts // DAY_SECONDS))
                first, last = per_netblock_span.get(
                    netblock, (record.start_ts, record.start_ts))
                per_netblock_span[netblock] = (min(first, record.start_ts),
                                               max(last, record.start_ts))
        netblocks = [
            NetblockActivity(
                netblock=netblock,
                flow_count=count,
                active_days=len(per_netblock_days[netblock]),
                first_seen=per_netblock_span[netblock][0],
                last_seen=per_netblock_span[netblock][1],
            )
            for netblock, count in per_netblock_flows.items()
        ]
        return DotTrafficReport(
            monthly_flows={family: dict(series)
                           for family, series in monthly.items()},
            do53_monthly=dataset.do53_monthly,
            netblocks=netblocks,
            matched_records=matched,
            excluded_single_syn=excluded,
            unmatched_port853=unmatched,
        )
