"""The comparative study engine (Section 2.2, Table 1).

Grades every protocol in :data:`repro.doe.metadata.PROTOCOLS` against the
paper's 10 criteria in 5 categories. Grades are *derived* from protocol
facts rather than hard-coded, so the table stays consistent with the
metadata (and with any protocol added later).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.doe.metadata import PROTOCOLS, ProtocolFacts


class Grade(enum.Enum):
    """The paper's three-level grading."""

    SATISFYING = "satisfying"
    PARTIAL = "partially satisfying"
    NOT_SATISFYING = "not satisfying"

    @property
    def symbol(self) -> str:
        return {"satisfying": "●", "partially satisfying": "◐",
                "not satisfying": "○"}[self.value]


@dataclass(frozen=True)
class Criterion:
    """One grading criterion."""

    category: str
    label: str
    grade: Callable[[ProtocolFacts], Grade]


def _grade_native_protocol(facts: ProtocolFacts) -> Grade:
    # "whether the new protocol is based on traditional DNS or switches
    # to a different application-layer protocol"
    if facts.uses_other_app_layer:
        return Grade.NOT_SATISFYING
    return Grade.SATISFYING


def _grade_fallback(facts: ProtocolFacts) -> Grade:
    return Grade.SATISFYING if facts.has_fallback else Grade.NOT_SATISFYING


def _grade_standard_tls(facts: ProtocolFacts) -> Grade:
    if facts.crypto == "tls":
        return Grade.SATISFYING
    if facts.crypto in ("dtls", "quic-tls"):
        # TLS-derived but not the plain TLS record protocol.
        return Grade.PARTIAL
    return Grade.NOT_SATISFYING


def _grade_traffic_analysis(facts: ProtocolFacts) -> Grade:
    # Sharing port 443 with web HTTPS hides DNS entirely; a dedicated
    # port is distinguishable but padding still blunts size analysis.
    if facts.port_shared_with_https:
        return Grade.SATISFYING
    if facts.supports_padding:
        return Grade.PARTIAL
    return Grade.NOT_SATISFYING


def _grade_client_changes(facts: ProtocolFacts) -> Grade:
    return {"low": Grade.SATISFYING, "medium": Grade.PARTIAL,
            "high": Grade.NOT_SATISFYING}[facts.client_change_level]


def _grade_latency(facts: ProtocolFacts) -> Grade:
    return {"low": Grade.SATISFYING, "amortizable": Grade.PARTIAL,
            "high": Grade.NOT_SATISFYING}[facts.latency_class]


def _grade_standard_protocols(facts: ProtocolFacts) -> Grade:
    if facts.crypto == "custom":
        return Grade.NOT_SATISFYING
    if facts.ietf_status == "draft" or facts.crypto == "quic-tls":
        # QUIC itself was not standardised at the survey date.
        return Grade.PARTIAL
    return Grade.SATISFYING


def _grade_software_support(facts: ProtocolFacts) -> Grade:
    return {"wide": Grade.SATISFYING, "partial": Grade.PARTIAL,
            "none": Grade.NOT_SATISFYING}[facts.software_support]


def _grade_ietf(facts: ProtocolFacts) -> Grade:
    return {"standard": Grade.SATISFYING, "experimental": Grade.PARTIAL,
            "draft": Grade.NOT_SATISFYING,
            "none": Grade.NOT_SATISFYING}[facts.ietf_status]


def _grade_resolver_support(facts: ProtocolFacts) -> Grade:
    return {"wide": Grade.SATISFYING, "partial": Grade.PARTIAL,
            "none": Grade.NOT_SATISFYING}[facts.resolver_support]


CRITERIA: Tuple[Criterion, ...] = (
    Criterion("Protocol Design", "Stays on the DNS application layer",
              _grade_native_protocol),
    Criterion("Protocol Design", "Provides fallback mechanism",
              _grade_fallback),
    Criterion("Security", "Uses standard TLS", _grade_standard_tls),
    Criterion("Security", "Resists DNS traffic analysis",
              _grade_traffic_analysis),
    Criterion("Usability", "Minor changes for client users",
              _grade_client_changes),
    Criterion("Usability", "Minor latency above DNS-over-UDP",
              _grade_latency),
    Criterion("Deployability", "Runs over standard protocols",
              _grade_standard_protocols),
    Criterion("Deployability", "Supported by mainstream DNS software",
              _grade_software_support),
    Criterion("Maturity", "Standardized by IETF", _grade_ietf),
    Criterion("Maturity", "Extensively supported by resolvers",
              _grade_resolver_support),
)

PROTOCOL_ORDER = ("dot", "doh", "dodtls", "doq", "dnscrypt")


@dataclass(frozen=True)
class ComparisonRow:
    category: str
    criterion: str
    grades: Dict[str, Grade]


def build_comparison_table(
        protocol_keys: Tuple[str, ...] = PROTOCOL_ORDER
) -> List[ComparisonRow]:
    """Produce Table 1 as structured rows."""
    rows = []
    for criterion in CRITERIA:
        grades = {key: criterion.grade(PROTOCOLS[key])
                  for key in protocol_keys}
        rows.append(ComparisonRow(criterion.category, criterion.label,
                                  grades))
    return rows


def maturity_score(protocol_key: str) -> float:
    """A 0..1 aggregate used by ablation benches and ranking tests."""
    points = {Grade.SATISFYING: 1.0, Grade.PARTIAL: 0.5,
              Grade.NOT_SATISFYING: 0.0}
    rows = build_comparison_table((protocol_key,))
    return sum(points[row.grades[protocol_key]] for row in rows) / len(rows)
