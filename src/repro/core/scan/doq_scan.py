"""DoQ service discovery: UDP 784 sweep plus QUIC-HELLO verification.

DoQ gets a dedicated port (draft port 784), so — unlike DoH — it *can*
be found by sweeping: the scanner streams UDP-784-open addresses from
the procedural world, verifies each with a real QUIC handshake
(certificate validation included), and confirms DNS service with a
uniquely-prefixed probe query against the platform's own zone, the same
vetting the DoT pipeline applies on 853.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.retry import TRANSIENT_KINDS, RetryPolicy
from repro.dnswire.builder import make_query
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.doe.doq import DOQ_PORT, DoqClient
from repro.doe.result import QueryOutcome
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundHistogram,
    get_tracer,
)
from repro.tlssim.certs import CaStore, ValidationReport

_PROBE_LATENCY_MS = BoundHistogram("doq.probe.latency_ms")
_HANDSHAKE_OK = BoundCounter("doq.scan.handshake.ok")
_HANDSHAKE_FAIL = BoundCounterFamily("doq.scan.handshake.fail", "kind")
_VALIDATION_OUTCOME = BoundCounterFamily("doq.validation.outcome",
                                         "outcome")


@dataclass
class DoqScanRecord:
    """Everything learned about one UDP-784-open address."""

    address: str
    round_index: int
    is_doq: bool
    answer_correct: bool = False
    answers: Tuple[str, ...] = ()
    latency_ms: float = 0.0
    error: str = ""
    chain: tuple = ()
    cert_report: Optional[ValidationReport] = None
    country: str = ""

    @property
    def has_invalid_cert(self) -> bool:
        return self.cert_report is not None and not self.cert_report.valid


@dataclass(frozen=True)
class DoqSweepStats:
    """Headline numbers of one DoQ discovery round."""

    swept: int
    doq_resolvers: int


class DoqScanner:
    """Sweeps UDP 784 and verifies every open address end-to-end."""

    def __init__(self, network: Network, rng: SeededRng, ca_store: CaStore,
                 probe_origin: DnsName,
                 expected_answers: Tuple[str, ...],
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.rng = rng
        self.ca_store = ca_store
        self.probe_origin = probe_origin
        self.expected_answers = expected_answers
        self.retry_policy = retry_policy or RetryPolicy(op="doq.probe")
        self.source = ClientEnvironment.in_country(
            "doq-scan-src", "198.199.70.16", "US", rng.fork("src"))

    def sweep_addresses(self, round_index: int = 0,
                        start: int = 0,
                        stop: Optional[int] = None) -> Iterator[str]:
        """Stream UDP-784-open addresses — no hosts materialised."""
        injector = self.network.fault_injector
        for address in self.network.open_udp_addresses(DOQ_PORT, start,
                                                       stop):
            if injector is not None and injector.probe_lost(
                    address, DOQ_PORT, protocol="udp"):
                continue
            yield address

    def probe_one(self, address: str,
                  round_index: int = 0) -> DoqScanRecord:
        """One QUIC handshake + probe query against a swept address."""
        probe_rng = self.rng.fork(f"probe-{round_index}-{address}")
        client = DoqClient(self.network, probe_rng, self.ca_store)
        token = probe_rng.token(10)
        query = make_query(self.probe_origin.child(token), RRType.A,
                           msg_id=probe_rng.randint(1, 0xFFFF))
        result = self.retry_policy.run_query(
            lambda: client.query(self.source, address, query,
                                 reuse=False, timeout_s=10.0),
            rng=probe_rng.fork("retry"), op="doq.probe",
            retry_on=TRANSIENT_KINDS)
        host = self.network.host_at(address)
        country = host.country_code if host is not None else ""
        _PROBE_LATENCY_MS.observe(result.latency_ms)
        if not result.ok:
            _HANDSHAKE_FAIL.get(result.failure.value
                                if result.failure else "unknown").inc()
            return DoqScanRecord(
                address=address, round_index=round_index, is_doq=False,
                error=result.error, latency_ms=result.latency_ms,
                chain=result.presented_chain,
                cert_report=result.cert_report, country=country)
        outcome = result.classify(self.expected_answers)
        _HANDSHAKE_OK.inc()
        _VALIDATION_OUTCOME.get(outcome.value).inc()
        return DoqScanRecord(
            address=address, round_index=round_index, is_doq=True,
            answer_correct=(outcome is QueryOutcome.CORRECT),
            answers=result.addresses(),
            latency_ms=result.latency_ms,
            chain=result.presented_chain,
            cert_report=result.cert_report,
            country=country)

    def discover(self, round_index: int = 0
                 ) -> Tuple[List[DoqScanRecord], DoqSweepStats]:
        """Full sweep + verify pipeline for one round."""
        with get_tracer().span("doq.discovery",
                               clock=self.network.clock.now,
                               round=round_index):
            records = [self.probe_one(address, round_index)
                       for address in self.sweep_addresses(round_index)]
        return records, DoqSweepStats(
            swept=len(records),
            doq_resolvers=sum(1 for record in records if record.is_doq))
