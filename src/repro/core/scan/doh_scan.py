"""DoH service discovery from a URL corpus (Section 3.1-3.2).

DoH servers cannot be found by port scanning — they share 443 with all
of HTTPS — so discovery filters a URL dataset for well-known DoH template
paths, deduplicates by origin, and probes each candidate with a genuine
DoH query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.retry import TRANSIENT_KINDS, RetryPolicy
from repro.datasets.urldataset import UrlDataset
from repro.dnswire.builder import make_query
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.doe.doh import DohClient, DohMethod
from repro.doe.result import QueryOutcome
from repro.httpsim.uri import UriTemplate, parse_url
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundHistogram,
    get_tracer,
)
from repro.tlssim.certs import CaStore

_PROBE_LATENCY_MS = BoundHistogram("doh.probe.latency_ms")
_HANDSHAKE_OK = BoundCounter("doh.handshake.ok")
_HANDSHAKE_FAIL = BoundCounterFamily("doh.handshake.fail", "kind")
_VALIDATION_OUTCOME = BoundCounterFamily("doh.validation.outcome", "outcome")
_DISCOVERY_PROBES = BoundCounterFamily("doh.discovery.probes", "mode")


@dataclass(frozen=True)
class EdohStats:
    """Probe-efficiency accounting of one discovery run."""

    candidates: int
    probed: int
    skipped_unresolvable: int
    skipped_early_abort: int
    confirmed: int

    @property
    def probes_per_confirmed(self) -> float:
        if self.confirmed == 0:
            return float(self.probed)
        return self.probed / self.confirmed


@dataclass
class DohScanRecord:
    """Outcome of probing one candidate DoH URL."""

    url: str
    hostname: str
    is_doh: bool
    in_public_list: bool = False
    answer_correct: bool = False
    latency_ms: float = 0.0
    error: str = ""
    cert_valid: bool = False


class DohDiscovery:
    """Filters a URL corpus and probes the candidates."""

    def __init__(self, network: Network, rng: SeededRng, ca_store: CaStore,
                 bootstrap, probe_origin: DnsName,
                 expected_answers: Tuple[str, ...],
                 public_list: Iterable[str] = (),
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.rng = rng
        self.ca_store = ca_store
        self.bootstrap = bootstrap
        self.probe_origin = probe_origin
        self.expected_answers = expected_answers
        self.retry_policy = retry_policy or RetryPolicy(op="doh.probe")
        #: Known templates from the public list (curl wiki [73]).
        self.public_list_hosts = {
            UriTemplate(template).hostname for template in public_list}
        self.source = ClientEnvironment.in_country(
            "doh-scan-src", "198.199.70.15", "US", rng.fork("src"))

    def candidate_urls(self, dataset: UrlDataset) -> List[str]:
        """Deduplicate DoH-path URLs by (host, path)."""
        seen = set()
        candidates = []
        for url in dataset.doh_candidates():
            parsed = parse_url(url)
            key = (parsed.hostname, parsed.path.rstrip("/"))
            if key in seen:
                continue
            seen.add(key)
            candidates.append(url)
        return candidates

    def probe_url(self, url: str) -> DohScanRecord:
        """Add DoH query parameters to a candidate URL and try a lookup."""
        parsed = parse_url(url)
        template = UriTemplate(f"{url.rstrip('/')}" + "{?dns}")
        client = DohClient(self.network,
                           self.rng.fork(f"probe-{parsed.hostname}"),
                           self.ca_store, bootstrap=self.bootstrap,
                           method=DohMethod.GET)
        token = self.rng.fork(f"token-{url}").token(10)
        query = make_query(self.probe_origin.child(token), RRType.A,
                           msg_id=self.rng.randint(1, 0xFFFF))
        result = self.retry_policy.run_query(
            lambda: client.probe_template(self.source, template, query),
            rng=self.rng.fork(f"retry-{url}"), op="doh.probe",
            retry_on=TRANSIENT_KINDS)
        in_list = parsed.hostname in self.public_list_hosts
        _PROBE_LATENCY_MS.observe(result.latency_ms)
        if not result.ok:
            _HANDSHAKE_FAIL.get(result.failure.value
                                if result.failure else "unknown").inc()
            return DohScanRecord(url=url, hostname=parsed.hostname,
                                 is_doh=False, in_public_list=in_list,
                                 latency_ms=result.latency_ms,
                                 error=result.error)
        outcome = result.classify(self.expected_answers)
        _HANDSHAKE_OK.inc()
        _VALIDATION_OUTCOME.get(outcome.value).inc()
        return DohScanRecord(
            url=url, hostname=parsed.hostname, is_doh=True,
            in_public_list=in_list,
            answer_correct=(outcome is QueryOutcome.CORRECT),
            latency_ms=result.latency_ms,
            cert_valid=(result.cert_report is not None
                        and result.cert_report.valid))

    def probe_many(self, urls: List[str]) -> List[DohScanRecord]:
        """Probe one batch of candidate URLs (a shard of a discovery)."""
        return [self.probe_url(url) for url in urls]

    def discover(self, dataset: UrlDataset) -> List[DohScanRecord]:
        """Full discovery: filter, dedupe, probe everything."""
        candidates = self.candidate_urls(dataset)
        _DISCOVERY_PROBES.get("naive").inc(len(candidates))
        with get_tracer().span("doh.discovery",
                               clock=self.network.clock.now,
                               candidates=len(candidates)):
            return self.probe_many(candidates)

    def discover_efficient(
            self, dataset: UrlDataset
    ) -> Tuple[List[DohScanRecord], EdohStats]:
        """E-DoH-style probe-efficient discovery.

        Two savings over :meth:`discover`, both applied before any
        probe leaves the scanner:

        * **bootstrap precheck** — a candidate hostname that does not
          resolve in clear-text DNS can never answer a DoH probe, so
          its URLs are skipped entirely (the URL corpus is dominated by
          lookalike paths on such hosts);
        * **URI-template inference with early-abort ordering** — a
          host's candidate paths are probed in well-known-template
          order (``/dns-query`` first), and the remaining paths are
          abandoned as soon as one confirms, since a resolver serves
          one template.

        Returns the records of *probed* candidates plus an
        :class:`EdohStats` with the probes-per-confirmed-endpoint
        accounting. Confirmed hostname sets are identical to the naive
        scan's by construction — skipping only ever drops candidates
        that cannot confirm. Run it on its own :class:`DohDiscovery`
        instance: probing fewer URLs advances the shared rng stream
        differently than a naive scan would.
        """
        from repro.httpsim.uri import WELL_KNOWN_DOH_PATHS
        candidates = self.candidate_urls(dataset)
        by_host: dict = {}
        for url in candidates:
            by_host.setdefault(parse_url(url).hostname, []).append(url)

        def path_rank(url: str) -> Tuple[int, int]:
            parsed = parse_url(url)
            path = parsed.path.rstrip("/") or "/"
            try:
                return (WELL_KNOWN_DOH_PATHS.index(path), 0)
            except ValueError:
                return (len(WELL_KNOWN_DOH_PATHS),
                        by_host[parsed.hostname].index(url))

        records: List[DohScanRecord] = []
        probed = 0
        skipped_unresolvable = 0
        skipped_early_abort = 0
        confirmed = 0
        with get_tracer().span("doh.discovery.efficient",
                               clock=self.network.clock.now,
                               candidates=len(candidates)):
            for hostname, urls in by_host.items():
                if not self.bootstrap(hostname):
                    skipped_unresolvable += len(urls)
                    continue
                remaining = sorted(urls, key=path_rank)
                for position, url in enumerate(remaining):
                    probed += 1
                    _DISCOVERY_PROBES.get("edoh").inc()
                    record = self.probe_url(url)
                    records.append(record)
                    if record.is_doh:
                        confirmed += 1
                        skipped_early_abort += (len(remaining)
                                                - position - 1)
                        break
        stats = EdohStats(candidates=len(candidates), probed=probed,
                          skipped_unresolvable=skipped_unresolvable,
                          skipped_early_abort=skipped_early_abort,
                          confirmed=confirmed)
        return records, stats

    @staticmethod
    def working(records: List[DohScanRecord]) -> List[DohScanRecord]:
        return [record for record in records if record.is_doh]

    @staticmethod
    def beyond_public_list(
            records: List[DohScanRecord]) -> List[DohScanRecord]:
        """Finds that public resolver lists miss (Finding 1.1)."""
        return [record for record in records
                if record.is_doh and not record.in_public_list]


class ZoneFileDohDiscovery:
    """The paper's *first* (and abandoned) DoH-discovery approach.

    Zone files only list second-level domains, so this method can only
    probe ``https://<sld><well-known-path>`` — and misses every resolver
    hosted on a provider subdomain ("the discovery turns out to be
    unsatisfying"). Kept as a faithful negative result: compare its
    yield against :class:`DohDiscovery` over the URL corpus.
    """

    def __init__(self, inner: DohDiscovery):
        self.inner = inner

    def candidate_urls(self, zone_file) -> List[str]:
        from repro.httpsim.uri import WELL_KNOWN_DOH_PATHS
        urls = []
        for sld in zone_file:
            for path in WELL_KNOWN_DOH_PATHS:
                urls.append(f"https://{sld}{path}")
        return urls

    def discover(self, zone_file) -> List[DohScanRecord]:
        seen_hosts = set()
        records = []
        for url in self.candidate_urls(zone_file):
            parsed = parse_url(url)
            record = self.inner.probe_url(url)
            records.append(record)
            if record.is_doh:
                seen_hosts.add(parsed.hostname)
        return records
