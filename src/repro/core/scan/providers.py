"""Grouping discovered resolvers into providers (Figures 3-4)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.scan.dot_scan import DotScanRecord
from repro.tlssim.certs import ValidationFailure


@dataclass
class ProviderGroup:
    """Resolvers grouped under one certificate Common Name / SLD."""

    key: str
    records: List[DotScanRecord] = field(default_factory=list)

    @property
    def address_count(self) -> int:
        return len(self.records)

    @property
    def invalid_cert_records(self) -> List[DotScanRecord]:
        return [record for record in self.records
                if record.has_invalid_cert]

    @property
    def has_invalid_cert(self) -> bool:
        return bool(self.invalid_cert_records)

    def failure_breakdown(self) -> Dict[ValidationFailure, int]:
        breakdown: Dict[ValidationFailure, int] = defaultdict(int)
        for record in self.records:
            if record.cert_report is None or record.cert_report.valid:
                continue
            primary = record.cert_report.primary_failure()
            if primary is not None:
                breakdown[primary] += 1
        return dict(breakdown)


def group_into_providers(
        records: List[DotScanRecord]) -> List[ProviderGroup]:
    """Group DoT scan records by their certificate grouping key."""
    groups: Dict[str, ProviderGroup] = {}
    for record in records:
        if not record.is_dot:
            continue
        key = record.grouping_key()
        group = groups.get(key)
        if group is None:
            group = groups[key] = ProviderGroup(key)
        group.records.append(record)
    return sorted(groups.values(), key=lambda g: -g.address_count)


@dataclass(frozen=True)
class ProviderStats:
    """The Figure 4 quantities."""

    provider_count: int
    resolver_count: int
    invalid_cert_providers: int
    invalid_cert_resolvers: int
    single_address_providers: int
    #: Share of resolver addresses run by the N largest providers.
    top_coverage: Dict[int, float]
    failure_totals: Dict[ValidationFailure, int]

    @property
    def invalid_provider_fraction(self) -> float:
        if not self.provider_count:
            return 0.0
        return self.invalid_cert_providers / self.provider_count

    @property
    def single_address_fraction(self) -> float:
        if not self.provider_count:
            return 0.0
        return self.single_address_providers / self.provider_count


def provider_stats(groups: List[ProviderGroup],
                   top_ns: Tuple[int, ...] = (5, 7, 10)) -> ProviderStats:
    resolver_count = sum(group.address_count for group in groups)
    invalid_providers = sum(1 for group in groups if group.has_invalid_cert)
    invalid_resolvers = sum(len(group.invalid_cert_records)
                            for group in groups)
    singles = sum(1 for group in groups if group.address_count == 1)
    ordered = sorted(groups, key=lambda g: -g.address_count)
    coverage = {}
    for top_n in top_ns:
        covered = sum(group.address_count for group in ordered[:top_n])
        coverage[top_n] = covered / resolver_count if resolver_count else 0.0
    failure_totals: Dict[ValidationFailure, int] = defaultdict(int)
    for group in groups:
        for failure, count in group.failure_breakdown().items():
            failure_totals[failure] += count
    return ProviderStats(
        provider_count=len(groups),
        resolver_count=resolver_count,
        invalid_cert_providers=invalid_providers,
        invalid_cert_resolvers=invalid_resolvers,
        single_address_providers=singles,
        top_coverage=coverage,
        failure_totals=dict(failure_totals),
    )


def resolvers_per_provider_cdf(
        groups: List[ProviderGroup]) -> List[Tuple[int, float]]:
    """The yellow CDF line of Figure 4: providers by address count."""
    return cdf_from_sizes([group.address_count for group in groups])


def cdf_from_sizes(sizes: List[int]) -> List[Tuple[int, float]]:
    """The Figure-4 CDF from bare per-provider address counts.

    Shared with the streaming campaign accumulator, which carries
    (key, count, invalid) triples per provider rather than full
    :class:`ProviderGroup` objects.
    """
    if not sizes:
        return []
    sizes = sorted(sizes)
    total = len(sizes)
    cdf = []
    seen = 0
    current = sizes[0]
    for size in sizes:
        if size != current:
            cdf.append((current, seen / total))
            current = size
        seen += 1
    cdf.append((current, seen / total))
    return cdf
