"""Server-side discovery: Internet-wide DoT/DoH scanning (Section 3)."""

from repro.core.scan.zmap import ZmapScanner, SweepResult
from repro.core.scan.dot_scan import DotDiscovery, DotScanRecord
from repro.core.scan.doh_scan import DohDiscovery, DohScanRecord, EdohStats, ZoneFileDohDiscovery
from repro.core.scan.doq_scan import DoqScanner, DoqScanRecord, DoqSweepStats
from repro.core.scan.dnscrypt_scan import (
    DnscryptScanner,
    DnscryptScanRecord,
    DnscryptSweepStats,
)
from repro.core.scan.providers import ProviderGroup, group_into_providers
from repro.core.scan.campaign import CampaignResult, RoundResult, ScanCampaign
from repro.core.scan.churn import cohort_survival, provider_deltas, round_churn

__all__ = [
    "ZmapScanner",
    "SweepResult",
    "DotDiscovery",
    "DotScanRecord",
    "DohDiscovery",
    "DohScanRecord",
    "EdohStats",
    "DoqScanner",
    "DoqScanRecord",
    "DoqSweepStats",
    "DnscryptScanner",
    "DnscryptScanRecord",
    "DnscryptSweepStats",
    "ZoneFileDohDiscovery",
    "ProviderGroup",
    "group_into_providers",
    "ScanCampaign",
    "RoundResult",
    "CampaignResult",
    "round_churn",
    "cohort_survival",
    "provider_deltas",
]
