"""Round-over-round churn analysis of the scan campaign.

Section 3.2 discusses how the resolver population moves between scans
(Irish/US growth, the Chinese cloud platform shutting down). This module
quantifies that churn: per-round arrivals and departures of resolver
addresses, survival of the first-round cohort, and per-provider address
deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.scan.campaign import CampaignResult


@dataclass(frozen=True)
class RoundChurn:
    """Address movement between two consecutive rounds."""

    round_index: int
    date_text: str
    total: int
    arrived: int
    departed: int

    @property
    def churn_rate(self) -> float:
        """(arrivals + departures) over the current population."""
        if not self.total:
            return 0.0
        return (self.arrived + self.departed) / self.total


def address_sets(campaign: CampaignResult) -> List[Set[str]]:
    return [{record.address for record in round_result.resolvers}
            for round_result in campaign.rounds]


def round_churn(campaign: CampaignResult) -> List[RoundChurn]:
    """Per-round arrivals/departures (first round reports arrivals only)."""
    sets = address_sets(campaign)
    churns = []
    for index, current in enumerate(sets):
        previous = sets[index - 1] if index else set()
        churns.append(RoundChurn(
            round_index=index,
            date_text=campaign.rounds[index].date_text,
            total=len(current),
            arrived=len(current - previous),
            departed=len(previous - current),
        ))
    return churns


def cohort_survival(campaign: CampaignResult) -> List[float]:
    """Fraction of the first-round cohort still answering at each round."""
    sets = address_sets(campaign)
    if not sets or not sets[0]:
        return []
    cohort = sets[0]
    return [len(cohort & current) / len(cohort) for current in sets]


def provider_deltas(campaign: CampaignResult,
                    top_n: int = 10) -> List[Tuple[str, int, int, int]]:
    """(provider, first count, last count, delta) for the biggest movers."""
    first = {group.key: group.address_count
             for group in campaign.first.groups}
    last = {group.key: group.address_count
            for group in campaign.last.groups}
    deltas = []
    for key in set(first) | set(last):
        before = first.get(key, 0)
        after = last.get(key, 0)
        deltas.append((key, before, after, after - before))
    deltas.sort(key=lambda row: -abs(row[3]))
    return deltas[:top_n]
