"""DNSCrypt service discovery: UDP 443 sweep plus TXT-bootstrap vetting.

DNSCrypt servers publish their sealing key through a clear-text TXT
query (``2.dnscrypt-cert.<provider>``) on the service port itself, so a
scanner needs no prior provider knowledge: sweep UDP 443, fetch the
certificate, then confirm real service with a sealed probe query under
the freshly-fetched key. Servers that answer the sweep but not the
bootstrap (e.g. plain-DNS-on-443 middleboxes) are recorded as
non-DNSCrypt, mirroring how the DoT pipeline separates open-853 from
actually-speaking-DoT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.retry import TRANSIENT_KINDS, RetryPolicy
from repro.dnswire.builder import make_query
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.doe.dnscrypt import DNSCRYPT_PORT, DnsCryptClient
from repro.doe.result import QueryOutcome, QueryResult
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundHistogram,
    get_tracer,
)

_PROBE_LATENCY_MS = BoundHistogram("dnscrypt.probe.latency_ms")
_BOOTSTRAP_OK = BoundCounter("dnscrypt.bootstrap.ok")
_BOOTSTRAP_FAIL = BoundCounterFamily("dnscrypt.bootstrap.fail", "kind")
_VALIDATION_OUTCOME = BoundCounterFamily("dnscrypt.validation.outcome",
                                         "outcome")


@dataclass
class DnscryptScanRecord:
    """Everything learned about one UDP-443-open address."""

    address: str
    round_index: int
    is_dnscrypt: bool
    provider_name: str = ""
    answer_correct: bool = False
    answers: Tuple[str, ...] = ()
    #: Bootstrap TXT fetch plus sealed probe, end to end.
    latency_ms: float = 0.0
    error: str = ""
    country: str = ""


@dataclass(frozen=True)
class DnscryptSweepStats:
    """Headline numbers of one DNSCrypt discovery round."""

    swept: int
    dnscrypt_resolvers: int


class DnscryptScanner:
    """Sweeps UDP 443 and vets every open address via TXT bootstrap."""

    def __init__(self, network: Network, rng: SeededRng,
                 probe_origin: DnsName,
                 expected_answers: Tuple[str, ...],
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.rng = rng
        self.probe_origin = probe_origin
        self.expected_answers = expected_answers
        self.retry_policy = retry_policy or RetryPolicy(op="dnscrypt.probe")
        self.source = ClientEnvironment.in_country(
            "dnscrypt-scan-src", "198.199.70.17", "US", rng.fork("src"))

    def sweep_addresses(self, round_index: int = 0,
                        start: int = 0,
                        stop: Optional[int] = None) -> Iterator[str]:
        """Stream UDP-443-open addresses — no hosts materialised."""
        injector = self.network.fault_injector
        for address in self.network.open_udp_addresses(DNSCRYPT_PORT,
                                                       start, stop):
            if injector is not None and injector.probe_lost(
                    address, DNSCRYPT_PORT, protocol="udp"):
                continue
            yield address

    def probe_one(self, address: str,
                  round_index: int = 0) -> DnscryptScanRecord:
        """TXT bootstrap, then a sealed probe under the fetched key."""
        probe_rng = self.rng.fork(f"probe-{round_index}-{address}")
        client = DnsCryptClient(self.network, probe_rng)
        host = self.network.host_at(address)
        country = host.country_code if host is not None else ""
        fetched = client.fetch_certificate(self.source, address,
                                           timeout_s=10.0)
        if isinstance(fetched, QueryResult):
            _BOOTSTRAP_FAIL.get(fetched.failure.value
                                if fetched.failure else "unknown").inc()
            _PROBE_LATENCY_MS.observe(fetched.latency_ms)
            return DnscryptScanRecord(
                address=address, round_index=round_index,
                is_dnscrypt=False, error=fetched.error,
                latency_ms=fetched.latency_ms, country=country)
        key, bootstrap_ms = fetched
        _BOOTSTRAP_OK.inc()
        token = probe_rng.token(10)
        query = make_query(self.probe_origin.child(token), RRType.A,
                           msg_id=probe_rng.randint(1, 0xFFFF))
        result = self.retry_policy.run_query(
            lambda: client.query(self.source, address, key, query,
                                 timeout_s=10.0),
            rng=probe_rng.fork("retry"), op="dnscrypt.probe",
            retry_on=TRANSIENT_KINDS)
        total_ms = bootstrap_ms + result.latency_ms
        _PROBE_LATENCY_MS.observe(total_ms)
        if not result.ok:
            return DnscryptScanRecord(
                address=address, round_index=round_index,
                is_dnscrypt=False, provider_name=key.provider_name,
                error=result.error, latency_ms=total_ms, country=country)
        outcome = result.classify(self.expected_answers)
        _VALIDATION_OUTCOME.get(outcome.value).inc()
        return DnscryptScanRecord(
            address=address, round_index=round_index, is_dnscrypt=True,
            provider_name=key.provider_name,
            answer_correct=(outcome is QueryOutcome.CORRECT),
            answers=result.addresses(),
            latency_ms=total_ms, country=country)

    def discover(self, round_index: int = 0
                 ) -> Tuple[List[DnscryptScanRecord], DnscryptSweepStats]:
        """Full sweep + vet pipeline for one round."""
        with get_tracer().span("dnscrypt.discovery",
                               clock=self.network.clock.now,
                               round=round_index):
            records = [self.probe_one(address, round_index)
                       for address in self.sweep_addresses(round_index)]
        return records, DnscryptSweepStats(
            swept=len(records),
            dnscrypt_resolvers=sum(1 for record in records
                                   if record.is_dnscrypt))
