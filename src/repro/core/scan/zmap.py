"""ZMap-style port sweeps over the simulated IPv4 space.

The real study runs ``zmap -p 853`` over the whole address space in a
random order from 3 cloud vantage points, taking 24 hours per sweep. The
simulated space keeps real hosts in a registry plus a statistically
represented background population of port-853-open non-DoT machines
(millions in the paper), of which only a sample is materialised.

Scan-source ethics are modelled too: the scanner hosts carry reverse-DNS
records and an opt-out webpage, and an opt-out list is honoured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.retry import RetryPolicy
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.telemetry import BoundCounterFamily, get_tracer

_PROBES_SENT = BoundCounterFamily("scan.probes_sent", "port")
_RESPONSES = BoundCounterFamily("scan.zmap.responses", "port")
_OPTED_OUT = BoundCounterFamily("scan.zmap.opted_out", "port")
_PROBES_LOST = BoundCounterFamily("scan.zmap.probes_lost", "port")
_RETRY_ATTEMPTS = BoundCounterFamily("retry.attempts", "op")
_RETRY_RECOVERED = BoundCounterFamily("retry.recovered", "op")
_RETRY_EXHAUSTED = BoundCounterFamily("retry.exhausted", "op")

#: The study scans from 3 cloud addresses in China and the US.
SCAN_SOURCE_SPECS: Tuple[Tuple[str, str], ...] = (
    ("198.199.70.11", "US"),
    ("198.199.70.12", "US"),
    ("121.40.88.21", "CN"),
)

SWEEP_DURATION_S = 24 * 3600.0


@dataclass
class SweepResult:
    """Outcome of one full port sweep."""

    port: int
    round_index: int
    started_at: float
    duration_s: float
    #: Materialised responsive addresses, in randomised scan order.
    open_addresses: List[str]
    #: Estimated total port-open population including the statistical
    #: background (the paper's "2 to 3 million hosts with port 853 open").
    total_open_estimate: int
    opted_out: int = 0
    #: Open hosts whose SYN probes were all lost to injected faults.
    probes_lost: int = 0

    @property
    def materialized_count(self) -> int:
        return len(self.open_addresses)


class ZmapScanner:
    """Sweeps the simulated IPv4 space for one open TCP port."""

    def __init__(self, network: Network, rng: SeededRng,
                 background_total: int = 0,
                 opt_out: Optional[Set[str]] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.rng = rng
        self.background_total = background_total
        #: Addresses whose operators asked to be excluded.
        self.opt_out = set(opt_out or ())
        #: How often a lost SYN probe is re-sent before the host is
        #: written off as closed (default: single probe, like zmap).
        self.retry_policy = retry_policy or RetryPolicy(op="scan.zmap")
        self.sources = [
            ClientEnvironment.in_country(f"zmap-src-{address}", address,
                                         country_code,
                                         rng.fork(f"src-{address}"))
            for address, country_code in SCAN_SOURCE_SPECS
        ]

    def sweep(self, port: int, round_index: int = 0,
              shard=None) -> SweepResult:
        """One randomised sweep; returns every responsive address.

        With a ``shard`` (see :mod:`repro.core.parallel`) only that
        contiguous slice of the host registry is probed and the result
        is a *fragment*: unshuffled, without the background estimate.
        Fragments are combined — and the canonical permutation applied —
        by :func:`merge_sweeps`.

        The sweep *streams*: it never materialises host objects or the
        registry tuple, so a procedurally-backed network holds memory
        proportional to the open population, not the address space
        (``probed`` still counts every address in the window, exactly
        as the historical full-registry walk did).
        """
        total = self.network.address_count()
        if shard is not None:
            start, stop = shard.start, min(shard.stop, total)
        else:
            start, stop = 0, total
        with get_tracer().span("scan.sweep", clock=self.network.clock.now,
                               port=port, round=round_index):
            started_at = self.network.clock.now()
            open_addresses = []
            opted_out = 0
            probed = max(0, stop - start)
            probes_lost = 0
            injector = self.network.fault_injector
            for address in self.network.open_tcp_addresses(port, start,
                                                           stop):
                if address in self.opt_out:
                    opted_out += 1
                    continue
                if injector is not None and self._probe_lost(
                        injector, address, port):
                    probes_lost += 1
                    continue
                open_addresses.append(address)
            if shard is None:
                # ZMap probes the space in a random permutation;
                # downstream consumers must not rely on registry order.
                self.rng.fork(f"order-{round_index}").shuffle(open_addresses)
            background = (0 if shard is not None
                          else max(0, self.background_total
                                   - len(open_addresses)))
            port_label = str(port)
            _PROBES_SENT.get(port_label).inc(probed)
            _RESPONSES.get(port_label).inc(len(open_addresses))
            _OPTED_OUT.get(port_label).inc(opted_out)
            if probes_lost:
                _PROBES_LOST.get(port_label).inc(probes_lost)
            return SweepResult(
                port=port,
                round_index=round_index,
                started_at=started_at,
                duration_s=SWEEP_DURATION_S,
                open_addresses=open_addresses,
                total_open_estimate=len(open_addresses) + background,
                opted_out=opted_out,
                probes_lost=probes_lost,
            )

    def _probe_lost(self, injector, address: str, port: int) -> bool:
        """Drive the SYN probe through the retry policy; True = no answer."""
        attempts_counter = _RETRY_ATTEMPTS.get("scan.zmap")
        for attempt in range(self.retry_policy.attempts):
            attempts_counter.inc()
            if not injector.probe_lost(address, port):
                if attempt > 0:
                    _RETRY_RECOVERED.get("scan.zmap").inc()
                return False
        _RETRY_EXHAUSTED.get("scan.zmap").inc()
        return True

    def source_for_probe(self, index: int) -> ClientEnvironment:
        """Rotate probe traffic across the scan sources."""
        return self.sources[index % len(self.sources)]


def merge_sweeps(fragments: List[SweepResult], rng: SeededRng,
                 background_total: int = 0) -> SweepResult:
    """Combine per-shard sweep fragments into one canonical result.

    Fragments must arrive in shard-index order; concatenation then
    reproduces the registry order a serial sweep would have walked, and
    the same stable ``order-{round}`` fork applies the same permutation
    regardless of shard or worker count.
    """
    if not fragments:
        raise ValueError("merge_sweeps needs at least one fragment")
    first = fragments[0]
    open_addresses = [address for fragment in fragments
                      for address in fragment.open_addresses]
    rng.fork(f"order-{first.round_index}").shuffle(open_addresses)
    background = max(0, background_total - len(open_addresses))
    return SweepResult(
        port=first.port,
        round_index=first.round_index,
        started_at=first.started_at,
        duration_s=first.duration_s,
        open_addresses=open_addresses,
        total_open_estimate=len(open_addresses) + background,
        opted_out=sum(fragment.opted_out for fragment in fragments),
        probes_lost=sum(fragment.probes_lost for fragment in fragments),
    )
