"""The full scan campaign: repeated sweeps from Feb 1 to May 1, 2019.

Orchestrates one :class:`DotDiscovery` per round (every 10 days) plus a
DoH discovery pass, and aggregates the per-round results into the data
behind Table 2 and Figures 3-4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.scan.doh_scan import DohDiscovery, DohScanRecord
from repro.core.scan.dot_scan import DotDiscovery, DotScanRecord, SweepStats
from repro.core.scan.providers import (
    ProviderGroup,
    ProviderStats,
    group_into_providers,
    provider_stats,
)
from repro.core.scan.zmap import ZmapScanner
from repro.netsim.clock import format_date
from repro.netsim.rand import SeededRng
from repro.telemetry import get_registry, get_tracer
from repro.world.scenario import Scenario


@dataclass
class RoundResult:
    """Everything one scan round produced."""

    round_index: int
    date: float
    stats: SweepStats
    records: List[DotScanRecord]
    groups: List[ProviderGroup] = field(default_factory=list)

    @property
    def resolvers(self) -> List[DotScanRecord]:
        return [record for record in self.records if record.is_dot]

    @property
    def date_text(self) -> str:
        return format_date(self.date)

    def country_counts(self) -> Counter:
        return Counter(record.country for record in self.resolvers)

    def provider_statistics(self) -> ProviderStats:
        return provider_stats(self.groups)


@dataclass
class CampaignResult:
    """All rounds plus the DoH discovery."""

    rounds: List[RoundResult]
    doh_records: List[DohScanRecord] = field(default_factory=list)

    @property
    def first(self) -> RoundResult:
        return self.rounds[0]

    @property
    def last(self) -> RoundResult:
        return self.rounds[-1]

    def country_growth(self, top_n: int = 10) -> List[Tuple[str, int, int, float]]:
        """Table 2: (country, first count, last count, growth %)."""
        first_counts = self.first.country_counts()
        last_counts = self.last.country_counts()
        ranked = first_counts.most_common(top_n)
        rows = []
        for code, first_count in ranked:
            last_count = last_counts.get(code, 0)
            growth = ((last_count - first_count) / first_count * 100.0
                      if first_count else 0.0)
            rows.append((code, first_count, last_count, growth))
        return rows

    def resolvers_per_round(self) -> List[Tuple[str, int]]:
        """Figure 3's x-axis series: (date, open DoT resolver count)."""
        return [(round_result.date_text, len(round_result.resolvers))
                for round_result in self.rounds]

    def working_doh(self) -> List[DohScanRecord]:
        return [record for record in self.doh_records if record.is_doh]


class ScanCampaign:
    """Runs the repeated discovery over a scenario's timeline."""

    def __init__(self, scenario: Scenario, rng: Optional[SeededRng] = None):
        self.scenario = scenario
        self.rng = rng or scenario.rng.fork("campaign")

    def run_round(self, round_index: int) -> RoundResult:
        scenario = self.scenario
        network = scenario.network_for_round(round_index)
        with get_tracer().span("campaign.round", clock=network.clock.now,
                               round=round_index):
            scanner = ZmapScanner(
                network, self.rng.fork(f"zmap-{round_index}"),
                background_total=scenario.background_open853(round_index),
                retry_policy=scenario.retry_policy(op="scan.zmap"))
            discovery = DotDiscovery(
                network, scanner, self.rng.fork(f"dot-{round_index}"),
                scenario.trust_store, scenario.probe_origin,
                scenario.expected_probe_answer(),
                retry_policy=scenario.retry_policy(op="dot.probe"))
            records, stats = discovery.discover(round_index)
            result = RoundResult(
                round_index=round_index,
                date=scenario.scan_dates()[round_index],
                stats=stats,
                records=records,
            )
            result.groups = group_into_providers(result.resolvers)
            registry = get_registry()
            registry.inc("scan.rounds")
            registry.set_gauge("scan.round.dot_resolvers",
                              stats.dot_resolvers, round=str(round_index))
            return result

    def run_doh_discovery(self) -> List[DohScanRecord]:
        scenario = self.scenario
        network = scenario.client_network()
        discovery = DohDiscovery(
            network, self.rng.fork("doh"), scenario.trust_store,
            scenario.bootstrap, scenario.probe_origin,
            scenario.expected_probe_answer(),
            public_list=scenario.public_doh_list(),
            retry_policy=scenario.retry_policy(op="doh.probe"))
        return discovery.discover(scenario.url_dataset())

    def run(self, rounds: Optional[int] = None,
            include_doh: bool = True) -> CampaignResult:
        """Run the whole campaign (all rounds by default)."""
        total = (self.scenario.config.scan_rounds if rounds is None
                 else rounds)
        # Stamp the campaign span with the scenario timeline (the first
        # scan date) rather than a per-round network clock, so the span
        # exists before any network is built.
        start = self.scenario.scan_dates()[0]
        with get_tracer().span("campaign", clock=lambda: start,
                               rounds=total, include_doh=include_doh):
            round_results = [self.run_round(index) for index in range(total)]
            doh_records = self.run_doh_discovery() if include_doh else []
            return CampaignResult(round_results, doh_records)
