"""The full scan campaign: repeated sweeps from Feb 1 to May 1, 2019.

Orchestrates one :class:`DotDiscovery` per round (every 10 days) plus a
DoH discovery pass, and aggregates the per-round results into the data
behind Table 2 and Figures 3-4.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.parallel import (
    ParallelConfig,
    Shard,
    ShardOutcome,
    merge_outcomes,
    register_worker_cache,
)
from repro.core.scan.doh_scan import DohDiscovery, DohScanRecord
from repro.core.scan.dot_scan import DotDiscovery, DotScanRecord, SweepStats
from repro.core.scan.providers import (
    ProviderGroup,
    ProviderStats,
    group_into_providers,
    provider_stats,
)
from repro.core.scan.zmap import ZmapScanner, merge_sweeps
from repro.errors import CampaignError
from repro.netsim.clock import format_date
from repro.netsim.rand import SeededRng
from repro.telemetry import get_registry, get_tracer
from repro.world.scenario import (
    SELF_BUILT_IP,
    Scenario,
    ScenarioConfig,
    build_scenario,
)


@dataclass
class RoundResult:
    """Everything one scan round produced."""

    round_index: int
    date: float
    stats: SweepStats
    records: List[DotScanRecord]
    groups: List[ProviderGroup] = field(default_factory=list)

    @property
    def resolvers(self) -> List[DotScanRecord]:
        return [record for record in self.records if record.is_dot]

    @property
    def date_text(self) -> str:
        return format_date(self.date)

    def country_counts(self) -> Counter:
        return Counter(record.country for record in self.resolvers)

    def provider_statistics(self) -> ProviderStats:
        return provider_stats(self.groups)


def rank_country_growth(first_counts: Counter, last_counts: Counter,
                        top_n: int) -> List[Tuple[str, int, int,
                                                  Optional[float]]]:
    """Table 2 rows over two per-country resolver Counters.

    Countries are ranked on the *union* of the two scans — by the larger
    of the two counts, then by the final count, then by code — so a
    country absent from the first round but large at the end still makes
    the table. A new entrant (zero first-round count) reports ``None``
    growth: there is no base to grow from, and renderers must flag it
    explicitly rather than print a misleading 0%.
    """
    codes = set(first_counts) | set(last_counts)
    ranked = sorted(
        codes,
        key=lambda code: (-max(first_counts.get(code, 0),
                               last_counts.get(code, 0)),
                          -last_counts.get(code, 0), code))
    rows: List[Tuple[str, int, int, Optional[float]]] = []
    for code in ranked[:top_n]:
        first_count = first_counts.get(code, 0)
        last_count = last_counts.get(code, 0)
        growth: Optional[float]
        if first_count:
            growth = (last_count - first_count) / first_count * 100.0
        elif last_count:
            growth = None  # new entrant: no base count to grow from
        else:
            growth = 0.0
        rows.append((code, first_count, last_count, growth))
    return rows


@dataclass
class CampaignResult:
    """All rounds plus the DoH discovery."""

    rounds: List[RoundResult]
    doh_records: List[DohScanRecord] = field(default_factory=list)

    @property
    def first(self) -> RoundResult:
        if not self.rounds:
            raise CampaignError(
                "campaign has no completed rounds; run at least one round "
                "before reading per-round results")
        return self.rounds[0]

    @property
    def last(self) -> RoundResult:
        if not self.rounds:
            raise CampaignError(
                "campaign has no completed rounds; run at least one round "
                "before reading per-round results")
        return self.rounds[-1]

    def country_growth(self, top_n: int = 10
                       ) -> List[Tuple[str, int, int, Optional[float]]]:
        """Table 2: (country, first count, last count, growth % or None).

        Ranked on the union of the first and last scans; ``None`` growth
        marks a new entrant (see :func:`rank_country_growth`). An empty
        campaign yields an empty table rather than crashing mid-report.
        """
        if not self.rounds:
            return []
        return rank_country_growth(self.first.country_counts(),
                                   self.last.country_counts(), top_n)

    def resolvers_per_round(self) -> List[Tuple[str, int]]:
        """Figure 3's x-axis series: (date, open DoT resolver count)."""
        return [(round_result.date_text, len(round_result.resolvers))
                for round_result in self.rounds]

    def working_doh(self) -> List[DohScanRecord]:
        return [record for record in self.doh_records if record.is_doh]


# -- shard workers (module-level and picklable for the fork pool) ----------


@dataclass(frozen=True)
class _SweepTask:
    """Sweep one contiguous slice of the round's host registry."""

    config: ScenarioConfig
    round_index: int
    shard: Shard
    port: int = 853


@dataclass(frozen=True)
class _ProbeTask:
    """DoT-probe one slice of the merged (shuffled) open-address list."""

    config: ScenarioConfig
    round_index: int
    addresses: Tuple[str, ...]
    base_index: int
    shard: Shard


@dataclass(frozen=True)
class _DohTask:
    """DoH-probe one slice of the deduplicated candidate URL list."""

    config: ScenarioConfig
    urls: Tuple[str, ...]
    shard: Shard


# -- worker-side scenario cache ---------------------------------------------
#
# Persistent pool workers (and the in-process fallback) reuse one built
# scenario per config across every dispatch: building the scenario —
# providers, CAs, vantage populations, the URL corpus — dominates shard
# cost, and it is a pure function of the picklable config. Networks are
# NOT reused from `Scenario.network_for_round` here: that cache hands
# out mutable worlds, and a shard must never observe another shard's
# clock advances. Shards instead build fresh (often partial) networks,
# or share the read-only pristine instance for sweeps.

_SCENARIO_CACHE: "OrderedDict[tuple, Scenario]" = OrderedDict()
_SCENARIO_CACHE_MAX = 4


def _config_key(config: ScenarioConfig) -> tuple:
    return tuple(sorted(vars(config).items()))


def cached_scenario(config: ScenarioConfig) -> Scenario:
    """The worker's scenario for this config (LRU-cached, built once)."""
    key = _config_key(config)
    scenario = _SCENARIO_CACHE.get(key)
    if scenario is None:
        scenario = build_scenario(config)
        _SCENARIO_CACHE[key] = scenario
        while len(_SCENARIO_CACHE) > _SCENARIO_CACHE_MAX:
            _SCENARIO_CACHE.popitem(last=False)
    else:
        _SCENARIO_CACHE.move_to_end(key)
    return scenario


def prime_scenario(scenario: Scenario) -> None:
    """Seed the worker-side cache with an already-built scenario.

    The sharded entry points call this before dispatching: the
    in-process fallback then reuses the caller's scenario instead of
    building a second one, and a persistent pool forked after the prime
    inherits the built world — certificate-chain memos included — via
    fork copy-on-write. Pure optimisation: scenario building is a
    deterministic function of the config, so a primed and a
    worker-built scenario are interchangeable (the legacy-vs-persistent
    byte-equality check in ``benchmarks/bench_parallel_campaign.py``
    crosses the two).
    """
    key = _config_key(scenario.config)
    if _SCENARIO_CACHE.get(key) is not scenario:
        _SCENARIO_CACHE[key] = scenario
        while len(_SCENARIO_CACHE) > _SCENARIO_CACHE_MAX:
            _SCENARIO_CACHE.popitem(last=False)
    else:
        _SCENARIO_CACHE.move_to_end(key)


register_worker_cache(_SCENARIO_CACHE.clear)


def shard_scenario(config: ScenarioConfig, round_index: int, shard: Shard,
                   *, only_addresses=None, pristine: bool = False):
    """The world one shard runs against, faults scoped to the shard.

    Scenarios carry live networks (with lambdas) and so never cross the
    process boundary — each worker builds its own from the picklable
    config (once, via :func:`cached_scenario`) and hands every shard a
    network that is deterministic by construction: a shared read-only
    pristine instance for sweeps (``pristine=True``), or a fresh —
    possibly partial, via ``only_addresses`` — build for mutating
    measurements. The fault injector is reinstalled on the shard's own
    rng path so its order-dependent per-rule streams depend only on
    (seed, shard plan), never on which worker runs the shard.
    """
    scenario = cached_scenario(config)
    # Campaigns dispatch rounds in ascending order, so a pooled worker
    # can drop its per-round caches for rounds that can no longer be
    # dispatched — this keeps worker memory flat over 100-round
    # longitudinal campaigns. Releasing is cache eviction only: a
    # released round rebuilds deterministically if ever requested again.
    scenario.release_rounds_before(round_index - 1)
    if pristine:
        network = scenario.pristine_network_for_round(round_index)
    else:
        network = scenario.fresh_network_for_round(
            round_index, only_addresses=only_addresses)
    plan = scenario.fault_plan_obj()
    if not plan.is_empty:
        from repro.netsim.faults import FaultInjector
        network.install_fault_injector(FaultInjector(
            plan, scenario.rng.fork(shard.rng_path)
            .fork(f"faults-{round_index}")))
    return scenario, network


def _sweep_shard(task: _SweepTask) -> ShardOutcome:
    # Sweeps are read-only over the host registry, so every sweep shard
    # shares the worker's pristine per-round network.
    scenario, network = shard_scenario(task.config, task.round_index,
                                       task.shard, pristine=True)
    campaign_rng = scenario.rng.fork("campaign")
    scanner = ZmapScanner(
        network, campaign_rng.fork(f"zmap-{task.round_index}"),
        retry_policy=scenario.retry_policy(op="scan.zmap"))
    fragment = scanner.sweep(task.port, task.round_index, shard=task.shard)
    return ShardOutcome(task.shard.index, fragment)


def _probe_shard(task: _ProbeTask) -> ShardOutcome:
    # DoT probing mutates its targets (clock advances, backend rng), so
    # each shard gets a fresh partial world holding just its addresses —
    # every host builds from its own stateless rng fork, so the partial
    # world is byte-identical to the same hosts inside a full build.
    scenario, network = shard_scenario(
        task.config, task.round_index, task.shard,
        only_addresses=frozenset(task.addresses))
    campaign_rng = scenario.rng.fork("campaign")
    scanner = ZmapScanner(
        network, campaign_rng.fork(f"zmap-{task.round_index}"),
        retry_policy=scenario.retry_policy(op="scan.zmap"))
    discovery = DotDiscovery(
        network, scanner, campaign_rng.fork(f"dot-{task.round_index}"),
        scenario.trust_store, scenario.probe_origin,
        scenario.expected_probe_answer(),
        retry_policy=scenario.retry_policy(op="dot.probe"))
    records = discovery.probe_all(list(task.addresses), task.round_index,
                                  base_index=task.base_index)
    return ShardOutcome(task.shard.index, records)


def _doh_shard(task: _DohTask) -> ShardOutcome:
    final_round = task.config.scan_rounds - 1
    # DoH candidates only ever reach the providers' DoH fronts and the
    # self-built resolver (lookalike/noise hosts have no bootstrap A
    # record), so the shard world holds just those.
    doh_world = cached_scenario(task.config).doh_addresses()
    scenario, network = shard_scenario(
        task.config, final_round, task.shard,
        only_addresses=frozenset(doh_world | {SELF_BUILT_IP}))
    discovery = DohDiscovery(
        network,
        scenario.rng.fork("campaign").fork("doh").fork(task.shard.rng_path),
        scenario.trust_store, scenario.bootstrap, scenario.probe_origin,
        scenario.expected_probe_answer(),
        public_list=scenario.public_doh_list(),
        retry_policy=scenario.retry_policy(op="doh.probe"))
    records = discovery.probe_many(list(task.urls))
    return ShardOutcome(task.shard.index, records)


class ScanCampaign:
    """Runs the repeated discovery over a scenario's timeline.

    With a :class:`ParallelConfig` the per-round sweep, the DoT probe
    pass, and the DoH discovery each fan out over deterministic shards;
    without one the historical serial path runs unchanged.
    """

    def __init__(self, scenario: Scenario, rng: Optional[SeededRng] = None,
                 parallel: Optional[ParallelConfig] = None):
        self.scenario = scenario
        self.rng = rng or scenario.rng.fork("campaign")
        self.parallel = parallel

    def run_round(self, round_index: int) -> RoundResult:
        if self.parallel is not None:
            return self._run_round_sharded(round_index)
        scenario = self.scenario
        network = scenario.network_for_round(round_index)
        with get_tracer().span("campaign.round", clock=network.clock.now,
                               round=round_index):
            scanner = ZmapScanner(
                network, self.rng.fork(f"zmap-{round_index}"),
                background_total=scenario.background_open853(round_index),
                retry_policy=scenario.retry_policy(op="scan.zmap"))
            discovery = DotDiscovery(
                network, scanner, self.rng.fork(f"dot-{round_index}"),
                scenario.trust_store, scenario.probe_origin,
                scenario.expected_probe_answer(),
                retry_policy=scenario.retry_policy(op="dot.probe"))
            records, stats = discovery.discover(round_index)
            result = RoundResult(
                round_index=round_index,
                date=scenario.scan_dates()[round_index],
                stats=stats,
                records=records,
            )
            result.groups = group_into_providers(result.resolvers)
            registry = get_registry()
            registry.inc("scan.rounds")
            registry.set_gauge("scan.round.dot_resolvers",
                              stats.dot_resolvers, round=str(round_index))
            return result

    def _run_round_sharded(self, round_index: int) -> RoundResult:
        """One round as two deterministic fan-outs: sweep, then probe.

        The sweep partitions the host registry; its fragments merge into
        the canonical shuffled address list, which the probe pass then
        partitions again. Both plans depend only on (seed, shard count),
        so every byte of the result is invariant under worker count.
        """
        scenario = self.scenario
        parallel = self.parallel
        prime_scenario(scenario)
        # The parent only needs a host count and a clock reading here;
        # the shared read-only pristine network provides both without
        # building (and caching) a mutable world nobody will probe.
        network = scenario.pristine_network_for_round(round_index)
        with get_tracer().span("campaign.round", clock=network.clock.now,
                               round=round_index):
            host_count = network.address_count()
            sweep_tasks = [
                _SweepTask(scenario.config, round_index, shard)
                for shard in parallel.plan(host_count)]
            fragments = merge_outcomes(
                parallel.dispatch(_sweep_shard, sweep_tasks, host_count))
            sweep = merge_sweeps(
                fragments, self.rng.fork(f"zmap-{round_index}"),
                background_total=scenario.background_open853(round_index))
            probe_tasks = [
                _ProbeTask(scenario.config, round_index,
                           tuple(shard.slice(sweep.open_addresses)),
                           shard.start, shard)
                for shard in parallel.plan(len(sweep.open_addresses))]
            record_lists = merge_outcomes(
                parallel.dispatch(_probe_shard, probe_tasks,
                                  len(sweep.open_addresses)))
            records = [record for shard_records in record_lists
                       for record in shard_records]
            resolvers = [record for record in records if record.is_dot]
            stats = SweepStats(
                total_open_estimate=sweep.total_open_estimate,
                probed=len(records),
                dot_resolvers=len(resolvers))
            result = RoundResult(
                round_index=round_index,
                date=scenario.scan_dates()[round_index],
                stats=stats,
                records=records,
            )
            result.groups = group_into_providers(result.resolvers)
            registry = get_registry()
            registry.inc("scan.rounds")
            registry.set_gauge("scan.round.dot_resolvers",
                               stats.dot_resolvers, round=str(round_index))
            return result

    def _run_doh_sharded(self) -> List[DohScanRecord]:
        scenario = self.scenario
        parallel = self.parallel
        prime_scenario(scenario)
        network = scenario.client_network()
        discovery = DohDiscovery(
            network, self.rng.fork("doh"), scenario.trust_store,
            scenario.bootstrap, scenario.probe_origin,
            scenario.expected_probe_answer(),
            public_list=scenario.public_doh_list(),
            retry_policy=scenario.retry_policy(op="doh.probe"))
        candidates = discovery.candidate_urls(scenario.url_dataset())
        with get_tracer().span("doh.discovery", clock=network.clock.now,
                               candidates=len(candidates)):
            tasks = [
                _DohTask(scenario.config, tuple(shard.slice(candidates)),
                         shard)
                for shard in parallel.plan(len(candidates))]
            record_lists = merge_outcomes(
                parallel.dispatch(_doh_shard, tasks, len(candidates)))
            return [record for shard_records in record_lists
                    for record in shard_records]

    def run_doh_discovery(self) -> List[DohScanRecord]:
        if self.parallel is not None:
            return self._run_doh_sharded()
        scenario = self.scenario
        network = scenario.client_network()
        discovery = DohDiscovery(
            network, self.rng.fork("doh"), scenario.trust_store,
            scenario.bootstrap, scenario.probe_origin,
            scenario.expected_probe_answer(),
            public_list=scenario.public_doh_list(),
            retry_policy=scenario.retry_policy(op="doh.probe"))
        return discovery.discover(scenario.url_dataset())

    def run(self, rounds: Optional[int] = None,
            include_doh: bool = True) -> CampaignResult:
        """Run the whole campaign (all rounds by default)."""
        total = (self.scenario.config.scan_rounds if rounds is None
                 else rounds)
        # Stamp the campaign span with the scenario timeline (the first
        # scan date) rather than a per-round network clock, so the span
        # exists before any network is built.
        start = self.scenario.scan_dates()[0]
        if self.parallel is not None:
            # A campaign run opens a fresh adaptive-decision log:
            # re-running with the same ParallelConfig must record the
            # same decisions, not an accumulating history — same-seed
            # reruns stay byte-identical (studies dispatched after the
            # campaign still append theirs to the same log).
            self.parallel.decisions.clear()
            # Build every round's shared read-only world before the
            # first dispatch: the persistent pool forks on that first
            # dispatch, so workers inherit all of them copy-on-write
            # instead of each rebuilding the later rounds' worlds.
            prime_scenario(self.scenario)
            for index in range(total):
                self.scenario.pristine_network_for_round(index)
        with get_tracer().span("campaign", clock=lambda: start,
                               rounds=total, include_doh=include_doh):
            round_results = [self.run_round(index) for index in range(total)]
            doh_records = self.run_doh_discovery() if include_doh else []
            return CampaignResult(round_results, doh_records)
