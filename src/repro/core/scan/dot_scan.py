"""DoT service discovery and certificate analysis.

For every address a sweep found with port 853 open, the discovery step
issues a real DoT query for a uniquely-prefixed name under the platform's
own domain (the getdns probe of Section 3.1), fetches and validates the
SSL certificate (the openssl step of Finding 1.2), and validates the DNS
answer against authoritative ground truth (Section 3.2's dnsfilter.com
detection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.retry import RetryPolicy
from repro.dnswire.builder import make_query
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.doe.dot import DotClient, PrivacyProfile
from repro.doe.result import QueryOutcome
from repro.netsim.network import Network
from repro.netsim.rand import SeededRng
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundHistogram,
    get_tracer,
)
from repro.tlssim.certs import CaStore, ValidationReport
from repro.core.scan.zmap import ZmapScanner

_PROBE_LATENCY_MS = BoundHistogram("dot.probe.latency_ms")
_HANDSHAKE_OK = BoundCounter("dot.handshake.ok")
_HANDSHAKE_FAIL = BoundCounterFamily("dot.handshake.fail", "kind")
_VALIDATION_OUTCOME = BoundCounterFamily("dot.validation.outcome", "outcome")
_CERT_VALIDATED = BoundCounterFamily("dot.cert.validated", "valid")


@dataclass
class DotScanRecord:
    """Everything learned about one port-853-open address."""

    address: str
    round_index: int
    #: Whether the address answered the DoT probe with a DNS response.
    is_dot: bool
    #: Whether the DNS answer matched our authoritative data.
    answer_correct: bool = False
    answers: Tuple[str, ...] = ()
    latency_ms: float = 0.0
    error: str = ""
    chain: tuple = ()
    cert_report: Optional[ValidationReport] = None
    country: str = ""

    @property
    def has_invalid_cert(self) -> bool:
        return self.cert_report is not None and not self.cert_report.valid

    @property
    def common_name(self) -> str:
        if self.chain:
            return self.chain[0].subject_cn
        return ""

    def grouping_key(self) -> str:
        """The provider-grouping key: cert CN, folded to SLD for names.

        "we group the DoT resolvers by Common Names in their SSL
        certificates ... If the Common Name is a domain name, we group
        them by Second-Level Domains."
        """
        cn = self.common_name
        if not cn:
            return f"unknown:{self.address}"
        if "." in cn and " " not in cn:
            try:
                return DnsName.from_text(cn).second_level_domain().to_display()
            except Exception:
                return cn
        return cn


class DotDiscovery:
    """Probes swept addresses and builds per-address scan records."""

    def __init__(self, network: Network, scanner: ZmapScanner,
                 rng: SeededRng, ca_store: CaStore,
                 probe_origin: DnsName,
                 expected_answers: Tuple[str, ...],
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.scanner = scanner
        self.rng = rng
        self.ca_store = ca_store
        self.probe_origin = probe_origin
        self.expected_answers = expected_answers
        #: Transient-failure handling for the getdns-style probe; the
        #: default single attempt reproduces the paper's one-shot scan.
        self.retry_policy = retry_policy or RetryPolicy(op="dot.probe")

    def probe_all(self, addresses: List[str],
                  round_index: int = 0,
                  base_index: int = 0) -> List[DotScanRecord]:
        """Probe a batch; ``base_index`` keeps the scan-source rotation
        aligned with the address's global position when the batch is one
        shard of a larger sweep."""
        with get_tracer().span("scan.probe",
                               clock=self.network.clock.now,
                               round=round_index, targets=len(addresses)):
            records = []
            for index, address in enumerate(addresses):
                records.append(self.probe_one(address, base_index + index,
                                              round_index))
            return records

    def probe_one(self, address: str, index: int = 0,
                  round_index: int = 0) -> DotScanRecord:
        """One getdns-style DoT probe plus certificate fetch."""
        source = self.scanner.source_for_probe(index)
        probe_rng = self.rng.fork(f"probe-{round_index}-{address}")
        client = DotClient(self.network, probe_rng, self.ca_store,
                           profile=PrivacyProfile.OPPORTUNISTIC)
        token = probe_rng.token(10)
        query = make_query(self.probe_origin.child(token), RRType.A,
                           msg_id=probe_rng.randint(1, 0xFFFF))
        from repro.core.retry import TRANSIENT_KINDS
        result = self.retry_policy.run_query(
            lambda: client.query(source, address, query, reuse=False,
                                 timeout_s=10.0),
            rng=probe_rng.fork("retry"), op="dot.probe",
            retry_on=TRANSIENT_KINDS)
        host = self.network.host_at(address)
        country = host.country_code if host is not None else ""
        _PROBE_LATENCY_MS.observe(result.latency_ms)
        if not result.ok:
            _HANDSHAKE_FAIL.get(result.failure.value
                                if result.failure else "unknown").inc()
            return DotScanRecord(
                address=address, round_index=round_index, is_dot=False,
                error=result.error, latency_ms=result.latency_ms,
                chain=result.presented_chain,
                cert_report=result.cert_report, country=country)
        outcome = result.classify(self.expected_answers)
        _HANDSHAKE_OK.inc()
        _VALIDATION_OUTCOME.get(outcome.value).inc()
        if result.cert_report is not None:
            _CERT_VALIDATED.get(
                "true" if result.cert_report.valid else "false").inc()
        return DotScanRecord(
            address=address, round_index=round_index, is_dot=True,
            answer_correct=(outcome is QueryOutcome.CORRECT),
            answers=result.addresses(),
            latency_ms=result.latency_ms,
            chain=result.presented_chain,
            cert_report=result.cert_report,
            country=country)

    def discover(self, round_index: int = 0,
                 port: int = 853) -> Tuple[List[DotScanRecord], "SweepStats"]:
        """Full sweep + probe pipeline for one round."""
        sweep = self.scanner.sweep(port, round_index)
        records = self.probe_all(sweep.open_addresses, round_index)
        resolvers = [record for record in records if record.is_dot]
        stats = SweepStats(
            total_open_estimate=sweep.total_open_estimate,
            probed=len(records),
            dot_resolvers=len(resolvers),
        )
        return records, stats


@dataclass(frozen=True)
class SweepStats:
    """Headline numbers of one discovery round."""

    total_open_estimate: int
    probed: int
    dot_resolvers: int
