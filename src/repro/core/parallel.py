"""Deterministic sharded parallel execution for the measurement legs.

The paper's pipelines are embarrassingly parallel: a ZMap sweep probes
addresses independently, reachability tests vantage points
independently, DoH discovery fetches candidate URLs independently. This
module partitions such work into **shards** and runs the shards either
in-process (``workers <= 1``) or across ``multiprocessing`` fork
workers — with one hard contract:

    *The output is a pure function of (seed, shard plan). The worker
    count never appears in any result, table, or telemetry byte.*

Three mechanisms uphold the contract (see DESIGN.md "Parallel
execution & the determinism contract"):

* **Stable rng paths.** Shard ``i`` forks its stream from
  ``root.fork(f"shard/{i}")``; because :class:`SeededRng` forks are
  stateless (keyed hashes, not stream splits), the fork yields the
  same stream no matter which worker runs the shard or when.
* **Isolated telemetry fragments.** Each shard runs against a fresh
  process-default registry/tracer pair (a fork child inherits the
  parent's — it must be reset) and ships the pair back in its
  :class:`ShardOutcome`.
* **Order-free merge.** Fragments are merged in shard-index order
  using the registry merge laws (counters add, gauges last-write by
  shard index, histograms add bucket-wise) and shard root spans are
  re-attached under the caller's active span via ``Tracer.attach``.

Worker functions handed to :func:`run_shards` must be **module-level
callables taking one picklable payload** (scenario *configs* travel,
never scenarios — live networks hold lambdas) and returning a picklable
value. The in-process fallback runs the identical isolation wrapper, so
``--workers 1`` is a real differential baseline, not a separate code
path.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, Tracer

#: Shard count used when a parallel run doesn't pin one explicitly.
#: Part of the experiment definition: changing it changes which rng
#: stream probes which item, so it is recorded in the RunManifest.
DEFAULT_SHARDS = 8


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the work-item sequence."""

    index: int
    #: Total number of shards in the plan this shard belongs to (NOT
    #: this shard's item count — that is ``len(shard)``).
    shard_total: int
    start: int
    stop: int

    @property
    def rng_path(self) -> str:
        """Stable fork path — the same for every worker count."""
        return f"shard/{self.index}"

    def slice(self, items: Sequence) -> Sequence:
        return items[self.start:self.stop]

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic, lossless partition of ``item_count`` work items.

    Balanced contiguous ranges: the first ``item_count % shards`` shards
    get one extra item. The plan depends only on (item_count,
    shard_count) — pinned by Hypothesis properties in
    ``tests/test_parallel_properties.py`` to be disjoint, covering, and
    stable (the same pair always yields the same plan).
    """

    item_count: int
    shard_count: int
    shards: Tuple[Shard, ...] = field(init=False)

    def __post_init__(self):
        if self.item_count < 0:
            raise ValueError(f"item_count {self.item_count} < 0")
        if self.shard_count < 1:
            raise ValueError(f"shard_count {self.shard_count} < 1")
        if self.item_count == 0:
            # Zero work items partition into zero shards — dispatching
            # a phantom empty shard would cost a worker round-trip and
            # ship back an all-empty telemetry fragment.
            object.__setattr__(self, "shards", ())
            return
        base, extra = divmod(self.item_count, self.shard_count)
        shards: List[Shard] = []
        start = 0
        for index in range(self.shard_count):
            size = base + (1 if index < extra else 0)
            shards.append(Shard(index=index, shard_total=self.shard_count,
                                start=start, stop=start + size))
            start += size
        object.__setattr__(self, "shards", tuple(shards))

    @classmethod
    def for_items(cls, item_count: int,
                  shard_count: Optional[int] = None) -> "ShardPlan":
        """Plan with the requested shard count clamped to sane bounds.

        The count is clamped to ``[1, max(1, item_count)]`` so no shard
        is ever guaranteed empty by over-partitioning; a zero-item input
        yields an *empty* plan (no shards, no work dispatched).
        """
        requested = DEFAULT_SHARDS if shard_count is None else shard_count
        clamped = max(1, min(int(requested), max(1, int(item_count))))
        return cls(item_count=int(item_count), shard_count=clamped)

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)


@dataclass
class ParallelConfig:
    """How a run is sharded and scheduled.

    ``shards`` is part of the experiment (it decides rng-stream
    assignment); ``workers`` is pure scheduling and must never change a
    single output byte — the invariant the differential suite proves.
    """

    workers: int = 1
    shards: Optional[int] = None

    def plan(self, item_count: int) -> ShardPlan:
        return ShardPlan.for_items(item_count, self.shards)

    def manifest_execution(self) -> dict:
        """What the RunManifest records. Workers deliberately excluded —
        recording a scheduling knob would break byte-identity across
        worker counts."""
        return {"shards": (DEFAULT_SHARDS if self.shards is None
                           else int(self.shards))}


@dataclass
class ShardOutcome:
    """What one shard ships back to the merge step (all picklable).

    Workers construct it with just (shard_index, value); the isolation
    wrapper fills in the captured registry and root spans.
    """

    shard_index: int
    value: object
    registry: Optional[MetricsRegistry] = None
    spans: List[Span] = field(default_factory=list)


def _run_isolated(worker: Callable[[object], ShardOutcome],
                  payload: object) -> ShardOutcome:
    """Run one shard against a fresh telemetry pair and capture it.

    Used identically in fork children and in the in-process fallback:
    fork children inherit the parent's populated registry (so a reset
    is mandatory), and the fallback must produce the same isolated
    fragments a child would.
    """
    registry, tracer = telemetry.reset_registry()
    outcome = worker(payload)
    outcome.registry = registry
    outcome.spans = list(tracer.roots)
    return outcome


def run_shards(worker: Callable[[object], ShardOutcome],
               payloads: Sequence[object],
               workers: int = 1) -> List[ShardOutcome]:
    """Execute ``worker(payload)`` for every payload, preserving order.

    ``workers <= 1`` (or a single payload) runs in-process — saving and
    restoring the caller's telemetry pair around each shard. Otherwise a
    ``fork``-context pool maps the payloads with chunksize 1; results
    come back in submission order regardless of completion order, so
    scheduling cannot reorder the merge.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    if workers <= 1 or len(payloads) == 1:
        saved_registry = telemetry.get_registry()
        saved_tracer = telemetry.get_tracer()
        try:
            return [_run_isolated(worker, payload) for payload in payloads]
        finally:
            telemetry.install(saved_registry, saved_tracer)
    context = multiprocessing.get_context("fork")
    pool_size = min(int(workers), len(payloads))
    with context.Pool(processes=pool_size) as pool:
        return pool.map(_IsolatedWorker(worker), payloads, chunksize=1)


class _IsolatedWorker:
    """Picklable ``partial(_run_isolated, worker)`` for Pool.map."""

    def __init__(self, worker: Callable[[object], ShardOutcome]):
        self.worker = worker

    def __call__(self, payload: object) -> ShardOutcome:
        return _run_isolated(self.worker, payload)


def merge_outcomes(outcomes: Sequence[ShardOutcome],
                   registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None) -> List[object]:
    """Fold shard fragments into the caller's telemetry, in shard order.

    Gauge fragments are stamped with their shard index first, so the
    gauge "last write" is defined by shard order rather than merge-call
    order. Shard root spans are adopted under the caller's active span
    with a ``shard`` attribute. Returns the shard values, ordered by
    shard index.
    """
    registry = registry if registry is not None else telemetry.get_registry()
    tracer = tracer if tracer is not None else telemetry.get_tracer()
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    values: List[object] = []
    for outcome in ordered:
        if outcome.registry is not None:
            outcome.registry.stamp_origin(outcome.shard_index)
            registry.merge(outcome.registry)
        for span in outcome.spans:
            span.attrs.setdefault("shard", str(outcome.shard_index))
            tracer.attach(span)
        values.append(outcome.value)
    return values
