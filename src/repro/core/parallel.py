"""Deterministic sharded parallel execution for the measurement legs.

The paper's pipelines are embarrassingly parallel: a ZMap sweep probes
addresses independently, reachability tests vantage points
independently, DoH discovery fetches candidate URLs independently. This
module partitions such work into **shards** and runs the shards either
in-process or across a **persistent** ``multiprocessing`` fork pool —
with one hard contract:

    *The output is a pure function of (seed, shard plan). The worker
    count never appears in any result, table, or telemetry byte.*

Three mechanisms uphold the contract (see DESIGN.md "Parallel
execution & the determinism contract"):

* **Stable rng paths.** Shard ``i`` forks its stream from
  ``root.fork(f"shard/{i}")``; because :class:`SeededRng` forks are
  stateless (keyed hashes, not stream splits), the fork yields the
  same stream no matter which worker runs the shard or when.
* **Isolated telemetry fragments.** Each shard runs against a fresh
  process-default registry/tracer pair (a pool worker reused across
  dispatches still holds the previous shard's — it must be reset) and
  ships the pair back in its :class:`ShardOutcome`.
* **Order-free merge.** Fragments are merged in shard-index order
  using the registry merge laws (counters add, gauges last-write by
  shard index, histograms add bucket-wise) and shard root spans are
  re-attached under the caller's active span via ``Tracer.attach``.

Worker functions handed to :func:`run_shards` must be **module-level
callables taking one picklable payload** (scenario *configs* travel,
never scenarios — live networks hold lambdas) and returning a picklable
value. The in-process fallback runs the identical isolation wrapper, so
``--workers 1`` is a real differential baseline, not a separate code
path.

Performance model (the reason this module exists at all):

* **Persistent pool.** Workers are forked once per process (lazily, on
  the first pooled dispatch) and reused across campaign rounds, sweeps,
  and study legs. Worker-side modules cache scenario worlds keyed by
  config (see ``core/scan/campaign.cached_scenario``), so after the
  first dispatch only (shard descriptor, round params) cross the
  boundary per dispatch — not a world, not a pool fork.
* **Compact wire format.** Shard results return as flat tuples —
  registry rows of (kind, name, labels, algebraic state) and nested
  span tuples — instead of pickled ``MetricsRegistry``/``Span`` object
  graphs. :func:`merge_outcomes` decodes them into the identical merge
  the object-graph path performs, byte-for-byte.
* **Adaptive shard sizing.** :meth:`ParallelConfig.dispatch` keeps
  workloads below ``min_fanout_items`` in-process — fan-out overhead
  can only ever be paid where it can win. The decision is a pure
  predicate of (item count, threshold), recorded in the RunManifest,
  and never depends on the worker count.

Scheduling telemetry lands under the ``parallel.*`` namespace
(:data:`repro.telemetry.metrics.SCHEDULING_NAMESPACE`), which
deterministic exports and manifest totals exclude: a clamped worker
count or a pooled-vs-in-process dispatch is real scheduling information
but must never leak into the byte-identity the equivalence suite pins.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.telemetry.metrics import (
    BoundCounter,
    BoundCounterFamily,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, Tracer

#: Shard count used when a parallel run doesn't pin one explicitly.
#: Part of the experiment definition: changing it changes which rng
#: stream probes which item, so it is recorded in the RunManifest.
DEFAULT_SHARDS = 8

#: Workloads below this many items stay in-process by default: at small
#: sizes the dispatch overhead (task pickling, result decode, merge)
#: exceeds the work itself. Calibrated on the campaign benchmark —
#: sub-threshold legs are dominated by per-item costs of ~100 µs,
#: so even a free pool could not repay one round-trip. Recorded in the
#: RunManifest execution block alongside each dispatch decision.
DEFAULT_IN_PROCESS_THRESHOLD = 256

# Scheduling telemetry (parallel.* namespace — excluded from
# deterministic exports and manifest totals, visible in Prometheus,
# tables, and non-deterministic snapshots).
_CLAMPED = BoundCounter("parallel.workers.clamped")
_POOL_CREATED = BoundCounter("parallel.pool.created")
_DISPATCH = BoundCounterFamily("parallel.dispatch", "mode")


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the work-item sequence."""

    index: int
    #: Total number of shards in the plan this shard belongs to (NOT
    #: this shard's item count — that is ``len(shard)``).
    shard_total: int
    start: int
    stop: int

    @property
    def rng_path(self) -> str:
        """Stable fork path — the same for every worker count."""
        return f"shard/{self.index}"

    def slice(self, items: Sequence) -> Sequence:
        return items[self.start:self.stop]

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic, lossless partition of ``item_count`` work items.

    Balanced contiguous ranges: the first ``item_count % shards`` shards
    get one extra item. The plan depends only on (item_count,
    shard_count) — pinned by Hypothesis properties in
    ``tests/test_parallel_properties.py`` to be disjoint, covering, and
    stable (the same pair always yields the same plan).
    """

    item_count: int
    shard_count: int
    shards: Tuple[Shard, ...] = field(init=False)

    def __post_init__(self):
        if self.item_count < 0:
            raise ValueError(f"item_count {self.item_count} < 0")
        if self.shard_count < 1:
            raise ValueError(f"shard_count {self.shard_count} < 1")
        if self.item_count == 0:
            # Zero work items partition into zero shards — dispatching
            # a phantom empty shard would cost a worker round-trip and
            # ship back an all-empty telemetry fragment.
            object.__setattr__(self, "shards", ())
            return
        base, extra = divmod(self.item_count, self.shard_count)
        shards: List[Shard] = []
        start = 0
        for index in range(self.shard_count):
            size = base + (1 if index < extra else 0)
            shards.append(Shard(index=index, shard_total=self.shard_count,
                                start=start, stop=start + size))
            start += size
        object.__setattr__(self, "shards", tuple(shards))

    @classmethod
    def for_items(cls, item_count: int,
                  shard_count: Optional[int] = None) -> "ShardPlan":
        """Plan with the requested shard count clamped to sane bounds.

        The count is clamped to ``[1, max(1, item_count)]`` so no shard
        is ever guaranteed empty by over-partitioning; a zero-item input
        yields an *empty* plan (no shards, no work dispatched).
        """
        requested = DEFAULT_SHARDS if shard_count is None else shard_count
        clamped = max(1, min(int(requested), max(1, int(item_count))))
        return cls(item_count=int(item_count), shard_count=clamped)

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)


@dataclass
class ParallelConfig:
    """How a run is sharded and scheduled.

    ``shards`` and ``min_fanout_items`` are part of the experiment
    (they decide rng-stream assignment and which dispatches fan out);
    ``workers`` and ``oversubscribe`` are pure scheduling and must
    never change a single output byte — the invariant the differential
    suite proves.
    """

    workers: int = 1
    shards: Optional[int] = None
    #: Dispatches whose item count is below this stay in-process.
    min_fanout_items: int = DEFAULT_IN_PROCESS_THRESHOLD
    #: Allow more workers than ``os.cpu_count()``. Off by default:
    #: silent oversubscription is a foot-gun (context-switch thrash
    #: that looks like a perf regression), so excess workers are
    #: clamped and counted. The differential suite turns this on to
    #: genuinely exercise 4/16-worker pools on small CI machines.
    oversubscribe: bool = False
    #: Benchmark-only: route pooled dispatches through the historical
    #: executor (a fresh fork pool per dispatch, pickled telemetry
    #: object graphs). Pure scheduling — results are byte-identical —
    #: kept so ``benchmarks/bench_parallel_campaign.py`` can measure
    #: the persistent pool + wire format against the real baseline.
    legacy_executor: bool = False
    #: Adaptive-dispatch decision log (appended by :meth:`schedule`,
    #: recorded in the RunManifest). Each entry is a pure function of
    #: (item count, threshold) — never of the worker count.
    decisions: List[Dict[str, object]] = field(
        default_factory=list, compare=False, repr=False)

    def plan(self, item_count: int) -> ShardPlan:
        return ShardPlan.for_items(item_count, self.shards)

    def effective_workers(self) -> int:
        """The worker count actually used: clamped to the CPU count
        unless ``oversubscribe`` is set, with the clamped-away excess
        counted in ``parallel.workers.clamped``."""
        workers = max(1, int(self.workers))
        if self.oversubscribe:
            return workers
        cpus = os.cpu_count() or 1
        if workers > cpus:
            _CLAMPED.inc(workers - cpus)
            return cpus
        return workers

    def schedule(self, item_count: int) -> bool:
        """Decide (and record) whether a dispatch stays in-process.

        A pure predicate of ``(item_count, min_fanout_items)`` so the
        recorded decision — and therefore the manifest — is identical
        at every worker count.
        """
        in_process = int(item_count) < int(self.min_fanout_items)
        self.decisions.append({"items": int(item_count),
                               "in_process": in_process})
        return in_process

    def dispatch(self, worker: Callable[[object], "ShardOutcome"],
                 payloads: Sequence[object],
                 item_count: int) -> List["ShardOutcome"]:
        """Run the payloads under the adaptive policy.

        ``item_count`` is the size of the underlying workload (the
        quantity the threshold calibrates against), not the payload
        count — a 3-shard dispatch over 3,000 addresses is a
        3,000-item workload.
        """
        in_process = self.schedule(item_count)
        if in_process:
            _DISPATCH.get("in_process").inc()
            return run_shards(worker, payloads, workers=1)
        _DISPATCH.get("pool").inc()
        return run_shards(worker, payloads,
                          workers=self.effective_workers(),
                          reuse_pool=not self.legacy_executor,
                          wire=not self.legacy_executor)

    def manifest_execution(self) -> dict:
        """What the RunManifest records. Workers deliberately excluded —
        recording a scheduling knob would break byte-identity across
        worker counts. The adaptive block records the threshold and
        every dispatch decision (both are experiment-definition facts:
        identical at every worker count)."""
        return {
            "shards": (DEFAULT_SHARDS if self.shards is None
                       else int(self.shards)),
            "adaptive": {
                "threshold": int(self.min_fanout_items),
                "decisions": [dict(decision)
                              for decision in self.decisions],
            },
        }


@dataclass
class ShardOutcome:
    """What one shard ships back to the merge step (all picklable).

    Workers construct it with just (shard_index, value); the isolation
    wrapper fills in the captured telemetry — as live objects on the
    in-process path, as compact wire tuples (``registry_wire`` /
    ``spans_wire``) when crossing the process boundary.
    :func:`merge_outcomes` accepts either form and merges them
    byte-identically.
    """

    shard_index: int
    value: object
    registry: Optional[MetricsRegistry] = None
    spans: List[Span] = field(default_factory=list)
    registry_wire: Optional[tuple] = None
    spans_wire: Optional[Tuple[tuple, ...]] = None

    def encoded(self) -> "ShardOutcome":
        """A copy carrying wire tuples instead of telemetry objects."""
        return ShardOutcome(
            shard_index=self.shard_index,
            value=self.value,
            registry_wire=(self.registry.to_wire()
                           if self.registry is not None else None),
            spans_wire=tuple(span.to_wire() for span in self.spans),
        )


def _run_isolated(worker: Callable[[object], ShardOutcome],
                  payload: object) -> ShardOutcome:
    """Run one shard against a fresh telemetry pair and capture it.

    Used identically in pool workers and in the in-process fallback: a
    pool worker still holds the previous dispatch's registry (so a
    reset is mandatory), and the fallback must produce the same
    isolated fragments a worker would.
    """
    registry, tracer = telemetry.reset_registry()
    outcome = worker(payload)
    outcome.registry = registry
    outcome.spans = list(tracer.roots)
    return outcome


# Worker-side caches (scenario worlds, keyed by config) register a
# clearer here so the legacy benchmark baseline can reproduce the
# historical executor, which had no caches: every shard task built its
# world from scratch.
_WORKER_CACHE_CLEARERS: List[Callable[[], None]] = []


def register_worker_cache(clear: Callable[[], None]) -> None:
    """Register a worker-side cache clearer (idempotent per callable)."""
    if clear not in _WORKER_CACHE_CLEARERS:
        _WORKER_CACHE_CLEARERS.append(clear)


def clear_worker_caches() -> None:
    for clear in _WORKER_CACHE_CLEARERS:
        clear()


class _IsolatedWorker:
    """Picklable isolation wrapper for Pool.map.

    ``wire=True`` (the default for pooled dispatch) returns the
    compact-wire encoding so only flat tuples cross the process
    boundary; ``wire=False`` ships the object graphs.
    ``clear_caches=True`` additionally drops the worker-side world
    caches before every task. Together they reproduce the historical
    executor (fresh pool per dispatch, world rebuilt per shard, pickled
    telemetry graphs) — kept as the measured legacy baseline for
    ``benchmarks/bench_parallel_campaign.py``.
    """

    def __init__(self, worker: Callable[[object], ShardOutcome],
                 wire: bool = True, clear_caches: bool = False):
        self.worker = worker
        self.wire = wire
        self.clear_caches = clear_caches

    def __call__(self, payload: object) -> ShardOutcome:
        if self.clear_caches:
            clear_worker_caches()
        outcome = _run_isolated(self.worker, payload)
        return outcome.encoded() if self.wire else outcome


# -- persistent worker pool ---------------------------------------------------
#
# One fork pool per process, created lazily on the first pooled dispatch
# and reused for every subsequent one (recreated only when the requested
# size changes). Children inherit the parent's state at fork time via
# copy-on-write — including any scenario caches the parent has built —
# and each worker keeps its own config-keyed world cache warm across
# dispatches, which is where the campaign speedup comes from.

_worker_pool: Optional[Tuple[int, object]] = None


def get_worker_pool(processes: int):
    """The process-wide persistent pool, (re)created at ``processes``."""
    global _worker_pool
    processes = max(1, int(processes))
    if _worker_pool is not None and _worker_pool[0] != processes:
        shutdown_worker_pool()
    if _worker_pool is None:
        context = multiprocessing.get_context("fork")
        _worker_pool = (processes, context.Pool(processes=processes))
        _POOL_CREATED.inc()
    return _worker_pool[1]


def shutdown_worker_pool() -> None:
    """Tear down the persistent pool (no-op when none exists).

    Registered via ``atexit`` for process shutdown; tests call it
    directly to prove a fresh pool per round changes nothing.
    """
    global _worker_pool
    if _worker_pool is None:
        return
    _, pool = _worker_pool
    _worker_pool = None
    pool.terminate()
    pool.join()


atexit.register(shutdown_worker_pool)


def run_shards(worker: Callable[[object], ShardOutcome],
               payloads: Sequence[object],
               workers: int = 1,
               *,
               reuse_pool: bool = True,
               wire: bool = True) -> List[ShardOutcome]:
    """Execute ``worker(payload)`` for every payload, preserving order.

    ``workers <= 1`` (or a single payload) runs in-process — saving and
    restoring the caller's telemetry pair around the dispatch, on both
    the normal and the exception path, so a raising shard never leaks
    its isolated registry into the caller. Otherwise the payloads map
    over the persistent fork pool with chunksize 1; results come back
    in submission order regardless of completion order, so scheduling
    cannot reorder the merge.

    ``reuse_pool=False`` forks a fresh pool for this one dispatch and
    ``wire=False`` ships pickled telemetry object graphs instead of
    wire tuples — together they reproduce the pre-persistent-pool
    executor, kept only as the measured baseline in
    ``benchmarks/bench_parallel_campaign.py``.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    if workers <= 1 or len(payloads) == 1:
        saved_registry = telemetry.get_registry()
        saved_tracer = telemetry.get_tracer()
        try:
            return [_run_isolated(worker, payload) for payload in payloads]
        finally:
            telemetry.install(saved_registry, saved_tracer)
    if reuse_pool:
        wrapper = _IsolatedWorker(worker, wire=wire)
        pool = get_worker_pool(workers)
        return pool.map(wrapper, payloads, chunksize=1)
    # Legacy executor: a throwaway pool for this one dispatch whose
    # children rebuild their worlds per task (the historical cost
    # model — worker-side caches postdate it).
    wrapper = _IsolatedWorker(worker, wire=wire, clear_caches=True)
    context = multiprocessing.get_context("fork")
    pool_size = min(int(workers), len(payloads))
    with context.Pool(processes=pool_size) as pool:
        return pool.map(wrapper, payloads, chunksize=1)


def merge_outcomes(outcomes: Sequence[ShardOutcome],
                   registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None) -> List[object]:
    """Fold shard fragments into the caller's telemetry, in shard order.

    Gauge fragments are stamped with their shard index first, so the
    gauge "last write" is defined by shard order rather than merge-call
    order. Shard root spans are adopted under the caller's active span
    with a ``shard`` attribute. Fragments arriving as compact wire
    tuples are decoded first; the decode path reconstructs the exact
    registry/span state the object-graph path would merge, so the two
    transports are byte-identical (pinned by
    ``tests/test_parallel_wire.py``). Returns the shard values, ordered
    by shard index.
    """
    registry = registry if registry is not None else telemetry.get_registry()
    tracer = tracer if tracer is not None else telemetry.get_tracer()
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    values: List[object] = []
    for outcome in ordered:
        fragment = outcome.registry
        if fragment is None and outcome.registry_wire is not None:
            fragment = MetricsRegistry.from_wire(outcome.registry_wire)
        spans = outcome.spans
        if not spans and outcome.spans_wire:
            spans = [Span.from_wire(wire_span)
                     for wire_span in outcome.spans_wire]
        if fragment is not None:
            fragment.stamp_origin(outcome.shard_index)
            registry.merge(fragment)
        for span in spans:
            span.attrs.setdefault("shard", str(outcome.shard_index))
            tracer.attach(span)
        values.append(outcome.value)
    return values
