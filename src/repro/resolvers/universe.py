"""The authoritative DNS universe of the simulated Internet.

Holds every zone that exists in the world — popular public domains, the
measurement platform's own probe domain, and DoH resolver bootstrap
names — and answers recursive resolvers' upstream lookups with a
distance-flavoured latency cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import Rcode, RRType
from repro.dnswire.records import ResourceRecord
from repro.dnswire.zone import Zone
from repro.errors import ScenarioError


@dataclass
class AuthoritativeLog:
    """Query log of one zone's nameservers.

    The paper verifies reachability/interception "from our authoritative
    server"; this log is what that verification reads.
    """

    entries: List[Tuple[float, DnsName, str]] = field(default_factory=list)

    def record(self, timestamp: float, qname: DnsName,
               via_resolver: str) -> None:
        self.entries.append((timestamp, qname, via_resolver))

    def queries_for(self, qname: DnsName) -> List[Tuple[float, str]]:
        return [(ts, via) for ts, name, via in self.entries if name == qname]

    def __len__(self) -> int:
        return len(self.entries)


class DnsUniverse:
    """All authoritative data plus upstream-latency modelling."""

    def __init__(self, upstream_base_ms: float = 22.0,
                 upstream_sigma: float = 0.5):
        self._zones: Dict[DnsName, Zone] = {}
        self._logs: Dict[DnsName, AuthoritativeLog] = {}
        #: Parameters of the log-normal upstream-resolution cost a
        #: recursive resolver pays on a cache miss.
        self.upstream_base_ms = upstream_base_ms
        self.upstream_sigma = upstream_sigma

    # -- zone management ------------------------------------------------------

    def add_zone(self, zone: Zone, logged: bool = False) -> Zone:
        if zone.origin in self._zones:
            raise ScenarioError(
                f"zone {zone.origin.to_text()} already registered")
        self._zones[zone.origin] = zone
        if logged:
            self._logs[zone.origin] = AuthoritativeLog()
        return zone

    def zone_for(self, qname: DnsName) -> Optional[Zone]:
        """Longest-suffix zone match (the delegation walk, flattened)."""
        candidate = qname
        while True:
            zone = self._zones.get(candidate)
            if zone is not None:
                return zone
            if candidate.is_root():
                return None
            candidate = candidate.parent()

    def release_logs(self) -> int:
        """Drop every accumulated authoritative query-log entry.

        The logs exist so interception studies can check "did this
        query reach our server" *within* one study; no rendered
        artefact reads them across rounds. A longitudinal campaign
        would otherwise grow them by every probe of every round, so
        the per-round cache release empties them. Returns the number
        of entries dropped.
        """
        released = 0
        for log in self._logs.values():
            released += len(log.entries)
            log.entries.clear()
        return released

    def log_for(self, origin: DnsName) -> AuthoritativeLog:
        log = self._logs.get(origin)
        if log is None:
            raise ScenarioError(
                f"zone {origin.to_text()} has no authoritative log")
        return log

    # -- convenience builders ---------------------------------------------------

    def host_a(self, hostname: str, *addresses: str, ttl: int = 300) -> None:
        """Register A records, creating the SLD zone when needed.

        Idempotent: an (name, address) pair already present is skipped,
        so scenario worlds rebuilt from a cached scenario (the persistent
        worker pool rebuilds networks per round) never accumulate
        duplicate records — the universe state stays a function of the
        config, not of how many builds this process has done.
        """
        name = DnsName.from_text(hostname)
        sld = name.second_level_domain()
        zone = self._zones.get(sld)
        if zone is None:
            zone = Zone(sld, ResourceRecord.soa(
                sld, sld.child("ns1"), sld.child("hostmaster"), serial=1))
            self._zones[sld] = zone
        existing = {record.rdata.to_text()
                    for record in zone.lookup(name, RRType.A).records
                    if record.rrtype == RRType.A}
        for address in addresses:
            if address not in existing:
                zone.add(ResourceRecord.a(name, address, ttl))
                existing.add(address)

    def resolve_public(self, hostname: str) -> Tuple[str, ...]:
        """Ground-truth A lookup used for DoH bootstrap resolution."""
        name = DnsName.from_text(hostname)
        zone = self.zone_for(name)
        if zone is None:
            return ()
        result = zone.lookup(name, RRType.A)
        return tuple(record.rdata.to_text() for record in result.records
                     if record.rrtype == RRType.A)

    # -- recursive resolution --------------------------------------------------

    def authoritative_lookup(
            self, qname: DnsName, qtype: int, timestamp: float,
            via_resolver: str) -> Tuple[int, Tuple[ResourceRecord, ...]]:
        """One upstream lookup, recorded in the zone log when enabled."""
        zone = self.zone_for(qname)
        if zone is None:
            return Rcode.NXDOMAIN, ()
        log = self._logs.get(zone.origin)
        if log is not None:
            log.record(timestamp, qname, via_resolver)
        result = zone.lookup(qname, qtype)
        return result.rcode, result.records

    def upstream_latency_ms(self, rng) -> float:
        """Cost of walking the delegation chain on a cache miss."""
        return self.upstream_base_ms * rng.lognormal(0.0, self.upstream_sigma)

    def zone_count(self) -> int:
        return len(self._zones)
