"""Resolver stack: caches, resolution backends and service frontends.

A resolver host in the simulation is assembled from three layers:

* a :class:`~repro.resolvers.universe.DnsUniverse` holding the world's
  authoritative zones (the paper's own probe domain lives here too),
* a :class:`~repro.resolvers.backends.ResolverBackend` implementing the
  resolution policy (recursive with cache, fixed-answer rewriting,
  flaky forwarding, ...),
* protocol frontends (:mod:`repro.resolvers.frontends`) exposing the
  backend over Do53/UDP, Do53/TCP, DoT and DoH as netsim services.
"""

from repro.resolvers.cache import CacheStats, DnsCache
from repro.resolvers.universe import DnsUniverse
from repro.resolvers.backends import (
    FixedAnswerBackend,
    FlakyForwardingBackend,
    RecursiveBackend,
    ResolutionContext,
    ResolverBackend,
    SpoofingBackend,
)
from repro.resolvers.stub import StubAnswer, StubResolver, UpstreamConfig
from repro.resolvers.frontends import (
    Do53TcpService,
    Do53UdpService,
    DohService,
    DotService,
    WebpageService,
    install_resolver_frontends,
)

__all__ = [
    "DnsCache",
    "CacheStats",
    "DnsUniverse",
    "ResolverBackend",
    "ResolutionContext",
    "RecursiveBackend",
    "FixedAnswerBackend",
    "FlakyForwardingBackend",
    "SpoofingBackend",
    "Do53UdpService",
    "Do53TcpService",
    "DotService",
    "DohService",
    "WebpageService",
    "install_resolver_frontends",
    "StubResolver",
    "StubAnswer",
    "UpstreamConfig",
]
