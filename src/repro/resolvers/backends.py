"""Resolution backends: the policy layer behind every resolver frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnswire.builder import make_response, rewrite_answers, servfail
from repro.dnswire.message import Message
from repro.dnswire.rdtypes import Rcode
from repro.errors import ScenarioError
from repro.netsim.rand import SeededRng
from repro.resolvers.cache import DnsCache
from repro.resolvers.universe import DnsUniverse


@dataclass
class ResolutionContext:
    """What a backend knows about the incoming query."""

    client_address: str
    resolver_address: str
    timestamp: float
    transport: str = "udp"
    client_country: Optional[str] = None
    encrypted: bool = False
    intercepted_by: Optional[str] = None


@dataclass
class Resolution:
    """Backend output: the response plus server-side latency incurred."""

    response: Message
    extra_ms: float = 0.0


class ResolverBackend:
    """Interface: turn a query message into a resolution."""

    def resolve(self, query: Message, ctx: ResolutionContext) -> Resolution:
        raise NotImplementedError


class RecursiveBackend(ResolverBackend):
    """A caching recursive resolver over the :class:`DnsUniverse`."""

    def __init__(self, universe: DnsUniverse, rng: SeededRng,
                 cache: Optional[DnsCache] = None,
                 resolver_label: str = "resolver"):
        self.universe = universe
        self.rng = rng
        self.cache = cache if cache is not None else DnsCache()
        self.resolver_label = resolver_label
        self.queries_served = 0

    def resolve(self, query: Message, ctx: ResolutionContext) -> Resolution:
        self.queries_served += 1
        question = query.question
        if question is None:
            return Resolution(servfail(query))
        cached = self.cache.get(question.name, question.rrtype, ctx.timestamp)
        if cached is not None:
            records, rcode = cached
            response = make_response(query, answers=records, rcode=rcode)
            return Resolution(response, extra_ms=0.05)
        rcode, records = self.universe.authoritative_lookup(
            question.name, question.rrtype, ctx.timestamp,
            via_resolver=ctx.resolver_address)
        self.cache.put(question.name, question.rrtype, records, rcode,
                       ctx.timestamp)
        response = make_response(query, answers=records, rcode=rcode)
        return Resolution(response,
                          extra_ms=self.universe.upstream_latency_ms(self.rng))


class FixedAnswerBackend(ResolverBackend):
    """Rewrites every A answer to a fixed address for non-subscribers.

    Models the dnsfilter.com resolvers of Section 3.2, which "constantly
    resolve arbitrary domain queries to a fixed IP address, because we do
    not subscribe to their service".
    """

    def __init__(self, inner: ResolverBackend, fixed_address: str,
                 subscribers: Tuple[str, ...] = ()):
        self.inner = inner
        self.fixed_address = fixed_address
        self.subscribers = set(subscribers)

    def resolve(self, query: Message, ctx: ResolutionContext) -> Resolution:
        resolution = self.inner.resolve(query, ctx)
        if ctx.client_address in self.subscribers:
            return resolution
        question = query.question
        if question is None:
            return resolution
        if resolution.response.rcode() != Rcode.NOERROR or not resolution.response.answers:
            # Even NXDOMAIN gets the fixed answer: arbitrary names resolve.
            from repro.dnswire.records import ResourceRecord
            forced = make_response(query, answers=(
                ResourceRecord.a(question.name, self.fixed_address),))
            return Resolution(forced, resolution.extra_ms)
        return Resolution(
            rewrite_answers(resolution.response, self.fixed_address),
            resolution.extra_ms)


class FlakyForwardingBackend(ResolverBackend):
    """A frontend that forwards to an internal Do53 hop with a short timeout.

    Models the Quad9 DoH misconfiguration (Finding 2.4): "Quad9 forwards
    all DoH queries to its own DNS/UDP on port 53, and sets a 2-second
    timeout waiting for responses", which SERVFAILs ~13% of lookups when
    nameservers are slow.
    """

    def __init__(self, inner: ResolverBackend, rng: SeededRng,
                 forward_timeout_ms: float = 2000.0,
                 slow_upstream_probability: float = 0.13,
                 regional_probabilities: Optional[dict] = None):
        if not 0.0 <= slow_upstream_probability <= 1.0:
            raise ScenarioError("probability must be within [0, 1]")
        self.inner = inner
        self.rng = rng
        self.forward_timeout_ms = forward_timeout_ms
        self.slow_upstream_probability = slow_upstream_probability
        #: Per-region overrides keyed by geo region code ("AP", "EU", ...);
        #: the Quad9 forwarding issue hit some serving regions far harder
        #: than others (13% globally vs ~0.15% from China).
        self.regional_probabilities = dict(regional_probabilities or {})
        self.timeouts_hit = 0

    def _probability_for(self, ctx: ResolutionContext) -> float:
        if ctx.client_country and self.regional_probabilities:
            from repro.netsim.geo import COUNTRIES
            entry = COUNTRIES.get(ctx.client_country)
            if entry is not None and entry.region in self.regional_probabilities:
                return self.regional_probabilities[entry.region]
        return self.slow_upstream_probability

    def resolve(self, query: Message, ctx: ResolutionContext) -> Resolution:
        if self.rng.chance(self._probability_for(ctx)):
            # The internal forward missed the deadline; the frontend gives
            # up and reports SERVFAIL after waiting out its timeout.
            self.timeouts_hit += 1
            return Resolution(servfail(query),
                              extra_ms=self.forward_timeout_ms)
        return self.inner.resolve(query, ctx)


class SpoofingBackend(ResolverBackend):
    """Answers every query with a configured address (rogue resolver)."""

    def __init__(self, spoof_address: str):
        self.spoof_address = spoof_address

    def resolve(self, query: Message, ctx: ResolutionContext) -> Resolution:
        question = query.question
        if question is None:
            return Resolution(servfail(query))
        from repro.dnswire.records import ResourceRecord
        response = make_response(query, answers=(
            ResourceRecord.a(question.name, self.spoof_address, ttl=60),))
        return Resolution(response, extra_ms=0.1)
