"""A TTL-honouring, size-bounded DNS cache."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.records import ResourceRecord
from repro.telemetry import BoundCounter, BoundCounterFamily

# Bound once at import; each cache operation is a single inc() on the
# live metric instead of a get_registry() + string/dict lookup.
_HIT = BoundCounter("resolver.cache.hit")
_MISS = BoundCounter("resolver.cache.miss")
_EVICTION = BoundCounter("resolver.cache.eviction")
_EXPIRATION = BoundCounter("resolver.cache.expiration")
#: Capacity-driven removals only (the overflow path of ``put``), split
#: by what was removed: ``reason=expired`` counts dead entries purged
#: under pressure, ``reason=lru`` live entries sacrificed to make room.
#: A warming cache shows only expirations; a thrashing one shows lru.
_PRESSURE = BoundCounterFamily("resolver.cache.pressure", "reason")


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for cache-behaviour tests and ablations.

    Sharded runs discard the per-shard :class:`DnsCache` objects and keep
    only merged telemetry, so these stats can also be reconstructed from
    a (merged) registry via :meth:`from_registry` — the hit ratio then
    reflects every shard's traffic, not just the surviving cache object.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    #: Capacity-pressure removals (subset of evictions/expirations).
    pressure_lru: int = 0
    pressure_expired: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge_from(self, other: "CacheStats") -> "CacheStats":
        """Fold another cache's stats in (plain sums, like counters)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.expirations += other.expirations
        self.pressure_lru += other.pressure_lru
        self.pressure_expired += other.pressure_expired
        return self

    @classmethod
    def from_registry(cls, registry) -> "CacheStats":
        """Rebuild stats from ``resolver.cache.*`` counters.

        Works on any :class:`~repro.telemetry.MetricsRegistry`, including
        one assembled by ``MetricsRegistry.merge`` from shard fragments —
        the path sharded serving runs use to report correct hit ratios.
        """
        return cls(
            hits=int(registry.value("resolver.cache.hit")),
            misses=int(registry.value("resolver.cache.miss")),
            evictions=int(registry.value("resolver.cache.eviction")),
            expirations=int(registry.value("resolver.cache.expiration")),
            pressure_lru=int(registry.value("resolver.cache.pressure",
                                            reason="lru")),
            pressure_expired=int(registry.value("resolver.cache.pressure",
                                                reason="expired")),
        )


@dataclass(frozen=True)
class _Entry:
    records: Tuple[ResourceRecord, ...]
    rcode: int
    expires_at: float


class DnsCache:
    """LRU cache keyed by ``(qname, qtype)`` with TTL expiry.

    Negative answers (NXDOMAIN) are cached too, with a configurable
    negative TTL, matching resolver behaviour the usage study depends on
    ("due to DNS cache, we may underestimate the query volume").
    """

    def __init__(self, max_entries: int = 100_000,
                 negative_ttl: float = 300.0):
        self.max_entries = max_entries
        self.negative_ttl = negative_ttl
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[DnsName, int], _Entry]" = (
            OrderedDict())

    def get(self, qname: DnsName, qtype: int,
            now: float) -> Optional[Tuple[Tuple[ResourceRecord, ...], int]]:
        """Return ``(records, rcode)`` on a live hit, else None."""
        key = (qname, qtype)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            _MISS.inc()
            return None
        if now >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            _EXPIRATION.inc()
            _MISS.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        _HIT.inc()
        return entry.records, entry.rcode

    def put(self, qname: DnsName, qtype: int, records: Tuple[ResourceRecord, ...],
            rcode: int, now: float) -> None:
        if self.max_entries <= 0:
            return
        if records:
            ttl = min(record.ttl for record in records)
        else:
            ttl = self.negative_ttl
        if ttl <= 0:
            return
        key = (qname, qtype)
        self._entries[key] = _Entry(tuple(records), rcode, now + ttl)
        self._entries.move_to_end(key)
        if len(self._entries) <= self.max_entries:
            return
        # Over capacity: drop already-expired entries first — they were
        # dead weight, not victims — and attribute them to expirations.
        # Only if the cache is genuinely full of live entries does the
        # LRU eviction path run.
        expired = [k for k, e in self._entries.items()
                   if now >= e.expires_at]
        for stale_key in expired:
            if len(self._entries) <= self.max_entries:
                break
            del self._entries[stale_key]
            self.stats.expirations += 1
            self.stats.pressure_expired += 1
            _EXPIRATION.inc()
            _PRESSURE.get("expired").inc()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.stats.pressure_lru += 1
            _EVICTION.inc()
            _PRESSURE.get("lru").inc()

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
