"""A client-side stub resolver with configurable DoE transport fallback.

Implements the usage-profile semantics of RFC 8310 at the stub level:
a transport preference list is tried in order, and under the
Opportunistic profile the stub may fall back all the way to clear-text
DNS — the behaviour the comparative study grades under "provides
fallback mechanism". Under the Strict profile no clear-text fallback is
allowed and authentication failures are fatal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.retry import TRANSIENT_KINDS, RetryPolicy
from repro.dnswire.builder import make_query
from repro.dnswire.message import Message
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.doe.do53 import Do53Client
from repro.doe.doh import DohClient, DohMethod
from repro.doe.dot import DotClient, PrivacyProfile
from repro.doe.result import QueryResult
from repro.errors import ScenarioError
from repro.httpsim.uri import UriTemplate
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.tlssim.certs import CaStore


@dataclass
class UpstreamConfig:
    """One configured upstream resolver."""

    do53_ip: Optional[str] = None
    dot_ip: Optional[str] = None
    doh_template: Optional[str] = None
    auth_name: Optional[str] = None


@dataclass
class StubAnswer:
    """The stub's final answer plus the transport trail it walked."""

    result: QueryResult
    transport_trail: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def fell_back_to_cleartext(self) -> bool:
        return self.result.transport.startswith("do53") and any(
            transport in ("dot", "doh") for transport in
            self.transport_trail[:-1])


class StubResolver:
    """A DoE-capable stub with ordered transport fallback."""

    def __init__(self, network: Network, env: ClientEnvironment,
                 rng: SeededRng, ca_store: CaStore,
                 upstream: UpstreamConfig,
                 profile: PrivacyProfile = PrivacyProfile.OPPORTUNISTIC,
                 transports: Sequence[str] = ("dot", "doh", "do53"),
                 bootstrap=None,
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.env = env
        self.rng = rng
        self.profile = profile
        self.upstream = upstream
        self.transports = tuple(transports)
        #: Per-transport retry behaviour; ``None`` keeps the historical
        #: single attempt per transport before falling through the
        #: preference list.
        self.retry_policy = retry_policy
        self._dot = DotClient(network, rng.fork("dot"), ca_store,
                              profile=profile,
                              auth_name=upstream.auth_name)
        self._do53 = Do53Client(network, rng.fork("do53"))
        self._doh = (DohClient(network, rng.fork("doh"), ca_store,
                               bootstrap=bootstrap, method=DohMethod.POST)
                     if bootstrap is not None else None)
        self._validate_config()

    def _validate_config(self) -> None:
        for transport in self.transports:
            if transport not in ("dot", "doh", "do53"):
                raise ScenarioError(f"unknown transport {transport!r}")
        if "doh" in self.transports and (self.upstream.doh_template is None
                                         or self._doh is None):
            raise ScenarioError("doh transport requires a template and "
                                "a bootstrap function")

    def effective_transports(self) -> Tuple[str, ...]:
        """Strict profile never falls back to clear text (RFC 8310)."""
        if self.profile is PrivacyProfile.STRICT:
            return tuple(transport for transport in self.transports
                         if transport != "do53")
        return self.transports

    def resolve(self, name: DnsName, rrtype: int = RRType.A,
                reuse: bool = True) -> StubAnswer:
        """Resolve a name, walking the transport preference order."""
        trail: List[str] = []
        last_result: Optional[QueryResult] = None
        for transport in self.effective_transports():
            trail.append(transport)
            query = make_query(name, rrtype,
                               msg_id=self.rng.randint(1, 0xFFFF))
            result = self._query_via(transport, query, reuse)
            last_result = result
            if result.ok:
                return StubAnswer(result, tuple(trail))
        if last_result is None:
            raise ScenarioError("stub resolver has no usable transports")
        return StubAnswer(last_result, tuple(trail))

    def _query_via(self, transport: str, query: Message,
                   reuse: bool) -> QueryResult:
        if self.retry_policy is not None:
            return self.retry_policy.run_query(
                lambda: self._query_once(transport, query, reuse),
                rng=self.rng.fork(f"retry-{transport}"),
                op=f"stub.{transport}", retry_on=TRANSIENT_KINDS)
        return self._query_once(transport, query, reuse)

    def _query_once(self, transport: str, query: Message,
                    reuse: bool) -> QueryResult:
        if transport == "dot":
            if self.upstream.dot_ip is None:
                return QueryResult.failed("dot", "unconfigured", 0.0,
                                          failure=None,
                                          error="no DoT upstream")
            return self._dot.query(self.env, self.upstream.dot_ip, query,
                                   reuse=reuse)
        if transport == "doh":
            assert self._doh is not None
            return self._doh.query(
                self.env, UriTemplate(self.upstream.doh_template), query,
                reuse=reuse)
        if self.upstream.do53_ip is None:
            return QueryResult.failed("do53-tcp", "unconfigured", 0.0,
                                      failure=None,
                                      error="no clear-text upstream")
        return self._do53.query_tcp(self.env, self.upstream.do53_ip,
                                    query, reuse=reuse)

    def close(self) -> None:
        self._dot.close_all()
        self._do53.close_all()
        if self._doh is not None:
            self._doh.close_all()
