"""Protocol frontends exposing a resolver backend as netsim services.

Each frontend decodes its transport's encapsulation (UDP datagrams,
TCP 2-octet framing, DoT framing inside TLS, DoH GET/POST), hands the
wire-format DNS query to the backend, and re-encapsulates the response.

Latency note: the simulation is synchronous, one request at a time per
service, so a frontend stashes the backend's server-side cost from
``handle`` and reports it from ``extra_latency_ms`` — the hook the
transport layer calls right after the handler.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import json as _json

from repro.dnswire.edns import KeepaliveOption
from repro.dnswire.message import Message
from repro.doe.framing import (
    DOH_MEDIA_TYPE,
    b64url_decode,
    b64url_encode,
    frame_tcp_message,
    unframe_tcp_message,
)
from repro.doe.framing import DOH_JSON_MEDIA_TYPE
from repro.errors import WireFormatError
from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.netsim.host import Host, Service, ServiceContext, TlsConfig
from repro.netsim.rand import SeededRng
from repro.resolvers.backends import ResolutionContext, ResolverBackend


def _resolution_context(ctx: ServiceContext) -> ResolutionContext:
    return ResolutionContext(
        client_address=ctx.client_address,
        resolver_address=ctx.server_address,
        timestamp=ctx.timestamp,
        transport=ctx.protocol,
        client_country=ctx.client_country,
        encrypted=ctx.encrypted,
        intercepted_by=ctx.intercepted_by,
    )


class _BackendService(Service):
    """Shared plumbing: backend dispatch plus latency stashing."""

    def __init__(self, backend: ResolverBackend,
                 base_overhead_ms: float = 0.0,
                 overhead_sigma_ms: float = 0.0,
                 keepalive_timeout_s: Optional[float] = None):
        self.backend = backend
        self.base_overhead_ms = base_overhead_ms
        self.overhead_sigma_ms = overhead_sigma_ms
        #: RFC 7828 idle timeout advertised on stream transports; None
        #: disables the option.
        self.keepalive_timeout_s = keepalive_timeout_s
        self._pending_extra_ms = 0.0
        self.queries_handled = 0

    def _resolve(self, query: Message, ctx: ServiceContext) -> Message:
        resolution = self.backend.resolve(query, _resolution_context(ctx))
        self._pending_extra_ms = resolution.extra_ms
        self.queries_handled += 1
        response = resolution.response
        if (self.keepalive_timeout_s is not None
                and ctx.protocol == "tcp" and response.opt is not None):
            response = replace(response, opt=response.opt.with_option(
                KeepaliveOption.make(self.keepalive_timeout_s)))
        return response

    def extra_latency_ms(self, rng: SeededRng,
                         ctx: Optional[ServiceContext] = None) -> float:
        extra = self._pending_extra_ms
        self._pending_extra_ms = 0.0
        if self.base_overhead_ms > 0.0:
            extra += rng.clipped_gauss(
                self.base_overhead_ms, self.overhead_sigma_ms,
                low=self.base_overhead_ms * 0.2)
        return extra


class Do53UdpService(_BackendService):
    """Clear-text DNS over UDP (port 53)."""

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        query = Message.decode(payload)
        return self._resolve(query, ctx).encode()


class Do53TcpService(_BackendService):
    """Clear-text DNS over TCP with RFC 1035 framing (port 53)."""

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        query = Message.decode(unframe_tcp_message(payload))
        return frame_tcp_message(self._resolve(query, ctx).encode())


class DotService(_BackendService):
    """DNS-over-TLS (RFC 7858): TCP framing inside TLS on port 853.

    ``base_overhead_ms`` models the per-query server-side cost of the
    encrypted frontend relative to the clear-text path — the quantity the
    paper's performance test measures as "several milliseconds" under
    connection reuse.
    """

    def __init__(self, backend: ResolverBackend, tls: TlsConfig,
                 base_overhead_ms: float = 4.5,
                 overhead_sigma_ms: float = 2.0,
                 keepalive_timeout_s: Optional[float] = 30.0):
        super().__init__(backend, base_overhead_ms, overhead_sigma_ms,
                         keepalive_timeout_s=keepalive_timeout_s)
        self.tls = tls

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        query = Message.decode(unframe_tcp_message(payload))
        return frame_tcp_message(self._resolve(query, ctx).encode())


class DohService(_BackendService):
    """DNS-over-HTTPS (RFC 8484) on port 443.

    Accepts GET requests with a base64url ``dns`` parameter and POST
    requests with an ``application/dns-message`` body, on the configured
    template path. Other paths serve the provider webpage (useful for
    the diagnosis step that fetches resolver front pages).
    """

    #: Largest POST body accepted; a DNS message cannot legitimately
    #: exceed the 16-bit wire length, so anything bigger is junk the
    #: serving loop must reject (413) rather than decode.
    MAX_POST_BYTES = 65_535

    def __init__(self, backend: ResolverBackend, tls: TlsConfig,
                 path: str = "/dns-query",
                 base_overhead_ms: float = 5.0,
                 overhead_sigma_ms: float = 2.0,
                 webpage_html: Optional[str] = None,
                 supports_get: bool = True,
                 supports_post: bool = True,
                 supports_json: bool = False,
                 max_post_bytes: Optional[int] = None):
        super().__init__(backend, base_overhead_ms, overhead_sigma_ms)
        self.tls = tls
        self.path = path
        self.webpage_html = webpage_html
        self.supports_get = supports_get
        self.supports_post = supports_post
        #: Also answer Google-style JSON API queries (?name=&type=).
        self.supports_json = supports_json
        self.max_post_bytes = (self.MAX_POST_BYTES if max_post_bytes is None
                               else max_post_bytes)

    def handle(self, payload: HttpRequest, ctx: ServiceContext) -> HttpResponse:
        if not isinstance(payload, HttpRequest):
            return HttpResponse.error(400, "expected an HTTP request")
        if payload.path.rstrip("/") != self.path.rstrip("/"):
            if self.webpage_html is not None and payload.method == "GET":
                return HttpResponse.ok(self.webpage_html.encode(),
                                       content_type="text/html")
            return HttpResponse.error(404)
        if (self.supports_json and payload.method == "GET"
                and payload.query_param("name") is not None):
            return self._handle_json(payload, ctx)
        try:
            wire = self._extract_query(payload)
        except _DohRequestError as exc:
            return HttpResponse.error(exc.status, str(exc))
        try:
            query = Message.decode(wire)
        except WireFormatError as exc:
            return HttpResponse.error(400, f"bad DNS message: {exc}")
        response = self._resolve(query, ctx)
        return HttpResponse.ok(response.encode(),
                               content_type=DOH_MEDIA_TYPE,
                               headers={"Cache-Control": "max-age=0"})

    def _handle_json(self, request: HttpRequest,
                     ctx: ServiceContext) -> HttpResponse:
        """The Google-style JSON API: ``GET /resolve?name=...&type=A``."""
        from repro.dnswire.builder import make_query as _make_query
        from repro.dnswire.names import DnsName
        from repro.dnswire.rdtypes import RRType
        from repro.errors import NameError_

        name_text = request.query_param("name") or ""
        type_text = request.query_param("type") or "A"
        try:
            qname = DnsName.from_text(name_text)
        except (NameError_, UnicodeEncodeError):
            return HttpResponse.error(400, "bad name parameter")
        try:
            rrtype = (int(type_text) if type_text.isdigit()
                      else int(RRType[type_text.upper()]))
        except (KeyError, ValueError):
            return HttpResponse.error(400, "bad type parameter")
        response = self._resolve(_make_query(qname, rrtype), ctx)
        body = {
            "Status": response.rcode(),
            "TC": response.header.flags.tc,
            "RD": response.header.flags.rd,
            "RA": response.header.flags.ra,
            "Question": [{"name": qname.to_text(), "type": rrtype}],
            "Answer": [
                {"name": record.name.to_text(), "type": int(record.rrtype),
                 "TTL": record.ttl, "data": record.rdata.to_text()}
                for record in response.answers
            ],
        }
        return HttpResponse.ok(_json.dumps(body).encode(),
                               content_type=DOH_JSON_MEDIA_TYPE)

    def _extract_query(self, request: HttpRequest) -> bytes:
        if request.method == "GET":
            if not self.supports_get:
                raise _DohRequestError(405, "GET not supported")
            encoded = request.query_param("dns")
            if encoded is None:
                raise _DohRequestError(400, "missing dns parameter")
            try:
                return b64url_decode(encoded)
            except Exception as exc:
                raise _DohRequestError(400, "bad dns parameter") from exc
        if request.method == "POST":
            if not self.supports_post:
                raise _DohRequestError(405, "POST not supported")
            if request.header("content-type") != DOH_MEDIA_TYPE:
                raise _DohRequestError(415, "wrong content type")
            if len(request.body) > self.max_post_bytes:
                raise _DohRequestError(
                    413, f"body of {len(request.body)} octets exceeds "
                         f"{self.max_post_bytes}")
            return request.body
        raise _DohRequestError(405, f"method {request.method} not allowed")


class _DohRequestError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class WebpageService(Service):
    """A plain web front page (port 80, or 443 behind TLS)."""

    def __init__(self, html: str, tls: Optional[TlsConfig] = None):
        self.html = html
        self.tls = tls

    def handle(self, payload: HttpRequest, ctx: ServiceContext) -> HttpResponse:
        if not isinstance(payload, HttpRequest):
            return HttpResponse.error(400, "expected an HTTP request")
        if payload.method != "GET":
            return HttpResponse.error(405)
        return HttpResponse.ok(self.html.encode(), content_type="text/html")


def install_resolver_frontends(
        host: Host, backend: ResolverBackend, tls: Optional[TlsConfig],
        protocols: tuple = ("do53-udp", "do53-tcp", "dot", "doh"),
        doh_path: str = "/dns-query",
        doh_backend: Optional[ResolverBackend] = None,
        webpage_html: Optional[str] = None,
        do53_keepalive_s: Optional[float] = None) -> Host:
    """Bind the requested protocol frontends onto a host.

    ``doh_backend`` lets the DoH frontend run a different policy than the
    other frontends — exactly the Quad9 situation, where only the DoH
    path went through the flaky internal forwarder. ``do53_keepalive_s``
    turns on RFC 7828 keepalive advertisements on the clear-text TCP
    frontend (the serving world uses it to drive pool lifetimes); the
    default None preserves the historical bare-TCP responses.
    """
    if "do53-udp" in protocols:
        host.bind("udp", 53, Do53UdpService(backend))
    if "do53-tcp" in protocols:
        host.bind("tcp", 53, Do53TcpService(
            backend, keepalive_timeout_s=do53_keepalive_s))
    if "dot" in protocols:
        if tls is None:
            raise WireFormatError("DoT frontend requires a TLS config")
        host.bind("tcp", 853, DotService(backend, tls))
    if "doh" in protocols:
        if tls is None:
            raise WireFormatError("DoH frontend requires a TLS config")
        host.bind("tcp", 443, DohService(
            doh_backend or backend, tls, path=doh_path,
            webpage_html=webpage_html))
    if webpage_html is not None:
        host.bind("tcp", 80, WebpageService(webpage_html))
        host.webpage = webpage_html
    return host
