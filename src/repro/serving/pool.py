"""Per-client, per-protocol connection reuse for the serving loop.

Each client environment owns one protocol client (DoT, DoH, Do53) with
its own forked rng stream, so a client's wire behaviour is keyed by its
label, never by arrival order. On top of the protocol clients' own
session pools, the pool tracks the server's edns-tcp-keepalive
advertisement per ``(client, protocol)`` and *consults it before every
reuse*: a lease idle past the advertised window is torn down first, so
the query below re-handshakes exactly as a real stub would find the
server had hung up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dnswire.builder import make_query
from repro.dnswire.edns import KeepaliveOption
from repro.dnswire.names import DnsName
from repro.doe.do53 import Do53Client
from repro.doe.doh import DohClient, DohMethod
from repro.doe.dot import DotClient
from repro.doe.result import QueryResult
from repro.errors import ScenarioError
from repro.netsim.rand import SeededRng
from repro.telemetry import BoundCounterFamily

_REUSED = BoundCounterFamily("serving.pool.reused", "protocol")
_HANDSHAKES = BoundCounterFamily("serving.pool.handshakes", "protocol")
_EXPIRED = BoundCounterFamily("serving.pool.expired", "protocol")

#: Stream protocols whose responses may carry an RFC 7828 window.
_STREAM = ("do53-tcp", "dot", "doh")


@dataclass
class _Lease:
    """One client's live transport for one protocol."""

    client: object
    #: Sim-time instant after which the server has hung up; None means
    #: no keepalive was advertised (the lease never idles out here —
    #: the protocol client's own lifetime rules still apply).
    idle_deadline: Optional[float] = None


class ConnectionReusePool:
    """Keepalive-honouring transport leases for a client population."""

    def __init__(self, world, rng: SeededRng,
                 default_idle_s: Optional[float] = None):
        self.world = world
        self.rng = rng
        #: Fallback idle window for protocols that cannot advertise one
        #: in-band (DoH has no edns-tcp-keepalive equivalent here).
        self.default_idle_s = default_idle_s
        self._leases: Dict[Tuple[int, str], _Lease] = {}
        self.reused = 0
        self.handshakes = 0
        self.expired = 0

    # -- lease management ---------------------------------------------------

    def _make_client(self, index: int, protocol: str):
        env = self.world.envs[index]
        fork = self.rng.fork(f"client/{env.label}/{protocol}")
        if protocol == "dot":
            return DotClient(self.world.network, fork, self.world.ca_store,
                             auth_name=None)
        if protocol == "doh":
            return DohClient(self.world.network, fork, self.world.ca_store,
                             bootstrap=self.world.bootstrap,
                             method=DohMethod.POST)
        if protocol in ("do53", "do53-tcp"):
            return Do53Client(self.world.network, fork)
        raise ScenarioError(f"unknown serving protocol {protocol!r}")

    def _lease(self, index: int, protocol: str, now: float) -> _Lease:
        key = (index, protocol)
        lease = self._leases.get(key)
        if lease is None:
            lease = _Lease(self._make_client(index, protocol))
            self._leases[key] = lease
        elif lease.idle_deadline is not None and now > lease.idle_deadline:
            # The advertised keepalive window lapsed while this client
            # was quiet: drop the sessions so the next query below pays
            # a fresh handshake instead of writing into a dead socket.
            lease.client.close_all()
            lease.idle_deadline = None
            self.expired += 1
            _EXPIRED.get(protocol).inc()
        return lease

    # -- queries ------------------------------------------------------------

    def query(self, index: int, protocol: str, qname: DnsName,
              rrtype: int) -> QueryResult:
        """One query for client ``index`` over ``protocol``."""
        env = self.world.envs[index]
        now = self.world.network.clock.now()
        lease = self._lease(index, protocol, now)
        message = make_query(qname, rrtype,
                             msg_id=self.rng.randint(1, 0xFFFF))
        client = lease.client
        if protocol == "dot":
            result = client.query(env, self.world.resolver_ip, message)
        elif protocol == "doh":
            result = client.query(env, self.world.doh_template, message)
        elif protocol == "do53-tcp":
            result = client.query_tcp(env, self.world.resolver_ip, message)
        else:
            result = client.query_udp(env, self.world.resolver_ip, message)
        self._account(lease, protocol, result, now)
        return result

    def _account(self, lease: _Lease, protocol: str,
                 result: QueryResult, now: float) -> None:
        if result.reused_connection:
            self.reused += 1
            _REUSED.get(protocol).inc()
        else:
            self.handshakes += 1
            _HANDSHAKES.get(protocol).inc()
        if protocol not in _STREAM:
            return  # single datagrams: nothing to keep alive
        timeout = None
        if result.ok and result.response is not None \
                and result.response.opt is not None:
            timeout = KeepaliveOption.timeout_from(result.response.opt)
        if timeout is None:
            timeout = self.default_idle_s
        lease.idle_deadline = None if timeout is None else now + timeout

    def close_all(self) -> None:
        for lease in self._leases.values():
            lease.client.close_all()
        self._leases.clear()
