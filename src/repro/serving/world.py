"""The self-contained world a serving run executes in.

One resolver host exposing every frontend (Do53 UDP/TCP with RFC 7828
keepalive, DoT, DoH), an authoritative universe holding the workload's
name ranks, and a population of client environments spread over several
countries. Deliberately independent of the heavyweight measurement
scenario: a serving world builds in milliseconds, so benchmarks can
rebuild one per protocol run.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.httpsim.uri import UriTemplate
from repro.netsim.clock import SimClock, parse_date
from repro.netsim.geo import country
from repro.netsim.host import Host, TlsConfig
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.resolvers import (
    DnsCache,
    DnsUniverse,
    RecursiveBackend,
    install_resolver_frontends,
)
from repro.tlssim.certs import CaStore, CertificateAuthority, make_chain

RESOLVER_IP = "9.9.9.10"
RESOLVER_NAME = "dns.serving.test"
DOH_TEMPLATE = f"https://{RESOLVER_NAME}/dns-query"
START_DATE = "2019-03-01"


@dataclass
class ServingWorldConfig:
    """Shape of the serving world, independent of the workload."""

    seed: int = 2019
    clients: int = 8
    names: int = 512
    #: Resolver cache capacity; size it below ``names`` to watch LRU
    #: pressure, above to watch pure TTL churn.
    cache_entries: int = 4096
    #: TTL of workload names — the knob driving cache churn under load.
    name_ttl_s: int = 120
    #: RFC 7828 window advertised on every stream frontend.
    keepalive_s: Optional[float] = 30.0
    countries: Tuple[str, ...] = ("US", "DE", "JP", "BR",
                                  "IN", "GB", "SG", "ZA")
    #: Bound on the materialised client-environment LRU; environments
    #: outside it are re-derived on touch (field-identical), so a
    #: 10^5+-client population costs memory proportional to this bound.
    client_lru_size: int = 4096


class ClientPopulation(Sequence):
    """The serving world's clients as a procedural stream.

    Indexing derives the environment on demand from its per-index rng
    fork — the same recipe the historical eager loop ran — and keeps a
    bounded LRU of recently-touched environments. Derivation is pure,
    so ``population[i]`` is field-for-field identical no matter when,
    how often, or in what order clients are touched.
    """

    def __init__(self, config: ServingWorldConfig, rng: SeededRng):
        self._config = config
        self._rng = rng
        self._cache: "OrderedDict[int, ClientEnvironment]" = OrderedDict()
        self._cache_size = max(1, config.client_lru_size)
        self.cache_peak = 0

    def __len__(self) -> int:
        return self._config.clients

    def _derive(self, index: int) -> ClientEnvironment:
        config = self._config
        code = config.countries[index % len(config.countries)]
        return ClientEnvironment.in_country(
            f"serve-client-{index:04d}",
            f"10.77.{index // 200}.{index % 200 + 1}",
            code, self._rng.fork(f"client-env/{index}"))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[position]
                    for position in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"client index {index} out of range")
        env = self._cache.get(index)
        if env is not None:
            self._cache.move_to_end(index)
            return env
        env = self._derive(index)
        self._cache[index] = env
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        if len(self._cache) > self.cache_peak:
            self.cache_peak = len(self._cache)
        return env


@dataclass
class ServingWorld:
    """Everything a :class:`~repro.serving.engine.ServingEngine` needs."""

    config: ServingWorldConfig
    network: Network
    universe: DnsUniverse
    cache: DnsCache
    backend: RecursiveBackend
    ca_store: CaStore
    envs: Sequence[ClientEnvironment]
    resolver_ip: str = RESOLVER_IP
    doh_template: UriTemplate = field(
        default_factory=lambda: UriTemplate(DOH_TEMPLATE))

    @property
    def seed(self) -> int:
        return self.config.seed

    def bootstrap(self, hostname: str) -> Tuple[str, ...]:
        """DoH bootstrap resolution against the world's ground truth."""
        return self.universe.resolve_public(hostname)

    @classmethod
    def build(cls, config: Optional[ServingWorldConfig] = None,
              **overrides) -> "ServingWorld":
        config = config or ServingWorldConfig(**overrides)
        rng = SeededRng(config.seed, "serving/world")
        network = Network(clock=SimClock(parse_date(START_DATE)))
        universe = DnsUniverse()
        # The workload's name universe: rank i lives at a derived
        # address so answers are self-describing in tests.
        for index in range(config.names):
            universe.host_a(
                f"name-{index:05d}.workload.test",
                f"198.18.{index // 250}.{index % 250 + 1}",
                ttl=config.name_ttl_s)
        universe.host_a(RESOLVER_NAME, RESOLVER_IP)

        ca = CertificateAuthority.root("Serving Root CA")
        ca_store = CaStore()
        ca_store.trust(ca)
        chain = make_chain(ca, RESOLVER_NAME, "2018-06-01", "2020-06-01",
                           san=(RESOLVER_NAME,))
        cache = DnsCache(max_entries=config.cache_entries)
        backend = RecursiveBackend(universe, rng.fork("backend"),
                                   cache=cache,
                                   resolver_label="serving-resolver")
        entry = country("US")
        host = Host(address=RESOLVER_IP, country_code="US",
                    point=entry.point,
                    pops=(entry.point, country("DE").point,
                          country("SG").point, country("JP").point))
        install_resolver_frontends(
            host, backend, TlsConfig(cert_chain=chain),
            do53_keepalive_s=config.keepalive_s,
            webpage_html="<title>serving resolver</title>")
        dot = host.service_on("tcp", 853)
        if dot is not None:
            dot.keepalive_timeout_s = config.keepalive_s
        network.add_host(host)

        envs = ClientPopulation(config, rng)
        return cls(config=config, network=network, universe=universe,
                   cache=cache, backend=backend, ca_store=ca_store,
                   envs=envs)
