"""DNSgauge-style scoring of a serving run.

The exemplar tool scores a resolver per protocol on three axes —
*does it answer* (success rate), *how fast at the tail* (p95/p99, not
the mean), and *how steadily* (latency jitter) — and runs separate
cold and warm passes so a fresh-handshake penalty is visible instead of
averaged away. The scorecard here mirrors that shape over a
:class:`~repro.serving.engine.ServingReport`.

Scorecards are deterministic artifacts: every number derives from sim
time and seeded draws, the JSON encoding sorts its keys, and floats are
rounded at fixed precision — so two same-seed runs serialize to
byte-identical documents (the benchmark's reproducibility gate).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.textfmt import format_percent, render_table
from repro.serving.engine import ProtocolStats, ServingReport

SCORECARD_SCHEMA_VERSION = 1

#: Latency anchor: a protocol at or below this p99 takes no tail
#: penalty; the penalty grows log-scale above it. 250 ms is roughly the
#: paper's worst observed DoH medians from well-connected vantages.
_TAIL_ANCHOR_MS = 250.0
#: Jitter anchor, same idea, against the latency stddev.
_JITTER_ANCHOR_MS = 100.0


@dataclass(frozen=True)
class ProtocolScore:
    """One protocol's row in a scorecard."""

    protocol: str
    offered: int
    served: int
    ok: int
    shed: int
    success_rate: float
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    p99_ms: Optional[float]
    p999_ms: Optional[float]
    jitter_ms: float
    cold_p50_ms: Optional[float]
    warm_p50_ms: Optional[float]
    warm_cold_delta_ms: float
    failures: Dict[str, int]
    score: float


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 3)


def score_protocol(stats: ProtocolStats) -> ProtocolScore:
    """Collapse one protocol's stats into its scored row.

    The score is ``success × tail × steadiness``, each factor in
    [0, 1]: success is the raw answer rate (shed queries count against
    it — a shed query is an answer the client never got), the tail
    factor decays log-scale once p99 passes the anchor, and steadiness
    does the same against jitter. 100 means "answered everything,
    quickly, consistently".
    """
    import math

    demand = stats.served + stats.shed
    success = stats.ok / demand if demand else 0.0
    p99 = stats.latency.quantile(0.99)
    tail = 1.0
    if p99 is not None and p99 > _TAIL_ANCHOR_MS:
        tail = 1.0 / (1.0 + math.log2(p99 / _TAIL_ANCHOR_MS))
    steadiness = 1.0
    if stats.jitter_ms > _JITTER_ANCHOR_MS:
        steadiness = 1.0 / (1.0 + math.log2(stats.jitter_ms
                                            / _JITTER_ANCHOR_MS))
    return ProtocolScore(
        protocol=stats.protocol,
        offered=stats.offered,
        served=stats.served,
        ok=stats.ok,
        shed=stats.shed,
        success_rate=round(success, 6),
        p50_ms=_round(stats.latency.quantile(0.50)),
        p95_ms=_round(stats.latency.quantile(0.95)),
        p99_ms=_round(p99),
        p999_ms=_round(stats.latency.quantile(0.999)),
        jitter_ms=round(stats.jitter_ms, 3),
        cold_p50_ms=_round(stats.cold.quantile(0.50)),
        warm_p50_ms=_round(stats.warm.quantile(0.50)),
        warm_cold_delta_ms=round(stats.warm_cold_delta_ms, 3),
        failures=dict(sorted(stats.failures.items())),
        score=round(100.0 * success * tail * steadiness, 2),
    )


@dataclass
class ResolverScorecard:
    """The full scored outcome of one serving run."""

    seed: int
    duration_s: float
    offered: int
    served: int
    shed: int
    qps_sim: float
    queue_peak: int
    pool_reused: int
    pool_handshakes: int
    pool_expired: int
    cache: Dict[str, int] = field(default_factory=dict)
    protocols: List[ProtocolScore] = field(default_factory=list)

    @classmethod
    def from_report(cls, report: ServingReport,
                    seed: int) -> "ResolverScorecard":
        return cls(
            seed=seed,
            duration_s=round(report.duration_s, 3),
            offered=report.offered,
            served=report.served,
            shed=report.shed,
            qps_sim=round(report.qps_sim, 3),
            queue_peak=report.queue_peak,
            pool_reused=report.pool_reused,
            pool_handshakes=report.pool_handshakes,
            pool_expired=report.pool_expired,
            cache=dict(sorted(vars(report.cache).items())),
            protocols=[score_protocol(report.protocols[name])
                       for name in sorted(report.protocols)],
        )

    def by_protocol(self) -> Dict[str, ProtocolScore]:
        return {entry.protocol: entry for entry in self.protocols}

    def as_dict(self) -> dict:
        document = asdict(self)
        document["schema_version"] = SCORECARD_SCHEMA_VERSION
        return document

    def to_json_bytes(self) -> bytes:
        """Canonical encoding — the byte-identity reproducibility gate."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2,
                          separators=(",", ": ")).encode() + b"\n"

    def to_table(self) -> str:
        rows: List[Tuple] = []
        for entry in self.protocols:
            rows.append((
                entry.protocol,
                entry.served,
                entry.shed,
                format_percent(entry.success_rate),
                _fmt(entry.p50_ms),
                _fmt(entry.p95_ms),
                _fmt(entry.p99_ms),
                _fmt(entry.p999_ms),
                f"{entry.jitter_ms:.1f}",
                _fmt(entry.warm_cold_delta_ms),
                f"{entry.score:.1f}",
            ))
        return render_table(
            ("protocol", "served", "shed", "success", "p50", "p95",
             "p99", "p99.9", "jitter", "cold-warm", "score"),
            rows,
            title=(f"serving scorecard — seed={self.seed} "
                   f"qps_sim={self.qps_sim:.1f} "
                   f"queue_peak={self.queue_peak}"))


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"
