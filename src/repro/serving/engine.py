"""The serving loop: batched query streams through the full stack.

The engine pulls per-second event batches from a
:class:`~repro.serving.workload.WorkloadGenerator`, advances the sim
clock tick by tick, and pushes every admitted query through the wire
codec → frontend → cache → backend path via the connection-reuse pool.

Concurrency is modelled with virtual workers: ``concurrency`` slots
each busy until their current query's simulated completion instant. An
arrival that finds all slots busy waits in a bounded queue; when the
queue is full the query is **shed** — counted, never stalled — which is
the admission-control behaviour that keeps an overload run terminating
instead of building unbounded latency. Recorded latency is queue wait
plus service time, so scorecards price queueing honestly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import (
    ParallelConfig,
    Shard,
    ShardOutcome,
    merge_outcomes,
)
from repro.netsim.rand import SeededRng
from repro.resolvers.cache import CacheStats
from repro.serving.pool import ConnectionReusePool
from repro.serving.workload import WorkloadGenerator, WorkloadSpec
from repro.serving.world import ServingWorld, ServingWorldConfig
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundGauge,
    BoundHistogram,
    BoundHistogramFamily,
    Histogram,
)

_BATCHES = BoundCounter("serving.batches")
_OFFERED = BoundCounterFamily("serving.queries_offered", "protocol")
_SERVED = BoundCounterFamily("serving.queries_served", "protocol")
_SHED = BoundCounterFamily("serving.shed", "protocol")
_FAILURES = BoundCounterFamily("serving.failures", "protocol", "kind")
_LATENCY = BoundHistogramFamily("serving.latency_ms", "protocol")
_WAIT = BoundHistogram("serving.queue_wait_ms")
_QUEUE_PEAK = BoundGauge("serving.queue_depth_peak")


@dataclass
class ServingConfig:
    """Engine capacity and admission-control knobs."""

    #: Virtual in-flight slots: how many queries the loop services
    #: concurrently in simulated time.
    concurrency: int = 32
    #: Waiting-room bound; an arrival beyond this is shed, not queued.
    max_queue: int = 256
    #: Fallback idle lifetime for leases without an in-band keepalive.
    default_idle_s: Optional[float] = 30.0


class ProtocolStats:
    """Everything observed for one protocol during a run."""

    def __init__(self, protocol: str):
        self.protocol = protocol
        self.offered = 0
        self.served = 0
        self.ok = 0
        self.shed = 0
        self.failures: Dict[str, int] = {}
        #: Local (non-registry) histograms so reports stay valid even
        #: when several engines share the process registry.
        self.latency = Histogram(f"serving.{protocol}.latency_ms")
        #: Cold = the query paid a fresh connection/TLS handshake;
        #: warm = it rode an established session (DNSgauge's warm pass).
        self.cold = Histogram(f"serving.{protocol}.cold_ms")
        self.warm = Histogram(f"serving.{protocol}.warm_ms")
        self._sum = 0.0
        self._sumsq = 0.0

    def record(self, latency_ms: float, ok: bool, warm: bool,
               failure: Optional[str]) -> None:
        self.served += 1
        self.latency.observe(latency_ms)
        (self.warm if warm else self.cold).observe(latency_ms)
        self._sum += latency_ms
        self._sumsq += latency_ms * latency_ms
        if ok:
            self.ok += 1
        elif failure:
            self.failures[failure] = self.failures.get(failure, 0) + 1

    @property
    def success_rate(self) -> float:
        return self.ok / self.served if self.served else 0.0

    @property
    def jitter_ms(self) -> float:
        """Population standard deviation of latency (DNSgauge 'stability')."""
        if self.served == 0:
            return 0.0
        mean = self._sum / self.served
        variance = self._sumsq / self.served - mean * mean
        return max(0.0, variance) ** 0.5

    @property
    def warm_cold_delta_ms(self) -> float:
        """Cold-minus-warm median: what a fresh handshake costs."""
        cold = self.cold.quantile(0.5)
        warm = self.warm.quantile(0.5)
        if cold is None or warm is None:
            return 0.0
        return cold - warm

    # -- shard merge & wire codec ------------------------------------------

    def merge_from(self, other: "ProtocolStats") -> "ProtocolStats":
        """Registry-algebra fold: counts add, histograms add bucket-wise.

        The merged stats are exactly what a single engine observing both
        event streams would have recorded, which is what lets sharded
        serving runs score through the unchanged scorecard."""
        self.offered += other.offered
        self.served += other.served
        self.ok += other.ok
        self.shed += other.shed
        for kind, count in other.failures.items():
            self.failures[kind] = self.failures.get(kind, 0) + count
        self.latency.merge_from(other.latency)
        self.cold.merge_from(other.cold)
        self.warm.merge_from(other.warm)
        self._sum += other._sum
        self._sumsq += other._sumsq
        return self

    def to_wire(self) -> tuple:
        return (self.protocol, self.offered, self.served, self.ok,
                self.shed, tuple(sorted(self.failures.items())),
                self.latency.to_wire_payload(),
                self.cold.to_wire_payload(),
                self.warm.to_wire_payload(),
                self._sum, self._sumsq)

    @classmethod
    def from_wire(cls, wire: tuple) -> "ProtocolStats":
        (protocol, offered, served, ok, shed, failures,
         latency, cold, warm, total, sumsq) = wire
        stats = cls(protocol)
        stats.offered = offered
        stats.served = served
        stats.ok = ok
        stats.shed = shed
        stats.failures = dict(failures)
        stats.latency.load_wire_payload(latency)
        stats.cold.load_wire_payload(cold)
        stats.warm.load_wire_payload(warm)
        stats._sum = total
        stats._sumsq = sumsq
        return stats


@dataclass
class ServingReport:
    """The outcome of one serving run."""

    spec: WorkloadSpec
    protocols: Dict[str, ProtocolStats]
    duration_s: float
    batches: int
    queue_peak: int
    cache: CacheStats = field(default_factory=CacheStats)
    pool_reused: int = 0
    pool_handshakes: int = 0
    pool_expired: int = 0

    @property
    def offered(self) -> int:
        return sum(stats.offered for stats in self.protocols.values())

    @property
    def served(self) -> int:
        return sum(stats.served for stats in self.protocols.values())

    @property
    def shed(self) -> int:
        return sum(stats.shed for stats in self.protocols.values())

    @property
    def qps_sim(self) -> float:
        """Served throughput against the simulated wall."""
        return self.served / self.duration_s if self.duration_s else 0.0


class ServingEngine:
    """Drives one serving run over a :class:`ServingWorld`."""

    def __init__(self, world: ServingWorld,
                 config: Optional[ServingConfig] = None):
        self.world = world
        self.config = config or ServingConfig()
        if self.config.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.config.max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.rng = SeededRng(world.seed, "serving/engine")
        self.pool = ConnectionReusePool(
            world, self.rng.fork("pool"),
            default_idle_s=self.config.default_idle_s)

    def run(self, spec: WorkloadSpec,
            client_range: Optional[Tuple[int, int]] = None) -> ServingReport:
        """Serve the workload; ``client_range=(lo, hi)`` serves only the
        events of clients ``lo <= client < hi``.

        The generator always produces the *full* deterministic event
        stream — one arrivals rng drives every shard — and the range
        filters it, so the union of disjoint ranges is exactly the
        unfiltered stream: sharded serving partitions work without
        perturbing which client issues which query when.
        """
        generator = WorkloadGenerator(spec, self.rng.fork("workload"))
        clock = self.world.network.clock
        start = clock.now()
        stats: Dict[str, ProtocolStats] = {
            protocol: ProtocolStats(protocol)
            for protocol in sorted(spec.protocol_mix)}
        #: Completion instants of the busy virtual workers (sim s).
        workers: List[float] = [start] * self.config.concurrency
        heapq.heapify(workers)
        #: Start instants of admitted-but-waiting queries.
        waiting: List[float] = []
        queue_peak = 0
        batches = 0
        for tick, events in generator.batches():
            clock.set_to(start + tick)
            batches += 1
            _BATCHES.inc()
            for event in events:
                if (client_range is not None
                        and not (client_range[0] <= event.client
                                 < client_range[1])):
                    continue
                arrival = start + event.at_s
                per_protocol = stats[event.protocol]
                per_protocol.offered += 1
                _OFFERED.get(event.protocol).inc()
                while waiting and waiting[0] <= arrival:
                    heapq.heappop(waiting)
                if len(waiting) >= self.config.max_queue:
                    # Admission control: shed instead of queueing
                    # without bound — the overload counter the
                    # benchmark's overload leg asserts on.
                    per_protocol.shed += 1
                    _SHED.get(event.protocol).inc()
                    continue
                free_at = heapq.heappop(workers)
                begin = max(arrival, free_at)
                wait_ms = (begin - arrival) * 1000.0
                result = self.pool.query(event.client, event.protocol,
                                         event.qname, event.rrtype)
                service_ms = max(result.latency_ms, 0.01)
                heapq.heappush(workers, begin + service_ms / 1000.0)
                if begin > arrival:
                    heapq.heappush(waiting, begin)
                    queue_peak = max(queue_peak, len(waiting))
                total_ms = wait_ms + service_ms
                warm = result.reused_connection
                failure = (result.failure.value
                           if result.failure is not None else None)
                per_protocol.record(total_ms, result.ok, warm, failure)
                _SERVED.get(event.protocol).inc()
                _LATENCY.get(event.protocol).observe(total_ms)
                _WAIT.observe(wait_ms)
                if not result.ok:
                    _FAILURES.get(event.protocol,
                                  failure or "unknown").inc()
        clock.set_to(start + spec.duration_s)
        _QUEUE_PEAK.set(queue_peak)
        return ServingReport(
            spec=spec,
            protocols=stats,
            duration_s=spec.duration_s,
            batches=batches,
            queue_peak=queue_peak,
            cache=CacheStats(**vars(self.world.cache.stats)),
            pool_reused=self.pool.reused,
            pool_handshakes=self.pool.handshakes,
            pool_expired=self.pool.expired,
        )

    def close(self) -> None:
        self.pool.close_all()


# -- sharded serving ---------------------------------------------------------
#
# A serving run shards over *client ranges*: every shard builds its own
# (cheap, deterministic) world, generates the full workload stream, and
# serves only its clients' events with a proportional slice of the
# engine capacity. Shard reports come back as flat wire tuples and fold
# together with the same algebra the telemetry merge uses, so the merged
# report — and the scorecard built from it — depends only on
# (seed, shard plan), never on the worker count.


@dataclass(frozen=True)
class _ServingTask:
    """One client-range slice of a serving run (all picklable)."""

    world_config: ServingWorldConfig
    spec: WorkloadSpec
    config: ServingConfig
    shard: Shard


def shard_serving_config(config: ServingConfig,
                         shard_total: int) -> ServingConfig:
    """Divide the engine capacity across shards (each at least 1).

    Splitting concurrency/queue keeps the *aggregate* capacity of an
    N-shard run comparable to the single-engine run, so admission
    control sheds at roughly the same offered load.
    """
    shard_total = max(1, int(shard_total))
    return ServingConfig(
        concurrency=max(1, config.concurrency // shard_total),
        max_queue=max(1, config.max_queue // shard_total),
        default_idle_s=config.default_idle_s)


def report_to_wire(report: ServingReport) -> tuple:
    """Flat picklable form of a report (the spec never travels — the
    parent already holds it)."""
    return (
        tuple(stats.to_wire()
              for _, stats in sorted(report.protocols.items())),
        report.duration_s,
        report.batches,
        report.queue_peak,
        tuple(sorted(vars(report.cache).items())),
        report.pool_reused,
        report.pool_handshakes,
        report.pool_expired,
    )


def report_from_wire(spec: WorkloadSpec, wire: tuple) -> ServingReport:
    (protocols, duration_s, batches, queue_peak, cache,
     pool_reused, pool_handshakes, pool_expired) = wire
    stats = {}
    for row in protocols:
        decoded = ProtocolStats.from_wire(row)
        stats[decoded.protocol] = decoded
    return ServingReport(
        spec=spec, protocols=stats, duration_s=duration_s,
        batches=batches, queue_peak=queue_peak,
        cache=CacheStats(**dict(cache)),
        pool_reused=pool_reused, pool_handshakes=pool_handshakes,
        pool_expired=pool_expired)


def merge_reports(spec: WorkloadSpec,
                  fragments: List[ServingReport]) -> ServingReport:
    """Fold shard reports into one, in shard order.

    Counts and histograms add (the registry algebra); ``queue_peak``
    takes the max across shards (each shard ran its own queue);
    ``batches`` agrees across shards by construction (every shard
    consumed the same tick stream), so max is a plain pass-through.
    """
    if not fragments:
        raise ValueError("cannot merge zero serving reports")
    merged = ServingReport(
        spec=spec,
        protocols={},
        duration_s=fragments[0].duration_s,
        batches=max(fragment.batches for fragment in fragments),
        queue_peak=max(fragment.queue_peak for fragment in fragments),
    )
    for fragment in fragments:
        for protocol, stats in sorted(fragment.protocols.items()):
            mine = merged.protocols.get(protocol)
            if mine is None:
                merged.protocols[protocol] = ProtocolStats.from_wire(
                    stats.to_wire())
            else:
                mine.merge_from(stats)
        merged.cache.merge_from(fragment.cache)
        merged.pool_reused += fragment.pool_reused
        merged.pool_handshakes += fragment.pool_handshakes
        merged.pool_expired += fragment.pool_expired
    return merged


def _serving_shard(task: _ServingTask) -> ShardOutcome:
    world = ServingWorld.build(task.world_config)
    engine = ServingEngine(world, config=task.config)
    try:
        report = engine.run(task.spec,
                            client_range=(task.shard.start,
                                          task.shard.stop))
    finally:
        engine.close()
    return ShardOutcome(task.shard.index, report_to_wire(report))


def run_sharded(world_config: ServingWorldConfig, spec: WorkloadSpec,
                config: ServingConfig,
                parallel: ParallelConfig) -> ServingReport:
    """One serving run fanned out over client-range shards."""
    plan = parallel.plan(spec.clients)
    per_shard = shard_serving_config(config, len(plan))
    tasks = [_ServingTask(world_config, spec, per_shard, shard)
             for shard in plan]
    wires = merge_outcomes(
        parallel.dispatch(_serving_shard, tasks, spec.clients))
    return merge_reports(spec, [report_from_wire(spec, wire)
                                for wire in wires])
