"""The serving loop: batched query streams through the full stack.

The engine pulls per-second event batches from a
:class:`~repro.serving.workload.WorkloadGenerator`, advances the sim
clock tick by tick, and pushes every admitted query through the wire
codec → frontend → cache → backend path via the connection-reuse pool.

Concurrency is modelled with virtual workers: ``concurrency`` slots
each busy until their current query's simulated completion instant. An
arrival that finds all slots busy waits in a bounded queue; when the
queue is full the query is **shed** — counted, never stalled — which is
the admission-control behaviour that keeps an overload run terminating
instead of building unbounded latency. Recorded latency is queue wait
plus service time, so scorecards price queueing honestly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netsim.rand import SeededRng
from repro.resolvers.cache import CacheStats
from repro.serving.pool import ConnectionReusePool
from repro.serving.workload import WorkloadGenerator, WorkloadSpec
from repro.serving.world import ServingWorld
from repro.telemetry import (
    BoundCounter,
    BoundCounterFamily,
    BoundGauge,
    BoundHistogram,
    BoundHistogramFamily,
    Histogram,
)

_BATCHES = BoundCounter("serving.batches")
_OFFERED = BoundCounterFamily("serving.queries_offered", "protocol")
_SERVED = BoundCounterFamily("serving.queries_served", "protocol")
_SHED = BoundCounterFamily("serving.shed", "protocol")
_FAILURES = BoundCounterFamily("serving.failures", "protocol", "kind")
_LATENCY = BoundHistogramFamily("serving.latency_ms", "protocol")
_WAIT = BoundHistogram("serving.queue_wait_ms")
_QUEUE_PEAK = BoundGauge("serving.queue_depth_peak")


@dataclass
class ServingConfig:
    """Engine capacity and admission-control knobs."""

    #: Virtual in-flight slots: how many queries the loop services
    #: concurrently in simulated time.
    concurrency: int = 32
    #: Waiting-room bound; an arrival beyond this is shed, not queued.
    max_queue: int = 256
    #: Fallback idle lifetime for leases without an in-band keepalive.
    default_idle_s: Optional[float] = 30.0


class ProtocolStats:
    """Everything observed for one protocol during a run."""

    def __init__(self, protocol: str):
        self.protocol = protocol
        self.offered = 0
        self.served = 0
        self.ok = 0
        self.shed = 0
        self.failures: Dict[str, int] = {}
        #: Local (non-registry) histograms so reports stay valid even
        #: when several engines share the process registry.
        self.latency = Histogram(f"serving.{protocol}.latency_ms")
        #: Cold = the query paid a fresh connection/TLS handshake;
        #: warm = it rode an established session (DNSgauge's warm pass).
        self.cold = Histogram(f"serving.{protocol}.cold_ms")
        self.warm = Histogram(f"serving.{protocol}.warm_ms")
        self._sum = 0.0
        self._sumsq = 0.0

    def record(self, latency_ms: float, ok: bool, warm: bool,
               failure: Optional[str]) -> None:
        self.served += 1
        self.latency.observe(latency_ms)
        (self.warm if warm else self.cold).observe(latency_ms)
        self._sum += latency_ms
        self._sumsq += latency_ms * latency_ms
        if ok:
            self.ok += 1
        elif failure:
            self.failures[failure] = self.failures.get(failure, 0) + 1

    @property
    def success_rate(self) -> float:
        return self.ok / self.served if self.served else 0.0

    @property
    def jitter_ms(self) -> float:
        """Population standard deviation of latency (DNSgauge 'stability')."""
        if self.served == 0:
            return 0.0
        mean = self._sum / self.served
        variance = self._sumsq / self.served - mean * mean
        return max(0.0, variance) ** 0.5

    @property
    def warm_cold_delta_ms(self) -> float:
        """Cold-minus-warm median: what a fresh handshake costs."""
        cold = self.cold.quantile(0.5)
        warm = self.warm.quantile(0.5)
        if cold is None or warm is None:
            return 0.0
        return cold - warm


@dataclass
class ServingReport:
    """The outcome of one serving run."""

    spec: WorkloadSpec
    protocols: Dict[str, ProtocolStats]
    duration_s: float
    batches: int
    queue_peak: int
    cache: CacheStats = field(default_factory=CacheStats)
    pool_reused: int = 0
    pool_handshakes: int = 0
    pool_expired: int = 0

    @property
    def offered(self) -> int:
        return sum(stats.offered for stats in self.protocols.values())

    @property
    def served(self) -> int:
        return sum(stats.served for stats in self.protocols.values())

    @property
    def shed(self) -> int:
        return sum(stats.shed for stats in self.protocols.values())

    @property
    def qps_sim(self) -> float:
        """Served throughput against the simulated wall."""
        return self.served / self.duration_s if self.duration_s else 0.0


class ServingEngine:
    """Drives one serving run over a :class:`ServingWorld`."""

    def __init__(self, world: ServingWorld,
                 config: Optional[ServingConfig] = None):
        self.world = world
        self.config = config or ServingConfig()
        if self.config.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.config.max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.rng = SeededRng(world.seed, "serving/engine")
        self.pool = ConnectionReusePool(
            world, self.rng.fork("pool"),
            default_idle_s=self.config.default_idle_s)

    def run(self, spec: WorkloadSpec) -> ServingReport:
        generator = WorkloadGenerator(spec, self.rng.fork("workload"))
        clock = self.world.network.clock
        start = clock.now()
        stats: Dict[str, ProtocolStats] = {
            protocol: ProtocolStats(protocol)
            for protocol in sorted(spec.protocol_mix)}
        #: Completion instants of the busy virtual workers (sim s).
        workers: List[float] = [start] * self.config.concurrency
        heapq.heapify(workers)
        #: Start instants of admitted-but-waiting queries.
        waiting: List[float] = []
        queue_peak = 0
        batches = 0
        for tick, events in generator.batches():
            clock.set_to(start + tick)
            batches += 1
            _BATCHES.inc()
            for event in events:
                arrival = start + event.at_s
                per_protocol = stats[event.protocol]
                per_protocol.offered += 1
                _OFFERED.get(event.protocol).inc()
                while waiting and waiting[0] <= arrival:
                    heapq.heappop(waiting)
                if len(waiting) >= self.config.max_queue:
                    # Admission control: shed instead of queueing
                    # without bound — the overload counter the
                    # benchmark's overload leg asserts on.
                    per_protocol.shed += 1
                    _SHED.get(event.protocol).inc()
                    continue
                free_at = heapq.heappop(workers)
                begin = max(arrival, free_at)
                wait_ms = (begin - arrival) * 1000.0
                result = self.pool.query(event.client, event.protocol,
                                         event.qname, event.rrtype)
                service_ms = max(result.latency_ms, 0.01)
                heapq.heappush(workers, begin + service_ms / 1000.0)
                if begin > arrival:
                    heapq.heappush(waiting, begin)
                    queue_peak = max(queue_peak, len(waiting))
                total_ms = wait_ms + service_ms
                warm = result.reused_connection
                failure = (result.failure.value
                           if result.failure is not None else None)
                per_protocol.record(total_ms, result.ok, warm, failure)
                _SERVED.get(event.protocol).inc()
                _LATENCY.get(event.protocol).observe(total_ms)
                _WAIT.observe(wait_ms)
                if not result.ok:
                    _FAILURES.get(event.protocol,
                                  failure or "unknown").inc()
        clock.set_to(start + spec.duration_s)
        _QUEUE_PEAK.set(queue_peak)
        return ServingReport(
            spec=spec,
            protocols=stats,
            duration_s=spec.duration_s,
            batches=batches,
            queue_peak=queue_peak,
            cache=CacheStats(**vars(self.world.cache.stats)),
            pool_reused=self.pool.reused,
            pool_handshakes=self.pool.handshakes,
            pool_expired=self.pool.expired,
        )

    def close(self) -> None:
        self.pool.close_all()
