"""repro.serving — resolver-as-a-service on the simulated stack.

The serving subsystem turns the resolver frontends into a load-bearing
service: a seeded workload generator (Zipf name popularity, per-client
protocol mix, linear qps ramps), a keepalive-honouring connection-reuse
pool, a serving engine with batching and bounded-queue admission
control, and a DNSgauge-style scorer. ``repro serve`` runs one scored
workload; ``repro bench-serving`` produces ``BENCH_SERVING.json``.

Determinism contract: all latency and ordering derives from the sim
clock and forked seeded rng streams, so two runs with the same seed
produce byte-identical scorecards. Wall-clock throughput appears only
in benchmark documents, never inside a scorecard.
"""

from repro.serving.bench import (
    BENCH_PROTOCOLS,
    BenchConfig,
    run_serving_bench,
    validate_document,
)
from repro.serving.engine import (
    ProtocolStats,
    ServingConfig,
    ServingEngine,
    ServingReport,
    run_sharded,
)
from repro.serving.pool import ConnectionReusePool
from repro.serving.scorer import (
    ProtocolScore,
    ResolverScorecard,
    score_protocol,
)
from repro.serving.workload import (
    SERVING_PROTOCOLS,
    QueryEvent,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfSampler,
    assign_protocols,
)
from repro.serving.world import ServingWorld, ServingWorldConfig

__all__ = [
    "BENCH_PROTOCOLS",
    "BenchConfig",
    "ConnectionReusePool",
    "ProtocolScore",
    "ProtocolStats",
    "QueryEvent",
    "ResolverScorecard",
    "SERVING_PROTOCOLS",
    "ServingConfig",
    "ServingEngine",
    "ServingReport",
    "ServingWorld",
    "ServingWorldConfig",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfSampler",
    "assign_protocols",
    "run_serving_bench",
    "run_sharded",
    "score_protocol",
    "validate_document",
]
