"""The serving benchmark: sustained per-protocol legs + overload + repro.

Three kinds of evidence go into ``BENCH_SERVING.json``:

* **Throughput legs** — one single-protocol run each for Do53, DoT and
  DoH, sized to push 10k+ queries through the full client → wire codec
  → frontend → cache → backend path, reporting wall-clock qps alongside
  the sim-time latency tail (p50/p95/p99/p99.9).
* **Overload leg** — a deliberately under-provisioned engine driven far
  past capacity; the run must *complete* with shed-query counters
  instead of stalling, which is the admission-control contract.
* **Reproducibility check** — two identical seeded runs whose
  scorecards must serialize to byte-identical JSON.
* **Sharded leg** — the same workload run through the client-range
  sharded path (``repro.serving.engine.run_sharded``) at two worker
  counts; the merged scorecards must be byte-identical to each other,
  proving the worker count is pure scheduling for serving too.

Wall-clock numbers live only in this document, never in scorecards, so
the scorecard byte-identity gate survives machine-speed variance.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.errors import ScenarioError
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.scorer import ResolverScorecard
from repro.serving.workload import WorkloadSpec
from repro.serving.world import ServingWorld, ServingWorldConfig

BENCH_SCHEMA_VERSION = 1

#: The protocol legs the acceptance gate requires.
BENCH_PROTOCOLS = ("do53", "dot", "doh")


@dataclass
class BenchConfig:
    """Knobs for one full benchmark run."""

    seed: int = 2019
    queries_per_protocol: int = 10_000
    #: Flat offered rate per leg; duration is derived from it.
    qps: float = 500.0
    clients: int = 64
    names: int = 2_048
    concurrency: int = 256
    max_queue: int = 1_024
    #: Overload leg: a tiny engine driven at ``qps`` for this long.
    overload_duration_s: float = 5.0
    overload_concurrency: int = 4
    overload_max_queue: int = 16
    #: Reproducibility check size (two runs of this many queries).
    repro_queries: int = 1_500

    def validate(self) -> "BenchConfig":
        if self.queries_per_protocol <= 0:
            raise ScenarioError("queries_per_protocol must be positive")
        if self.qps <= 0:
            raise ScenarioError("qps must be positive")
        return self


def _build_engine(config: BenchConfig,
                  engine_config: ServingConfig) -> ServingEngine:
    world = ServingWorld.build(ServingWorldConfig(
        seed=config.seed, clients=config.clients, names=config.names))
    return ServingEngine(world, engine_config)


def run_protocol_leg(config: BenchConfig, protocol: str) -> dict:
    """One sustained single-protocol leg; returns its JSON fragment."""
    telemetry.reset_registry()
    engine = _build_engine(config, ServingConfig(
        concurrency=config.concurrency, max_queue=config.max_queue))
    duration = max(1.0, round(config.queries_per_protocol / config.qps))
    spec = WorkloadSpec(
        duration_s=duration, qps_start=config.qps,
        clients=config.clients, names=config.names,
        protocol_mix={protocol: 1.0})
    start = time.perf_counter()
    report = engine.run(spec)
    wall_s = time.perf_counter() - start
    engine.close()
    card = ResolverScorecard.from_report(report, seed=config.seed)
    row = card.by_protocol()[protocol]
    return {
        "protocol": protocol,
        "offered": row.offered,
        "served": row.served,
        "ok": row.ok,
        "shed": row.shed,
        "success_rate": row.success_rate,
        "wall_s": round(wall_s, 3),
        "qps_wall": round(row.served / wall_s, 1) if wall_s else 0.0,
        "qps_sim": card.qps_sim,
        "p50_ms": row.p50_ms,
        "p95_ms": row.p95_ms,
        "p99_ms": row.p99_ms,
        "p999_ms": row.p999_ms,
        "jitter_ms": row.jitter_ms,
        "warm_cold_delta_ms": row.warm_cold_delta_ms,
        "pool_reused": card.pool_reused,
        "pool_handshakes": card.pool_handshakes,
        "score": row.score,
    }


def run_overload_leg(config: BenchConfig) -> dict:
    """Drive a tiny engine far past capacity; it must shed, not stall."""
    telemetry.reset_registry()
    engine = _build_engine(config, ServingConfig(
        concurrency=config.overload_concurrency,
        max_queue=config.overload_max_queue))
    spec = WorkloadSpec(
        duration_s=config.overload_duration_s, qps_start=config.qps,
        clients=config.clients, names=config.names,
        protocol_mix={"do53-tcp": 1.0, "dot": 1.0, "doh": 1.0})
    start = time.perf_counter()
    report = engine.run(spec)
    wall_s = time.perf_counter() - start
    engine.close()
    shed_by_protocol = {name: stats.shed
                        for name, stats in sorted(report.protocols.items())}
    return {
        "offered": report.offered,
        "served": report.served,
        "shed": report.shed,
        "shed_by_protocol": shed_by_protocol,
        "queue_peak": report.queue_peak,
        "completed": True,
        "wall_s": round(wall_s, 3),
    }


def run_repro_check(config: BenchConfig) -> dict:
    """Two same-seed runs must serialize byte-identically."""
    digests = []
    duration = max(1.0, round(config.repro_queries / config.qps))
    for _ in range(2):
        telemetry.reset_registry()
        engine = _build_engine(config, ServingConfig(
            concurrency=config.concurrency, max_queue=config.max_queue))
        spec = WorkloadSpec(
            duration_s=duration, qps_start=config.qps,
            clients=config.clients, names=config.names,
            protocol_mix={"do53": 1.0, "do53-tcp": 1.0,
                          "dot": 1.0, "doh": 1.0})
        report = engine.run(spec)
        engine.close()
        card = ResolverScorecard.from_report(report, seed=config.seed)
        digests.append(hashlib.sha256(card.to_json_bytes()).hexdigest())
    return {
        "digest_a": digests[0],
        "digest_b": digests[1],
        "identical": digests[0] == digests[1],
    }


#: Shard count for the sharded leg; part of the leg's definition.
SHARDED_LEG_SHARDS = 4

#: Worker counts the sharded leg compares.
SHARDED_LEG_WORKERS = (1, 2)


def run_sharded_leg(config: BenchConfig) -> dict:
    """Client-range sharded runs at two worker counts must merge to
    byte-identical scorecards (the serving determinism contract)."""
    from repro.core.parallel import ParallelConfig
    from repro.serving.engine import run_sharded

    duration = max(1.0, round(config.repro_queries / config.qps))
    spec = WorkloadSpec(
        duration_s=duration, qps_start=config.qps,
        clients=config.clients, names=config.names,
        protocol_mix={"do53": 1.0, "do53-tcp": 1.0,
                      "dot": 1.0, "doh": 1.0})
    world_config = ServingWorldConfig(
        seed=config.seed, clients=config.clients, names=config.names)
    serving_config = ServingConfig(
        concurrency=config.concurrency, max_queue=config.max_queue)
    digests = {}
    served = 0
    wall = {}
    for workers in SHARDED_LEG_WORKERS:
        telemetry.reset_registry()
        # oversubscribe so both counts genuinely exercise the pool path
        # even on single-CPU machines; min_fanout_items=0 so the leg
        # never falls back to the unsharded in-process shortcut.
        parallel = ParallelConfig(workers=workers,
                                  shards=SHARDED_LEG_SHARDS,
                                  min_fanout_items=0, oversubscribe=True)
        start = time.perf_counter()
        report = run_sharded(world_config, spec, serving_config, parallel)
        wall[workers] = round(time.perf_counter() - start, 3)
        card = ResolverScorecard.from_report(report, seed=config.seed)
        digests[workers] = hashlib.sha256(card.to_json_bytes()).hexdigest()
        served = report.served
    first, second = SHARDED_LEG_WORKERS
    return {
        "shards": SHARDED_LEG_SHARDS,
        "workers": list(SHARDED_LEG_WORKERS),
        "digest_a": digests[first],
        "digest_b": digests[second],
        "identical": digests[first] == digests[second],
        "served": served,
        "wall_s": wall,
    }


def run_serving_bench(config: Optional[BenchConfig] = None,
                      protocols: Tuple[str, ...] = BENCH_PROTOCOLS,
                      log=lambda text: None) -> dict:
    """The full benchmark; returns the BENCH_SERVING.json document."""
    config = (config or BenchConfig()).validate()
    legs: Dict[str, dict] = {}
    for protocol in protocols:
        log(f"serving leg: {protocol} "
            f"({config.queries_per_protocol} queries)...")
        legs[protocol] = run_protocol_leg(config, protocol)
    log("overload leg...")
    overload = run_overload_leg(config)
    log("reproducibility check...")
    repro = run_repro_check(config)
    log("sharded leg...")
    sharded = run_sharded_leg(config)
    return {
        "generated_by": "benchmarks/bench_serving.py",
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": config.seed,
        "queries_per_protocol": config.queries_per_protocol,
        "qps_offered": config.qps,
        "engine": {"concurrency": config.concurrency,
                   "max_queue": config.max_queue},
        "protocols": legs,
        "overload": overload,
        "reproducibility": repro,
        "sharded": sharded,
    }


def validate_document(document: dict,
                      min_queries: Optional[int] = None) -> None:
    """Schema + invariant gate for a BENCH_SERVING.json document.

    Raises :class:`ValueError` on the first violation; ``min_queries``
    overrides the served-queries floor (the CI smoke run uses a small
    one, the committed artifact the full 10k).
    """
    for key in ("schema_version", "seed", "queries_per_protocol",
                "protocols", "overload", "reproducibility"):
        if key not in document:
            raise ValueError(f"missing key {key!r}")
    if document["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(f"schema_version {document['schema_version']!r} "
                         f"!= {BENCH_SCHEMA_VERSION}")
    floor = (document["queries_per_protocol"] if min_queries is None
             else min_queries)
    legs = document["protocols"]
    for protocol in BENCH_PROTOCOLS:
        if protocol not in legs:
            raise ValueError(f"missing protocol leg {protocol!r}")
        leg = legs[protocol]
        for key in ("served", "qps_wall", "p50_ms", "p95_ms", "p99_ms",
                    "p999_ms", "success_rate"):
            if key not in leg:
                raise ValueError(f"{protocol}: missing {key!r}")
        if leg["served"] < floor:
            raise ValueError(f"{protocol}: served {leg['served']} below "
                             f"the {floor}-query floor")
        if leg["qps_wall"] <= 0:
            raise ValueError(f"{protocol}: non-positive qps_wall")
        quantiles = [leg["p50_ms"], leg["p95_ms"], leg["p99_ms"],
                     leg["p999_ms"]]
        if any(value is None or value <= 0 for value in quantiles):
            raise ValueError(f"{protocol}: missing latency quantiles")
        if sorted(quantiles) != quantiles:
            raise ValueError(f"{protocol}: quantiles not monotone: "
                             f"{quantiles}")
    overload = document["overload"]
    if not overload.get("completed"):
        raise ValueError("overload leg did not complete")
    if overload.get("shed", 0) <= 0:
        raise ValueError("overload leg shed nothing — admission control "
                         "is not engaging")
    if not document["reproducibility"].get("identical"):
        raise ValueError("same-seed scorecards were not byte-identical")
    # ``sharded`` is optional (older documents predate the sharded
    # serving path) but fully validated when present.
    if "sharded" in document:
        sharded = document["sharded"]
        for key in ("shards", "workers", "digest_a", "digest_b",
                    "identical", "served"):
            if key not in sharded:
                raise ValueError(f"sharded: missing {key!r}")
        if not sharded["identical"]:
            raise ValueError("sharded scorecards differ across worker "
                             "counts — scheduling leaked into results")
        if sharded["served"] <= 0:
            raise ValueError("sharded leg served nothing")
