"""Seeded workload generation for the serving loop.

A workload is a deterministic stream of query arrivals on the sim
clock: name popularity follows a Zipf distribution (a handful of hot
names dominate, exactly the shape that makes resolver caches matter),
every client is assigned a protocol from a configurable mix, and the
offered rate follows a linear qps ramp over the run's duration.

Everything is a pure function of ``(spec, rng seed)`` — the generator
draws from forked :class:`~repro.netsim.rand.SeededRng` streams and
never reads the wall clock, which is what lets two serving runs with
the same seed produce byte-identical scorecards.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.errors import ScenarioError
from repro.netsim.rand import SeededRng

#: Protocols a workload may exercise; "do53" is the classic UDP path.
SERVING_PROTOCOLS = ("do53", "do53-tcp", "dot", "doh")


@dataclass(frozen=True)
class QueryEvent:
    """One query arrival, relative to the workload's start instant."""

    at_s: float
    client: int
    protocol: str
    qname: DnsName
    rrtype: int = RRType.A


@dataclass
class WorkloadSpec:
    """The knobs of one serving workload.

    ``qps_end`` enables a linear ramp from ``qps_start`` over
    ``duration_s``; leaving it None keeps the rate flat. ``names`` is
    the size of the queryable name universe (ranks 1..names under the
    Zipf law with exponent ``zipf_s``).
    """

    duration_s: float = 60.0
    qps_start: float = 100.0
    qps_end: Optional[float] = None
    clients: int = 8
    names: int = 512
    zipf_s: float = 1.1
    protocol_mix: Mapping[str, float] = field(
        default_factory=lambda: {"do53": 1.0, "dot": 1.0, "doh": 1.0})
    rrtype: int = RRType.A

    def validate(self) -> "WorkloadSpec":
        if self.duration_s <= 0:
            raise ScenarioError("workload duration must be positive")
        if self.qps_start < 0 or (self.qps_end is not None
                                  and self.qps_end < 0):
            raise ScenarioError("qps must be non-negative")
        if self.clients <= 0 or self.names <= 0:
            raise ScenarioError("clients and names must be positive")
        if not self.protocol_mix:
            raise ScenarioError("protocol mix is empty")
        for protocol, weight in self.protocol_mix.items():
            if protocol not in SERVING_PROTOCOLS:
                raise ScenarioError(f"unknown serving protocol {protocol!r}")
            if weight < 0:
                raise ScenarioError(f"negative weight for {protocol!r}")
        if sum(self.protocol_mix.values()) <= 0:
            raise ScenarioError("protocol mix has zero total weight")
        return self

    def qps_at(self, t_s: float) -> float:
        """The offered rate at offset ``t_s`` (linear ramp)."""
        if self.qps_end is None or self.duration_s == 0:
            return self.qps_start
        fraction = min(1.0, max(0.0, t_s / self.duration_s))
        return self.qps_start + (self.qps_end - self.qps_start) * fraction


class ZipfSampler:
    """Zipf-distributed ranks with O(log n) draws.

    Rank ``r`` (1-based) carries weight ``1 / r**s``; the cumulative
    weight table is built once and sampling bisects it on a uniform
    draw, so a 10^6-name universe costs ~20 comparisons per query.
    """

    def __init__(self, n: int, s: float = 1.1):
        if n <= 0:
            raise ScenarioError("Zipf universe must be non-empty")
        self.n = n
        self.s = s
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += rank ** -s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: SeededRng) -> int:
        """A 0-based index, 0 being the most popular."""
        return bisect.bisect_left(self._cumulative,
                                  rng.random() * self._total)


def assign_protocols(spec: WorkloadSpec, rng: SeededRng) -> Tuple[str, ...]:
    """Fix one protocol per client, honouring the mix.

    Largest-remainder apportionment gives every protocol its exact share
    of the client population (up to rounding); the seeded shuffle then
    decides *which* client speaks which protocol, so client index never
    encodes protocol.
    """
    protocols = sorted(spec.protocol_mix)
    total_weight = sum(spec.protocol_mix[p] for p in protocols)
    exact = {p: spec.clients * spec.protocol_mix[p] / total_weight
             for p in protocols}
    counts = {p: int(exact[p]) for p in protocols}
    shortfall = spec.clients - sum(counts.values())
    by_remainder = sorted(protocols,
                          key=lambda p: (-(exact[p] - counts[p]), p))
    for p in by_remainder[:shortfall]:
        counts[p] += 1
    assignment: List[str] = []
    for p in protocols:
        assignment.extend([p] * counts[p])
    rng.shuffle(assignment)
    return tuple(assignment)


class WorkloadGenerator:
    """Turns a :class:`WorkloadSpec` into per-second event batches."""

    def __init__(self, spec: WorkloadSpec, rng: SeededRng):
        self.spec = spec.validate()
        self.rng = rng
        self.client_protocols = assign_protocols(spec,
                                                 rng.fork("protocol-mix"))
        self._zipf = ZipfSampler(spec.names, spec.zipf_s)
        self._arrivals = rng.fork("arrivals")

    def name_for(self, index: int) -> DnsName:
        """The qname at popularity rank ``index`` (0 = hottest)."""
        return DnsName.from_text(f"name-{index:05d}.workload.test")

    def batches(self) -> Iterator[Tuple[int, List[QueryEvent]]]:
        """Yield ``(tick_index, events)`` per whole second of sim time.

        Arrival counts track the qps ramp exactly via fractional carry;
        offsets within a tick are uniform draws, sorted so events leave
        the generator in arrival order.
        """
        spec = self.spec
        rng = self._arrivals
        carry = 0.0
        ticks = int(spec.duration_s)
        remainder = spec.duration_s - ticks
        for tick in range(ticks + (1 if remainder > 0 else 0)):
            width = 1.0 if tick < ticks else remainder
            carry += spec.qps_at(tick + width / 2.0) * width
            count = int(carry)
            carry -= count
            offsets = sorted(rng.uniform(0.0, width) for _ in range(count))
            events = []
            for offset in offsets:
                client = rng.randint(0, spec.clients - 1)
                name_index = self._zipf.sample(rng)
                events.append(QueryEvent(
                    at_s=tick + offset,
                    client=client,
                    protocol=self.client_protocols[client],
                    qname=self.name_for(name_index),
                    rrtype=spec.rrtype))
            yield tick, events

    def events(self) -> Iterator[QueryEvent]:
        """The flattened arrival stream (tests and small tools)."""
        for _, batch in self.batches():
            yield from batch

    def protocol_census(self) -> Dict[str, int]:
        """How many clients ended up on each protocol."""
        census: Dict[str, int] = {}
        for protocol in self.client_protocols:
            census[protocol] = census.get(protocol, 0) + 1
        return census
