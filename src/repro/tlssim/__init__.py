"""TLS simulation: certificates, chains, CA stores and validation.

Implements the authentication half of TLS that the paper's findings hinge
on — expired certificates, self-signed certificates, broken chains,
untrusted interception CAs — without real cryptography. Signatures are
modelled as issuer references checked structurally, which preserves every
validation outcome the measurement pipeline classifies.
"""

from repro.tlssim.certs import (
    CaStore,
    Certificate,
    CertificateAuthority,
    ValidationFailure,
    ValidationReport,
    make_chain,
    resign_for,
    self_signed,
    validate_chain,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CaStore",
    "ValidationFailure",
    "ValidationReport",
    "make_chain",
    "self_signed",
    "resign_for",
    "validate_chain",
]
