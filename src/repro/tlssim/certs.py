"""Certificates, authorities and chain validation."""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.errors import ScenarioError
from repro.netsim.clock import parse_date

_serial_counter = itertools.count(1000)


class ValidationFailure(enum.Enum):
    """Why a certificate chain failed validation.

    Categories match the paper's Finding 1.2 taxonomy: expired,
    self-signed, invalid chain, plus untrusted-CA for interception
    devices (Finding 2.3) and name mismatch for strict clients.
    """

    EXPIRED = "expired"
    NOT_YET_VALID = "not_yet_valid"
    SELF_SIGNED = "self_signed"
    BROKEN_CHAIN = "broken_chain"
    UNTRUSTED_CA = "untrusted_ca"
    NAME_MISMATCH = "name_mismatch"
    EMPTY_CHAIN = "empty_chain"


@dataclass(frozen=True)
class Certificate:
    """One X.509-like certificate."""

    subject_cn: str
    issuer_cn: str
    serial: int
    not_before: float
    not_after: float
    #: Identity of the issuing key; a cert is self-signed when its own
    #: ``key_id`` equals its ``issuer_key_id``.
    key_id: str = ""
    issuer_key_id: str = ""
    is_ca: bool = False
    san: Tuple[str, ...] = ()

    @property
    def self_signed(self) -> bool:
        return self.key_id == self.issuer_key_id

    def valid_at(self, timestamp: float) -> bool:
        return self.not_before <= timestamp <= self.not_after

    def matches_name(self, name: str) -> bool:
        """RFC 6125-style host matching over CN and SANs."""
        candidates = (self.subject_cn,) + self.san
        return any(_host_matches(pattern, name) for pattern in candidates)

    def __repr__(self) -> str:
        return (f"Certificate(cn={self.subject_cn!r}, "
                f"issuer={self.issuer_cn!r}, serial={self.serial})")


def _host_matches(pattern: str, name: str) -> bool:
    pattern = pattern.lower().rstrip(".")
    name = name.lower().rstrip(".")
    if pattern == name:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        head, _, tail = name.partition(".")
        return bool(head) and tail == suffix
    return False


@dataclass
class CertificateAuthority:
    """An issuing authority with a stable key identity."""

    name: str
    key_id: str
    trusted: bool = True
    #: The CA's own certificate (root or intermediate).
    certificate: Optional[Certificate] = None
    parent: Optional["CertificateAuthority"] = None

    @classmethod
    def root(cls, name: str, trusted: bool = True,
             not_before: str = "2015-01-01",
             not_after: str = "2035-01-01") -> "CertificateAuthority":
        key_id = f"key:{name}"
        certificate = Certificate(
            subject_cn=name, issuer_cn=name,
            serial=next(_serial_counter),
            not_before=parse_date(not_before),
            not_after=parse_date(not_after),
            key_id=key_id, issuer_key_id=key_id, is_ca=True,
        )
        return cls(name=name, key_id=key_id, trusted=trusted,
                   certificate=certificate)

    def intermediate(self, name: str,
                     not_before: str = "2016-01-01",
                     not_after: str = "2030-01-01") -> "CertificateAuthority":
        key_id = f"key:{name}"
        certificate = Certificate(
            subject_cn=name, issuer_cn=self.name,
            serial=next(_serial_counter),
            not_before=parse_date(not_before),
            not_after=parse_date(not_after),
            key_id=key_id, issuer_key_id=self.key_id, is_ca=True,
        )
        return CertificateAuthority(name=name, key_id=key_id,
                                    trusted=self.trusted,
                                    certificate=certificate, parent=self)

    def issue(self, subject_cn: str, not_before: str, not_after: str,
              san: Iterable[str] = ()) -> Certificate:
        return Certificate(
            subject_cn=subject_cn, issuer_cn=self.name,
            serial=next(_serial_counter),
            not_before=parse_date(not_before),
            not_after=parse_date(not_after),
            key_id=f"key:leaf:{subject_cn}:{next(_serial_counter)}",
            issuer_key_id=self.key_id,
            san=tuple(san),
        )

    def chain_to_root(self) -> Tuple[Certificate, ...]:
        chain = []
        authority: Optional[CertificateAuthority] = self
        while authority is not None:
            if authority.certificate is not None:
                chain.append(authority.certificate)
            authority = authority.parent
        return tuple(chain)


#: Default bound on a store's validation memo. Generous for a single
#: scan round (a few thousand distinct chains at most), small enough
#: that hundreds of rotation epochs cannot grow the memo without limit.
DEFAULT_VALIDATION_MEMO_SIZE = 4096


@dataclass
class CaStore:
    """A trust store (the paper uses the Mozilla CA list on CentOS 7.6)."""

    name: str = "mozilla"
    _roots: dict = field(default_factory=dict)
    #: Memoised :func:`validate_chain` results for this store, keyed by
    #: (chain serials, time signature, expected name). Serials are
    #: globally unique, and the time signature captures every ``now``
    #: comparison validation makes, so a hit is exactly the report a
    #: fresh validation would produce. Invalidated when trust changes.
    #: Bounded as an LRU (like the Network host cache): longitudinal
    #: campaigns rotate certificates for hundreds of epochs, and every
    #: rotation mints chains with fresh serials — an unbounded memo
    #: would grow with campaign length.
    _validation_memo: "OrderedDict" = field(default_factory=OrderedDict,
                                            repr=False, compare=False)
    validation_memo_size: int = DEFAULT_VALIDATION_MEMO_SIZE
    #: How many memoised reports the LRU bound has evicted. A plain
    #: per-store attribute (the Network host-cache idiom), NOT a
    #: deterministic-registry metric: eviction counts depend on which
    #: process validated which shard, so they must never leak into
    #: worker-count-invariant artefacts.
    memo_evictions: int = field(default=0, compare=False)

    def trust(self, authority: CertificateAuthority) -> None:
        root = authority
        while root.parent is not None:
            root = root.parent
        self._roots[root.key_id] = root
        self._validation_memo.clear()

    def is_trusted_root_key(self, key_id: str) -> bool:
        return key_id in self._roots

    def memo_get(self, key) -> Optional["ValidationReport"]:
        report = self._validation_memo.get(key)
        if report is not None:
            self._validation_memo.move_to_end(key)
        return report

    def memo_put(self, key, report: "ValidationReport") -> None:
        memo = self._validation_memo
        memo[key] = report
        bound = max(1, self.validation_memo_size)
        while len(memo) > bound:
            memo.popitem(last=False)
            self.memo_evictions += 1

    def __len__(self) -> int:
        return len(self._roots)


@dataclass(frozen=True)
class ValidationReport:
    """The result of validating a presented chain."""

    failures: Tuple[ValidationFailure, ...]
    subject_cn: str = ""

    @property
    def valid(self) -> bool:
        return not self.failures

    def has(self, failure: ValidationFailure) -> bool:
        return failure in self.failures

    def primary_failure(self) -> Optional[ValidationFailure]:
        """The most significant failure, for single-label reporting.

        Mirrors the paper's categorisation priority: an expired cert is
        reported as expired even if the chain also has other issues.
        """
        priority = (
            ValidationFailure.EMPTY_CHAIN,
            ValidationFailure.EXPIRED,
            ValidationFailure.NOT_YET_VALID,
            ValidationFailure.SELF_SIGNED,
            ValidationFailure.UNTRUSTED_CA,
            ValidationFailure.BROKEN_CHAIN,
            ValidationFailure.NAME_MISMATCH,
        )
        for failure in priority:
            if failure in self.failures:
                return failure
        return None


def validate_chain(chain: Tuple[Certificate, ...], store: CaStore,
                   now: float,
                   expected_name: Optional[str] = None) -> ValidationReport:
    """Validate a presented certificate chain.

    Checks: non-empty, leaf validity window, self-signature, issuer
    linkage across the chain, anchoring in a trusted root, and
    (optionally) host-name match. ``expected_name=None`` skips the name
    check — the paper does the same for DoT resolvers discovered by
    address, whose names are unknown.
    """
    if not chain:
        return ValidationReport((ValidationFailure.EMPTY_CHAIN,))
    leaf = chain[0]
    # Scan rounds re-validate the same unchanged chains thousands of
    # times. The memo key folds in every time-dependent predicate the
    # checks below evaluate, so a cached report stays correct even when
    # ``now`` crosses an expiry boundary mid-campaign (the time
    # signature changes and the memo misses).
    time_sig = ((now > leaf.not_after, now < leaf.not_before)
                + tuple(parent.valid_at(now) for parent in chain[1:]))
    memo_key = (tuple(cert.serial for cert in chain), time_sig,
                expected_name)
    cached = store.memo_get(memo_key)
    if cached is not None:
        return cached
    failures = []
    if now > leaf.not_after:
        failures.append(ValidationFailure.EXPIRED)
    elif now < leaf.not_before:
        failures.append(ValidationFailure.NOT_YET_VALID)
    if leaf.self_signed and not store.is_trusted_root_key(leaf.key_id):
        failures.append(ValidationFailure.SELF_SIGNED)
    else:
        link_failures = _check_linkage(chain, store, now)
        failures.extend(link_failures)
    if expected_name is not None and not leaf.matches_name(expected_name):
        failures.append(ValidationFailure.NAME_MISMATCH)
    report = ValidationReport(tuple(failures), subject_cn=leaf.subject_cn)
    store.memo_put(memo_key, report)
    return report


def _check_linkage(chain: Tuple[Certificate, ...], store: CaStore,
                   now: float) -> Tuple[ValidationFailure, ...]:
    failures = []
    for child, parent in zip(chain, chain[1:]):
        if child.issuer_key_id != parent.key_id or not parent.is_ca:
            failures.append(ValidationFailure.BROKEN_CHAIN)
            return tuple(failures)
        if not parent.valid_at(now):
            failures.append(ValidationFailure.BROKEN_CHAIN)
            return tuple(failures)
    top = chain[-1]
    if top.self_signed:
        if not store.is_trusted_root_key(top.key_id):
            failures.append(ValidationFailure.UNTRUSTED_CA)
    elif store.is_trusted_root_key(top.issuer_key_id):
        pass  # chain ends at an intermediate directly under a trusted root
    else:
        failures.append(ValidationFailure.UNTRUSTED_CA)
    return tuple(failures)


def make_chain(authority: CertificateAuthority, subject_cn: str,
               not_before: str, not_after: str,
               san: Iterable[str] = ()) -> Tuple[Certificate, ...]:
    """Issue a leaf and return the full presented chain."""
    leaf = authority.issue(subject_cn, not_before, not_after, san)
    return (leaf,) + authority.chain_to_root()


def self_signed(subject_cn: str, not_before: str,
                not_after: str) -> Tuple[Certificate, ...]:
    """A one-element self-signed chain (e.g. FortiGate factory default)."""
    key_id = f"key:self:{subject_cn}:{next(_serial_counter)}"
    certificate = Certificate(
        subject_cn=subject_cn, issuer_cn=subject_cn,
        serial=next(_serial_counter),
        not_before=parse_date(not_before), not_after=parse_date(not_after),
        key_id=key_id, issuer_key_id=key_id,
    )
    return (certificate,)


def resign_for(authority: CertificateAuthority,
               subject: str) -> Tuple[Certificate, ...]:
    """Re-sign a subject under an interception CA.

    Models TLS-inspection middleboxes: "all resolver certificates are
    re-signed by an untrusted CA, while other fields remain unchanged"
    (Finding 2.3, Table 6).
    """
    if authority.trusted:
        raise ScenarioError("interception CAs must be untrusted")
    return make_chain(authority, subject, "2018-06-01", "2028-06-01",
                      san=(subject,))
