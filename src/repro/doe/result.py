"""Uniform query results across all DNS transports."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnswire.message import Message
from repro.dnswire.rdtypes import Rcode


class FailureKind(enum.Enum):
    """Transport-level reason a lookup produced no DNS response."""

    TIMEOUT = "timeout"
    REFUSED = "refused"
    RESET = "reset"
    UNREACHABLE = "unreachable"
    TLS = "tls"
    CERTIFICATE = "certificate"
    HTTP = "http"
    PROTOCOL = "protocol"


class QueryOutcome(enum.Enum):
    """The paper's three-way reachability classification (Table 4).

    *Failed*: the client received no DNS response packets. *Incorrect*:
    only SERVFAIL responses or responses with 0 answers (or answers that
    contradict authoritative ground truth). *Correct*: the expected
    answer arrived.
    """

    CORRECT = "correct"
    INCORRECT = "incorrect"
    FAILED = "failed"


@dataclass
class QueryResult:
    """Everything observed during one lookup attempt."""

    ok: bool
    transport: str
    resolver: str
    latency_ms: float
    response: Optional[Message] = None
    failure: Optional[FailureKind] = None
    error: str = ""
    #: Certificate chain the client saw during the TLS handshake, if any.
    presented_chain: tuple = ()
    #: Validation report for that chain, when the client verified it.
    cert_report: Optional[object] = None
    #: Name of the middlebox that proxied the TLS session, when the
    #: simulation exposes it (ground truth, not client-visible).
    intercepted_by: Optional[str] = None
    #: Whether the TLS session reused a cached session (resumption).
    reused_connection: bool = False
    attempts: int = 1

    @property
    def rcode(self) -> Optional[int]:
        if self.response is None:
            return None
        return self.response.rcode()

    def addresses(self) -> Tuple[str, ...]:
        if self.response is None:
            return ()
        return self.response.answer_addresses()

    def classify(self, expected_addresses: Tuple[str, ...] = ()) -> QueryOutcome:
        """Map to the paper's Correct / Incorrect / Failed buckets."""
        if self.response is None:
            return QueryOutcome.FAILED
        if self.response.rcode() != Rcode.NOERROR:
            return QueryOutcome.INCORRECT
        answers = self.addresses()
        if not answers:
            return QueryOutcome.INCORRECT
        if expected_addresses and not set(answers) & set(expected_addresses):
            return QueryOutcome.INCORRECT
        return QueryOutcome.CORRECT

    @classmethod
    def failed(cls, transport: str, resolver: str, latency_ms: float,
               failure: FailureKind, error: str = "",
               **kwargs) -> "QueryResult":
        return cls(ok=False, transport=transport, resolver=resolver,
                   latency_ms=latency_ms, failure=failure, error=error,
                   **kwargs)

    @classmethod
    def answered(cls, transport: str, resolver: str, latency_ms: float,
                 response: Message, **kwargs) -> "QueryResult":
        return cls(ok=True, transport=transport, resolver=resolver,
                   latency_ms=latency_ms, response=response, **kwargs)
