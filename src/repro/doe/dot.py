"""DNS-over-TLS client (RFC 7858) with usage profiles (RFC 8310).

Implements both privacy profiles the paper exercises:

* **Strict** — the server must authenticate (certificate chain valid and,
  when a name is configured, matching); otherwise the lookup fails.
* **Opportunistic** — best effort: the client proceeds even when the
  certificate cannot be validated, which is why TLS interception lets
  opportunistic DoT lookups silently succeed (Finding 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dnswire.message import Message
from repro.doe.do53 import classify_transport_error, error_latency_ms
from repro.doe.framing import frame_tcp_message, unframe_tcp_message
from repro.doe.result import FailureKind, QueryResult
from repro.errors import TlsError, TransportError, WireFormatError
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import TcpConnection, TlsChannel
from repro.tlssim.certs import CaStore, ValidationReport, validate_chain

DOT_PORT = 853


class PrivacyProfile(enum.Enum):
    """RFC 8310 usage profiles."""

    STRICT = "strict"
    OPPORTUNISTIC = "opportunistic"


@dataclass
class _Session:
    connection: TcpConnection
    channel: TlsChannel
    #: Whether this resolver has been contacted before (enables
    #: TLS session resumption on reconnect).
    had_session: bool = True
    #: RFC 7828 idle deadline (simulated time); None = no advertisement.
    idle_deadline: Optional[float] = None


class DotClient:
    """A DoT stub with connection reuse and session resumption."""

    def __init__(self, network: Network, rng: SeededRng, ca_store: CaStore,
                 profile: PrivacyProfile = PrivacyProfile.OPPORTUNISTIC,
                 auth_name: Optional[str] = None,
                 pad_block: Optional[int] = 128):
        self.network = network
        self.rng = rng
        self.ca_store = ca_store
        self.profile = profile
        #: Authentication domain name, when known out of band (RFC 8310).
        self.auth_name = auth_name
        self.pad_block = pad_block
        self._sessions: Dict[Tuple[str, str], _Session] = {}
        self._known_resolvers: set = set()

    def query(self, env: ClientEnvironment, resolver_ip: str,
              message: Message, reuse: bool = True,
              timeout_s: float = 5.0,
              port: int = DOT_PORT) -> QueryResult:
        """One DoT lookup; returns a uniform :class:`QueryResult`."""
        if self.pad_block:
            message = message.with_padding_to_block(self.pad_block)
        key = (env.label, resolver_ip)
        session = self._sessions.get(key) if reuse else None
        if session is not None and (
                session.connection.closed
                or (session.idle_deadline is not None
                    and self.network.clock.now() > session.idle_deadline)):
            # Idle past the server's RFC 7828 keepalive window: the
            # server has closed the connection; reconnect (resumed).
            session.connection.close()
            session = None
            self._sessions.pop(key, None)
        reused = session is not None
        latency = 0.0
        report: Optional[ValidationReport] = None
        chain: tuple = ()
        intercepted: Optional[str] = None
        try:
            if session is None:
                resume = (env.label, resolver_ip) in self._known_resolvers
                connection = TcpConnection.open(
                    self.network, env, resolver_ip, port, self.rng,
                    timeout_s=timeout_s)
                channel = TlsChannel(connection, server_name=self.auth_name)
                channel.handshake(resume=resume)
                latency += connection.elapsed_ms
                chain = channel.presented_chain
                intercepted = channel.intercepted_by
                report = validate_chain(
                    chain, self.ca_store, self.network.clock.now(),
                    expected_name=self.auth_name)
                if self.profile is PrivacyProfile.STRICT and not report.valid:
                    connection.close()
                    return QueryResult.failed(
                        "dot", resolver_ip, latency,
                        FailureKind.CERTIFICATE,
                        f"certificate invalid: "
                        f"{[f.value for f in report.failures]}",
                        presented_chain=chain, cert_report=report,
                        intercepted_by=intercepted)
                session = _Session(connection, channel)
                self._known_resolvers.add((env.label, resolver_ip))
                if reuse:
                    self._sessions[key] = session
            else:
                chain = session.channel.presented_chain
                intercepted = session.channel.intercepted_by
            before = session.connection.elapsed_ms
            response_wire = session.channel.request(
                frame_tcp_message(message.encode()))
            latency += session.connection.elapsed_ms - before
        except TlsError as error:
            self._sessions.pop(key, None)
            return QueryResult.failed(
                "dot", resolver_ip, latency + error_latency_ms(error),
                FailureKind.TLS, str(error), presented_chain=chain,
                cert_report=report, intercepted_by=intercepted)
        except TransportError as error:
            self._sessions.pop(key, None)
            return QueryResult.failed(
                "dot", resolver_ip, latency + error_latency_ms(error),
                classify_transport_error(error), str(error),
                presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        try:
            response = Message.decode(unframe_tcp_message(response_wire))
        except WireFormatError as error:
            return QueryResult.failed(
                "dot", resolver_ip, latency, FailureKind.PROTOCOL,
                str(error), presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        finally:
            if not reuse and session is not None:
                session.connection.close()
        if reuse and response.opt is not None:
            from repro.dnswire.edns import KeepaliveOption
            timeout = KeepaliveOption.timeout_from(response.opt)
            if timeout is not None:
                session.idle_deadline = (self.network.clock.now()
                                         + timeout)
        return QueryResult.answered(
            "dot", resolver_ip, latency, response,
            presented_chain=chain, cert_report=report,
            intercepted_by=intercepted, reused_connection=reused)

    def fetch_certificate(self, env: ClientEnvironment, resolver_ip: str,
                          port: int = DOT_PORT,
                          timeout_s: float = 10.0):
        """Handshake only, returning ``(chain, report, error)``.

        This is the scanner's certificate-collection step (the paper's
        ``openssl`` fetch): no DNS query is sent.
        """
        try:
            connection = TcpConnection.open(
                self.network, env, resolver_ip, port, self.rng,
                timeout_s=timeout_s)
            channel = TlsChannel(connection, server_name=self.auth_name)
            channel.handshake()
            connection.close()
        except TransportError as error:
            return (), None, error
        report = validate_chain(channel.presented_chain, self.ca_store,
                                self.network.clock.now(), expected_name=None)
        return channel.presented_chain, report, None

    def close_all(self) -> None:
        for session in self._sessions.values():
            session.connection.close()
        self._sessions.clear()
