"""Clear-text DNS client over UDP and TCP."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dnswire.message import Message
from repro.doe.framing import frame_tcp_message, unframe_tcp_message
from repro.doe.result import FailureKind, QueryResult
from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    TimeoutError_,
    TransportError,
    WireFormatError,
)
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import TcpConnection

_FAILURE_BY_ERROR = (
    (TimeoutError_, FailureKind.TIMEOUT),
    (ConnectionRefused, FailureKind.REFUSED),
    (ConnectionReset, FailureKind.RESET),
    (HostUnreachable, FailureKind.UNREACHABLE),
)


def classify_transport_error(error: TransportError) -> FailureKind:
    for error_type, kind in _FAILURE_BY_ERROR:
        if isinstance(error, error_type):
            return kind
    return FailureKind.PROTOCOL


def error_latency_ms(error: TransportError) -> float:
    return getattr(error, "elapsed_ms", 0.0)


class Do53Client:
    """Clear-text DNS lookups, with TCP connection pooling for reuse.

    Pooled TCP connections honour the server's edns-tcp-keepalive
    advertisement (RFC 7828): a connection idle past the advertised
    window is treated as closed by the server and reopened instead of
    reused — the same lifetime rule :class:`repro.doe.dot.DotClient`
    applies to its TLS sessions.
    """

    def __init__(self, network: Network, rng: SeededRng):
        self.network = network
        self.rng = rng
        self._pool: Dict[Tuple[str, str], TcpConnection] = {}
        #: RFC 7828 idle deadlines (sim time) per pooled connection;
        #: absent = the server never advertised a keepalive window.
        self._idle_deadlines: Dict[Tuple[str, str], float] = {}

    # -- UDP -----------------------------------------------------------------

    def query_udp(self, env: ClientEnvironment, resolver_ip: str,
                  message: Message, timeout_s: float = 5.0) -> QueryResult:
        from repro.netsim.transport import UdpExchange
        wire = message.encode()
        try:
            response_wire, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, 53, wire, self.rng,
                timeout_s=timeout_s)
        except TransportError as error:
            return QueryResult.failed(
                "do53-udp", resolver_ip, error_latency_ms(error),
                classify_transport_error(error), str(error))
        try:
            response = Message.decode(response_wire)
        except WireFormatError as error:
            return QueryResult.failed("do53-udp", resolver_ip, elapsed,
                                      FailureKind.PROTOCOL, str(error))
        return QueryResult.answered("do53-udp", resolver_ip, elapsed,
                                    response)

    # -- TCP -----------------------------------------------------------------

    def query_tcp(self, env: ClientEnvironment, resolver_ip: str,
                  message: Message, reuse: bool = True,
                  timeout_s: float = 5.0) -> QueryResult:
        key = (env.label, resolver_ip)
        connection = self._pool.get(key) if reuse else None
        if connection is not None:
            deadline = self._idle_deadlines.get(key)
            if connection.closed or (
                    deadline is not None
                    and self.network.clock.now() > deadline):
                # Idle past the advertised RFC 7828 window: the server
                # has torn the connection down; reconnect.
                connection.close()
                connection = None
                self._pool.pop(key, None)
                self._idle_deadlines.pop(key, None)
        reused = connection is not None
        latency = 0.0
        try:
            if not reused:
                connection = TcpConnection.open(
                    self.network, env, resolver_ip, 53, self.rng,
                    timeout_s=timeout_s)
                latency += connection.elapsed_ms
                if reuse:
                    self._pool[key] = connection
            assert connection is not None
            before = connection.elapsed_ms
            response_wire = connection.request(
                frame_tcp_message(message.encode()))
            latency += connection.elapsed_ms - before
        except TransportError as error:
            self._pool.pop(key, None)
            self._idle_deadlines.pop(key, None)
            return QueryResult.failed(
                "do53-tcp", resolver_ip, latency + error_latency_ms(error),
                classify_transport_error(error), str(error),
                reused_connection=reused)
        try:
            response = Message.decode(unframe_tcp_message(response_wire))
        except WireFormatError as error:
            return QueryResult.failed("do53-tcp", resolver_ip, latency,
                                      FailureKind.PROTOCOL, str(error),
                                      reused_connection=reused)
        finally:
            if not reuse:
                connection.close()
        if reuse and response.opt is not None:
            from repro.dnswire.edns import KeepaliveOption
            timeout = KeepaliveOption.timeout_from(response.opt)
            if timeout is not None:
                self._idle_deadlines[key] = (self.network.clock.now()
                                             + timeout)
        return QueryResult.answered("do53-tcp", resolver_ip, latency,
                                    response, reused_connection=reused)

    def close_all(self) -> None:
        for connection in self._pool.values():
            connection.close()
        self._pool.clear()
        self._idle_deadlines.clear()
