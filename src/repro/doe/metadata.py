"""Protocol facts for the comparative study and implementation survey.

The paper's Table 1 grades five DNS-over-Encryption protocols against 10
criteria in 5 categories; Table 8 (Appendix A) surveys implementation
support as of May 1, 2019. This module encodes the underlying *facts*;
the grading logic lives in :mod:`repro.core.comparative`, so Table 1 is
derived rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ProtocolFacts:
    """Operational facts about one DNS-over-Encryption protocol."""

    key: str
    display_name: str
    proposed_year: int
    #: IETF status at the paper's survey date (May 2019).
    ietf_status: str  # "standard" | "experimental" | "draft" | "none"
    rfc: Optional[str]
    transport: str  # "tcp" | "udp" | "udp+tcp"
    crypto: str  # "tls" | "dtls" | "quic-tls" | "custom"
    port: int
    #: Whether the port is shared with unrelated HTTPS traffic, which
    #: defeats port-based traffic analysis.
    port_shared_with_https: bool
    #: Whether the protocol layers another application protocol (HTTP)
    #: between DNS and the crypto layer.
    uses_other_app_layer: bool
    #: Whether the spec provides a fallback path (opportunistic profile,
    #: or an explicit downgrade to another protocol).
    has_fallback: bool
    #: Whether padding options are available against size analysis.
    supports_padding: bool
    #: What a client must do before using it.
    client_change_level: str  # "low" | "medium" | "high"
    #: Steady-state latency cost class relative to DNS-over-UDP.
    latency_class: str  # "low" | "amortizable" | "high"
    #: Server-side support in mainstream DNS software.
    software_support: str  # "wide" | "partial" | "none"
    #: Support among large public resolvers.
    resolver_support: str  # "wide" | "partial" | "none"


PROTOCOLS: Dict[str, ProtocolFacts] = {
    facts.key: facts for facts in (
        ProtocolFacts(
            key="dot", display_name="DNS-over-TLS",
            proposed_year=2014, ietf_status="standard", rfc="RFC 7858",
            transport="tcp", crypto="tls", port=853,
            port_shared_with_https=False, uses_other_app_layer=False,
            has_fallback=True, supports_padding=True,
            client_change_level="medium", latency_class="amortizable",
            software_support="wide", resolver_support="wide",
        ),
        ProtocolFacts(
            key="doh", display_name="DNS-over-HTTPS",
            proposed_year=2017, ietf_status="standard", rfc="RFC 8484",
            transport="tcp", crypto="tls", port=443,
            port_shared_with_https=True, uses_other_app_layer=True,
            has_fallback=False, supports_padding=True,
            client_change_level="low", latency_class="amortizable",
            software_support="partial", resolver_support="wide",
        ),
        ProtocolFacts(
            key="dodtls", display_name="DNS-over-DTLS",
            proposed_year=2017, ietf_status="experimental", rfc="RFC 8094",
            transport="udp", crypto="dtls", port=853,
            port_shared_with_https=False, uses_other_app_layer=False,
            has_fallback=True, supports_padding=True,
            client_change_level="high", latency_class="low",
            software_support="none", resolver_support="none",
        ),
        ProtocolFacts(
            key="doq", display_name="DNS-over-QUIC",
            proposed_year=2017, ietf_status="draft",
            rfc="draft-huitema-quic-dnsoquic",
            transport="udp", crypto="quic-tls", port=784,
            port_shared_with_https=False, uses_other_app_layer=False,
            has_fallback=True, supports_padding=True,
            client_change_level="high", latency_class="low",
            software_support="none", resolver_support="none",
        ),
        ProtocolFacts(
            key="dnscrypt", display_name="DNSCrypt",
            proposed_year=2011, ietf_status="none", rfc=None,
            transport="udp+tcp", crypto="custom", port=443,
            port_shared_with_https=True, uses_other_app_layer=False,
            has_fallback=False, supports_padding=True,
            client_change_level="medium", latency_class="low",
            software_support="partial", resolver_support="partial",
        ),
    )
}


@dataclass(frozen=True)
class Implementation:
    """One row of the Appendix A implementation survey (Table 8)."""

    category: str  # "public-dns" | "server" | "stub" | "browser" | "os"
    name: str
    dot: bool = False
    doh: bool = False
    dnscrypt: bool = False
    dnssec: bool = False
    qname_minimization: bool = False
    since: str = ""


#: Survey snapshot, last updated May 1, 2019 (paper Appendix A).
IMPLEMENTATIONS: Tuple[Implementation, ...] = (
    # Public DNS services
    Implementation("public-dns", "Google", dot=True, doh=True, dnssec=True),
    Implementation("public-dns", "Cloudflare", dot=True, doh=True,
                   dnssec=True, qname_minimization=True),
    Implementation("public-dns", "Quad9", dot=True, doh=True,
                   dnscrypt=True, dnssec=True),
    Implementation("public-dns", "OpenDNS", dnscrypt=True, since="2011"),
    Implementation("public-dns", "CleanBrowsing", dot=True, doh=True,
                   dnscrypt=True),
    Implementation("public-dns", "Tenta", dot=True, doh=True, dnssec=True),
    Implementation("public-dns", "Verisign", dnssec=True),
    Implementation("public-dns", "SecureDNS", dot=True, doh=True,
                   dnscrypt=True, dnssec=True),
    Implementation("public-dns", "DNS.WATCH", dnssec=True),
    Implementation("public-dns", "PowerDNS", doh=True, dnssec=True),
    Implementation("public-dns", "Level3", dnssec=True),
    Implementation("public-dns", "SafeDNS"),
    Implementation("public-dns", "Dyn", dnssec=True),
    Implementation("public-dns", "BlahDNS", dot=True, doh=True,
                   dnscrypt=True, dnssec=True),
    Implementation("public-dns", "OpenNIC", dnscrypt=True, dnssec=True),
    Implementation("public-dns", "Alternate DNS"),
    Implementation("public-dns", "Yandex.DNS", dnscrypt=True, dnssec=True,
                   since="2016"),
    # Server software
    Implementation("server", "Unbound", dot=True, dnssec=True,
                   qname_minimization=True, doh=True),
    Implementation("server", "BIND", dnssec=True, qname_minimization=True),
    Implementation("server", "Knot Resolver", dot=True, doh=True,
                   dnssec=True, qname_minimization=True),
    Implementation("server", "dnsdist", dot=True, doh=True, dnscrypt=True,
                   dnssec=True),
    Implementation("server", "CoreDNS", dot=True, doh=True),
    Implementation("server", "AnswerX", dnssec=True),
    Implementation("server", "Cisco Registrar"),
    Implementation("server", "MS DNS", dnssec=True),
    # Stub software
    Implementation("stub", "Ldns (drill)", dot=True),
    Implementation("stub", "Stubby", dot=True, qname_minimization=True),
    Implementation("stub", "BIND (dig)", dot=True),
    Implementation("stub", "Go DNS", dot=True),
    Implementation("stub", "Knot (kdig)", dot=True, doh=True),
    # Browsers
    Implementation("browser", "Firefox", doh=True, since="Firefox 62.0"),
    Implementation("browser", "Chrome", doh=True, since="Chromium 66"),
    Implementation("browser", "IE"),
    Implementation("browser", "Yandex Browser", dnscrypt=True),
    Implementation("browser", "Tenta Browser", dot=True, doh=True,
                   since="Tenta v2"),
    # Operating systems (built-in support only)
    Implementation("os", "Android", dot=True, since="Android 9"),
    Implementation("os", "Linux (systemd)", dot=True, since="systemd 239"),
    Implementation("os", "Windows"),
    Implementation("os", "macOS"),
)


def implementations_by_category(category: str) -> Tuple[Implementation, ...]:
    return tuple(impl for impl in IMPLEMENTATIONS
                 if impl.category == category)


def support_count(protocol: str) -> int:
    """How many surveyed implementations support a protocol."""
    attribute = {"dot": "dot", "doh": "doh", "dnscrypt": "dnscrypt",
                 "dnssec": "dnssec", "qm": "qname_minimization"}[protocol]
    return sum(1 for impl in IMPLEMENTATIONS if getattr(impl, attribute))
