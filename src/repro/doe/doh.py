"""DNS-over-HTTPS client (RFC 8484).

DoH is Strict-Privacy-profile-only: the server certificate must validate
or the lookup fails — which is why TLS interception breaks DoH with a
certificate error while opportunistic DoT proceeds (Finding 2.3), and why
the paper found zero invalid certificates among public DoH resolvers
(Finding 1.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.dnswire.message import Message
from repro.doe.do53 import classify_transport_error, error_latency_ms
from repro.doe.result import FailureKind, QueryResult
from repro.errors import TlsError, TransportError, WireFormatError
from repro.httpsim.messages import HttpRequest
from repro.httpsim.uri import UriTemplate
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import TcpConnection, TlsChannel
from repro.doe.framing import DOH_JSON_MEDIA_TYPE, DOH_MEDIA_TYPE, b64url_encode
from repro.tlssim.certs import CaStore, validate_chain

DOH_PORT = 443

#: Resolves a hostname to candidate addresses (DoH bootstrap). The
#: template hostname "should be resolved to bootstrap DoH lookups (e.g.,
#: via clear-text DNS)".
BootstrapFn = Callable[[str], Tuple[str, ...]]


class DohMethod(enum.Enum):
    """The DoH request encodings: the two RFC 8484 forms of Figure 2
    plus the Google-style JSON API (``?name=&type=``)."""

    GET = "GET"
    POST = "POST"
    JSON = "JSON"


@dataclass
class _Session:
    connection: TcpConnection
    channel: TlsChannel
    address: str


class DohClient:
    """A DoH stub with bootstrap caching and connection reuse."""

    def __init__(self, network: Network, rng: SeededRng, ca_store: CaStore,
                 bootstrap: BootstrapFn,
                 method: DohMethod = DohMethod.POST,
                 pad_block: Optional[int] = 128):
        self.network = network
        self.rng = rng
        self.ca_store = ca_store
        self.bootstrap = bootstrap
        self.method = method
        self.pad_block = pad_block
        self._sessions: Dict[Tuple[str, str], _Session] = {}
        self._bootstrap_cache: Dict[str, Tuple[str, ...]] = {}
        #: Templates contacted before, enabling TLS session resumption.
        self._known_templates: set = set()

    def query(self, env: ClientEnvironment, template: UriTemplate,
              message: Message, reuse: bool = True,
              timeout_s: float = 5.0) -> QueryResult:
        """One DoH lookup against a URI template."""
        if self.pad_block:
            message = message.with_padding_to_block(self.pad_block)
        parsed, _ = template.parse()
        hostname, path, port = parsed.hostname, parsed.path, parsed.port
        label = str(template)
        key = (env.label, label)
        session = self._sessions.get(key) if reuse else None
        if session is not None and session.connection.closed:
            session = None
            self._sessions.pop(key, None)
        reused = session is not None
        latency = 0.0
        chain: tuple = ()
        report = None
        intercepted: Optional[str] = None
        try:
            if session is None:
                addresses = self._resolve_bootstrap(hostname)
                if not addresses:
                    return QueryResult.failed(
                        "doh", label, 0.0, FailureKind.UNREACHABLE,
                        f"bootstrap failed for {hostname}")
                address = addresses[0]
                connection = TcpConnection.open(
                    self.network, env, address, port, self.rng,
                    timeout_s=timeout_s)
                channel = TlsChannel(connection, server_name=hostname)
                channel.handshake(resume=(env.label, label)
                                  in self._known_templates)
                latency += connection.elapsed_ms
                self._known_templates.add((env.label, label))
                chain = channel.presented_chain
                intercepted = channel.intercepted_by
                report = validate_chain(
                    chain, self.ca_store, self.network.clock.now(),
                    expected_name=hostname)
                if not report.valid:
                    # DoH has no opportunistic fallback: terminate.
                    connection.close()
                    return QueryResult.failed(
                        "doh", label, latency, FailureKind.CERTIFICATE,
                        f"certificate invalid: "
                        f"{[f.value for f in report.failures]}",
                        presented_chain=chain, cert_report=report,
                        intercepted_by=intercepted)
                session = _Session(connection, channel, address)
                if reuse:
                    self._sessions[key] = session
            else:
                chain = session.channel.presented_chain
                intercepted = session.channel.intercepted_by
            request = self._build_request(path, hostname, message)
            before = session.connection.elapsed_ms
            response = session.channel.request(request)
            latency += session.connection.elapsed_ms - before
        except TlsError as error:
            self._sessions.pop(key, None)
            return QueryResult.failed(
                "doh", label, latency + error_latency_ms(error),
                FailureKind.TLS, str(error), presented_chain=chain,
                cert_report=report, intercepted_by=intercepted)
        except TransportError as error:
            self._sessions.pop(key, None)
            return QueryResult.failed(
                "doh", label, latency + error_latency_ms(error),
                classify_transport_error(error), str(error),
                presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        finally:
            if not reuse and session is not None:
                session.connection.close()
        if not response.is_success:
            return QueryResult.failed(
                "doh", label, latency, FailureKind.HTTP,
                f"HTTP {response.status} {response.reason}",
                presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        expected_type = (DOH_JSON_MEDIA_TYPE
                         if self.method is DohMethod.JSON
                         else DOH_MEDIA_TYPE)
        if response.header("content-type") != expected_type:
            return QueryResult.failed(
                "doh", label, latency, FailureKind.HTTP,
                f"unexpected content type "
                f"{response.header('content-type')!r}",
                presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        try:
            if self.method is DohMethod.JSON:
                answer = message_from_json(response.body, message)
            else:
                answer = Message.decode(response.body)
        except WireFormatError as error:
            return QueryResult.failed(
                "doh", label, latency, FailureKind.PROTOCOL, str(error),
                presented_chain=chain, cert_report=report,
                intercepted_by=intercepted, reused_connection=reused)
        return QueryResult.answered(
            "doh", label, latency, answer,
            presented_chain=chain, cert_report=report,
            intercepted_by=intercepted, reused_connection=reused)

    def probe_template(self, env: ClientEnvironment, template: UriTemplate,
                       message: Message,
                       timeout_s: float = 10.0) -> QueryResult:
        """Availability check used by DoH discovery (no connection kept)."""
        return self.query(env, template, message, reuse=False,
                          timeout_s=timeout_s)

    def _build_request(self, path: str, hostname: str,
                       message: Message) -> HttpRequest:
        if self.method is DohMethod.JSON:
            question = message.question
            assert question is not None
            return HttpRequest.get(
                f"{path}?name={question.name.to_display()}"
                f"&type={question.rrtype}",
                headers={"Accept": DOH_JSON_MEDIA_TYPE, "Host": hostname})
        wire = message.encode()
        headers = {"Accept": DOH_MEDIA_TYPE, "Host": hostname}
        if self.method is DohMethod.GET:
            return HttpRequest.get(
                f"{path}?dns={b64url_encode(wire)}", headers=headers)
        return HttpRequest.post(path, wire, DOH_MEDIA_TYPE, headers=headers)

    def _resolve_bootstrap(self, hostname: str) -> Tuple[str, ...]:
        cached = self._bootstrap_cache.get(hostname)
        if cached is None:
            cached = tuple(self.bootstrap(hostname))
            self._bootstrap_cache[hostname] = cached
        return cached

    def close_all(self) -> None:
        for session in self._sessions.values():
            session.connection.close()
        self._sessions.clear()
        self._bootstrap_cache.clear()


def message_from_json(body: bytes, query: Message) -> Message:
    """Reconstruct a wire-equivalent message from a JSON API response.

    The JSON API has no wire framing, so the client synthesises a
    :class:`Message` mirroring the original query — enough for the
    uniform classification the measurement pipeline applies.
    """
    import json

    from repro.dnswire.builder import make_response
    from repro.dnswire.names import DnsName
    from repro.dnswire.rdtypes import RRType
    from repro.dnswire.records import (
        AaaaData,
        AData,
        CnameData,
        ResourceRecord,
        TxtData,
    )
    from repro.dnswire.rdtypes import RRClass

    try:
        parsed = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"bad JSON DNS response: {exc}") from exc
    answers = []
    for entry in parsed.get("Answer", ()):
        try:
            name = DnsName.from_text(entry["name"])
            rrtype = int(entry["type"])
            ttl = int(entry.get("TTL", 0))
            data = str(entry.get("data", ""))
        except (KeyError, ValueError, TypeError) as exc:
            raise WireFormatError(f"bad JSON answer entry: {exc}") from exc
        if rrtype == RRType.A:
            rdata = AData(data)
        elif rrtype == RRType.AAAA:
            rdata = AaaaData(data)
        elif rrtype == RRType.CNAME:
            rdata = CnameData(DnsName.from_text(data))
        else:
            rdata = TxtData.from_text(data)
            rrtype = RRType.TXT
        answers.append(ResourceRecord(name, rrtype, RRClass.IN, ttl,
                                      rdata))
    rcode = int(parsed.get("Status", 0))
    return make_response(query, answers=answers, rcode=rcode)
