"""DNS-over-Encryption protocol implementations and clients.

Client-side implementations of the protocols the paper measures:

* clear-text DNS over UDP and TCP (:mod:`repro.doe.do53`),
* DNS-over-TLS, RFC 7858, with Strict and Opportunistic privacy profiles
  (:mod:`repro.doe.dot`),
* DNS-over-HTTPS, RFC 8484, GET and POST (:mod:`repro.doe.doh`),
* lightweight DNSCrypt and DNS-over-QUIC models used by the comparative
  study (:mod:`repro.doe.dnscrypt`, :mod:`repro.doe.doq`).

All clients return a uniform :class:`repro.doe.result.QueryResult` that
the measurement pipeline classifies into the paper's Correct / Incorrect
/ Failed buckets.
"""

from repro.doe.result import FailureKind, QueryOutcome, QueryResult
from repro.doe.framing import frame_tcp_message, unframe_tcp_message
from repro.doe.do53 import Do53Client
from repro.doe.dot import DotClient, PrivacyProfile
from repro.doe.doh import DohClient, DohMethod
from repro.doe.dnscrypt import DnsCryptClient
from repro.doe.doq import DoqClient

__all__ = [
    "QueryResult",
    "QueryOutcome",
    "FailureKind",
    "frame_tcp_message",
    "unframe_tcp_message",
    "Do53Client",
    "DotClient",
    "PrivacyProfile",
    "DohClient",
    "DohMethod",
    "DnsCryptClient",
    "DoqClient",
]
