"""DNS-over-TCP message framing (RFC 1035 section 4.2.2).

DNS messages on stream transports are prefixed with a two-octet length
field; DoT reuses this framing inside the TLS tunnel (RFC 7858 section 3).
"""

from __future__ import annotations

import base64
import struct

from repro.errors import WireFormatError

MAX_FRAMED_LENGTH = 0xFFFF

#: Media type of DoH requests and responses (RFC 8484 section 6).
DOH_MEDIA_TYPE = "application/dns-message"

#: Media type of the Google-style JSON DNS API.
DOH_JSON_MEDIA_TYPE = "application/dns-json"


def b64url_encode(data: bytes) -> str:
    """Unpadded base64url, as RFC 8484 requires for the dns parameter."""
    return base64.urlsafe_b64encode(data).decode().rstrip("=")


def b64url_decode(encoded: str) -> bytes:
    """Decode unpadded base64url."""
    padding = "=" * (-len(encoded) % 4)
    return base64.urlsafe_b64decode(encoded + padding)


def frame_tcp_message(message_bytes: bytes) -> bytes:
    """Prefix a wire-format message with its 16-bit length."""
    if len(message_bytes) > MAX_FRAMED_LENGTH:
        raise WireFormatError(
            f"message too large for TCP framing: {len(message_bytes)}")
    return struct.pack("!H", len(message_bytes)) + message_bytes


def unframe_tcp_message(data: bytes) -> bytes:
    """Strip and verify the 16-bit length prefix."""
    if len(data) < 2:
        raise WireFormatError("framed message shorter than length prefix")
    (length,) = struct.unpack("!H", data[:2])
    payload = data[2:]
    if len(payload) != length:
        raise WireFormatError(
            f"framed length {length} does not match payload {len(payload)}")
    return payload
