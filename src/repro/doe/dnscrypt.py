"""DNSCrypt model (client and service).

DNSCrypt predates DoT/DoH, does not use standard TLS, and runs over UDP
or TCP on port 443 with an X25519-XSalsa20Poly1305 construction. The
measurement pipeline needs its operational properties — certificate
fetch via a clear-text TXT bootstrap query, strictly no fallback,
per-query sealing overhead — rather than its cryptography, so the
sealing is modelled structurally (a keyed envelope checked for the
right provider key) and the bootstrap as a plain DNS TXT exchange on
the same channel, mirroring the real protocol's
``2.dnscrypt-cert.<provider>`` query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.dnswire.builder import make_query, make_response
from repro.dnswire.message import Message
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.dnswire.records import ResourceRecord
from repro.doe.do53 import classify_transport_error, error_latency_ms
from repro.doe.result import FailureKind, QueryResult
from repro.errors import TransportError, WireFormatError
from repro.netsim.host import Service, ServiceContext
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import UdpExchange
from repro.resolvers.backends import ResolutionContext, ResolverBackend

DNSCRYPT_PORT = 443
_MAGIC = b"DNSC"

#: Left-most labels of the conventional certificate bootstrap query.
CERT_QUERY_PREFIX = "2.dnscrypt-cert"


@dataclass(frozen=True)
class ProviderKey:
    """A DNSCrypt provider's published public key."""

    provider_name: str
    public_key: str

    def to_txt(self) -> str:
        return f"provider={self.provider_name} key={self.public_key}"

    @classmethod
    def from_txt(cls, text: str) -> "ProviderKey":
        fields = dict(token.split("=", 1) for token in text.split()
                      if "=" in token)
        if "provider" not in fields or "key" not in fields:
            raise WireFormatError(
                f"not a DNSCrypt certificate TXT record: {text!r}")
        return cls(fields["provider"], fields["key"])


def seal(key: ProviderKey, wire: bytes) -> bytes:
    """Structurally 'encrypt' a query under a provider key."""
    header = key.public_key.encode()
    return _MAGIC + len(header).to_bytes(1, "big") + header + wire


def unseal(key: ProviderKey, payload: bytes) -> bytes:
    """Reverse :func:`seal`; rejects envelopes under a different key."""
    if payload[:4] != _MAGIC:
        raise WireFormatError("not a DNSCrypt envelope")
    key_length = payload[4]
    sealed_key = payload[5:5 + key_length].decode()
    if sealed_key != key.public_key:
        raise WireFormatError("DNSCrypt key mismatch")
    return payload[5 + key_length:]


def is_cert_query(message: Message) -> bool:
    question = message.question
    if question is None or question.rrtype != RRType.TXT:
        return False
    return question.name.to_text().startswith(CERT_QUERY_PREFIX)


class DnsCryptService(Service):
    """Server side: unseal, resolve, re-seal.

    Clear-text TXT queries for ``2.dnscrypt-cert*`` are answered with
    the provider certificate, which is how a client (or scanner) with no
    prior knowledge of the provider bootstraps the sealing key — the
    only unencrypted exchange the protocol permits.

    Pending backend latency is keyed per connection (client address +
    port) so interleaved clients, and shards sharing a pristine world,
    cannot observe each other's stashed cost.
    """

    def __init__(self, backend: ResolverBackend, key: ProviderKey,
                 base_overhead_ms: float = 3.5):
        self.backend = backend
        self.key = key
        self.base_overhead_ms = base_overhead_ms
        self._pending_extra_ms: Dict[Optional[Tuple[str, int]], float] = {}

    @staticmethod
    def _conn_key(ctx: Optional[ServiceContext]) -> Optional[Tuple[str, int]]:
        if ctx is None:
            return None
        return (ctx.client_address, ctx.port)

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        conn = self._conn_key(ctx)
        if payload[:4] != _MAGIC:
            # Clear-text bootstrap path: certificate TXT fetch.
            query = Message.decode(payload)
            if not is_cert_query(query):
                raise WireFormatError("not a DNSCrypt envelope")
            self._pending_extra_ms[conn] = 0.0
            record = ResourceRecord.txt(query.question.name,
                                        self.key.to_txt())
            return make_response(query, answers=(record,)).encode()
        wire = unseal(self.key, payload)
        query = Message.decode(wire)
        resolution = self.backend.resolve(query, ResolutionContext(
            client_address=ctx.client_address,
            resolver_address=ctx.server_address,
            timestamp=ctx.timestamp,
            transport=ctx.protocol,
            encrypted=True,
        ))
        self._pending_extra_ms[conn] = resolution.extra_ms
        return seal(self.key, resolution.response.encode())

    def extra_latency_ms(self, rng: SeededRng,
                         ctx: Optional[ServiceContext] = None) -> float:
        conn = self._conn_key(ctx)
        if conn is None:
            pending = sum(self._pending_extra_ms.values())
            self._pending_extra_ms.clear()
        else:
            pending = self._pending_extra_ms.pop(conn, 0.0)
        return pending + rng.clipped_gauss(self.base_overhead_ms, 1.5,
                                           low=0.5)


class DnsCryptClient:
    """Client side: pinned provider key, queries over UDP port 443.

    DNSCrypt has no fallback semantics: when the sealed exchange fails
    the query fails — clients never retry in clear text. Callers that
    do not know the provider key in advance fetch it first with
    :meth:`fetch_certificate`.
    """

    def __init__(self, network: Network, rng: SeededRng):
        self.network = network
        self.rng = rng

    def fetch_certificate(
            self, env: ClientEnvironment, resolver_ip: str,
            timeout_s: float = 5.0,
            port: int = DNSCRYPT_PORT
    ) -> Union[Tuple[ProviderKey, float], QueryResult]:
        """Bootstrap the provider key via the clear-text TXT query.

        Returns ``(key, elapsed_ms)`` on success, or a failed
        :class:`QueryResult` describing what went wrong.
        """
        query = make_query(DnsName.from_text(CERT_QUERY_PREFIX),
                           RRType.TXT,
                           msg_id=self.rng.randint(1, 0xFFFF))
        try:
            response_wire, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, port, query.encode(),
                self.rng, timeout_s=timeout_s)
        except TransportError as error:
            return QueryResult.failed(
                "dnscrypt", resolver_ip, error_latency_ms(error),
                classify_transport_error(error), str(error))
        try:
            response = Message.decode(response_wire)
        except WireFormatError as error:
            return QueryResult.failed("dnscrypt", resolver_ip, elapsed,
                                      FailureKind.PROTOCOL, str(error))
        for record in response.answers:
            if record.rrtype != RRType.TXT:
                continue
            strings = getattr(record.rdata, "strings", ())
            text = b"".join(strings).decode("utf-8", errors="replace")
            try:
                return ProviderKey.from_txt(text), elapsed
            except WireFormatError:
                continue
        return QueryResult.failed(
            "dnscrypt", resolver_ip, elapsed, FailureKind.PROTOCOL,
            "no DNSCrypt certificate in bootstrap response")

    def query(self, env: ClientEnvironment, resolver_ip: str,
              key: ProviderKey, message: Message,
              timeout_s: float = 5.0,
              port: int = DNSCRYPT_PORT) -> QueryResult:
        payload = seal(key, message.encode())
        try:
            response_payload, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, port, payload, self.rng,
                timeout_s=timeout_s)
        except TransportError as error:
            return QueryResult.failed(
                "dnscrypt", resolver_ip, error_latency_ms(error),
                classify_transport_error(error), str(error))
        except WireFormatError as error:
            # The server rejected the envelope (stale or wrong key).
            return QueryResult.failed("dnscrypt", resolver_ip, 0.0,
                                      FailureKind.PROTOCOL, str(error))
        try:
            response = Message.decode(unseal(key, response_payload))
        except WireFormatError as error:
            return QueryResult.failed("dnscrypt", resolver_ip, elapsed,
                                      FailureKind.PROTOCOL, str(error))
        return QueryResult.answered("dnscrypt", resolver_ip, elapsed,
                                    response)
