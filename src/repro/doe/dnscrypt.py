"""DNSCrypt model (client and service).

DNSCrypt predates DoT/DoH, does not use standard TLS, and runs over UDP
or TCP on port 443 with an X25519-XSalsa20Poly1305 construction. The
comparative study needs its operational properties — certificate fetch
via a TXT bootstrap query, no fallback, per-query sealing overhead —
rather than its cryptography, so the sealing is modelled structurally
(a keyed envelope checked for the right provider key).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnswire.message import Message
from repro.doe.do53 import classify_transport_error, error_latency_ms
from repro.doe.result import FailureKind, QueryResult
from repro.errors import TransportError, WireFormatError
from repro.netsim.host import Service, ServiceContext
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import UdpExchange
from repro.resolvers.backends import ResolutionContext, ResolverBackend

DNSCRYPT_PORT = 443
_MAGIC = b"DNSC"


@dataclass(frozen=True)
class ProviderKey:
    """A DNSCrypt provider's published public key."""

    provider_name: str
    public_key: str


def seal(key: ProviderKey, wire: bytes) -> bytes:
    """Structurally 'encrypt' a query under a provider key."""
    header = key.public_key.encode()
    return _MAGIC + len(header).to_bytes(1, "big") + header + wire


def unseal(key: ProviderKey, payload: bytes) -> bytes:
    """Reverse :func:`seal`; rejects envelopes under a different key."""
    if payload[:4] != _MAGIC:
        raise WireFormatError("not a DNSCrypt envelope")
    key_length = payload[4]
    sealed_key = payload[5:5 + key_length].decode()
    if sealed_key != key.public_key:
        raise WireFormatError("DNSCrypt key mismatch")
    return payload[5 + key_length:]


class DnsCryptService(Service):
    """Server side: unseal, resolve, re-seal."""

    def __init__(self, backend: ResolverBackend, key: ProviderKey,
                 base_overhead_ms: float = 3.5):
        self.backend = backend
        self.key = key
        self.base_overhead_ms = base_overhead_ms
        self._pending_extra_ms = 0.0

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        wire = unseal(self.key, payload)
        query = Message.decode(wire)
        resolution = self.backend.resolve(query, ResolutionContext(
            client_address=ctx.client_address,
            resolver_address=ctx.server_address,
            timestamp=ctx.timestamp,
            transport=ctx.protocol,
            encrypted=True,
        ))
        self._pending_extra_ms = resolution.extra_ms
        return seal(self.key, resolution.response.encode())

    def extra_latency_ms(self, rng: SeededRng) -> float:
        extra = self._pending_extra_ms + rng.clipped_gauss(
            self.base_overhead_ms, 1.5, low=0.5)
        self._pending_extra_ms = 0.0
        return extra


class DnsCryptClient:
    """Client side: pinned provider key, queries over UDP port 443."""

    def __init__(self, network: Network, rng: SeededRng):
        self.network = network
        self.rng = rng

    def query(self, env: ClientEnvironment, resolver_ip: str,
              key: ProviderKey, message: Message,
              timeout_s: float = 5.0,
              port: int = DNSCRYPT_PORT) -> QueryResult:
        payload = seal(key, message.encode())
        try:
            response_payload, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, port, payload, self.rng,
                timeout_s=timeout_s)
        except TransportError as error:
            return QueryResult.failed(
                "dnscrypt", resolver_ip, error_latency_ms(error),
                classify_transport_error(error), str(error))
        try:
            response = Message.decode(unseal(key, response_payload))
        except WireFormatError as error:
            return QueryResult.failed("dnscrypt", resolver_ip, elapsed,
                                      FailureKind.PROTOCOL, str(error))
        return QueryResult.answered("dnscrypt", resolver_ip, elapsed,
                                    response)
